//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, [`any`], integer and
//! float range strategies, [`collection::vec`], and the `prop_assert*`
//! macros. Each property runs a fixed number of deterministic randomized
//! cases (no shrinking); failures report the usual assert diagnostics.
//!
//! CI hooks, mirroring real proptest's environment knobs:
//!
//! * `PROPTEST_CASES=N` overrides the per-property case count (default
//!   [`CASES`]) — the scheduled deep-fuzz job runs with `512`;
//! * `PROPTEST_UNSEEDED=1` replaces the deterministic per-name seed with a
//!   process-entropy seed (printed to stderr so failures are reproducible);
//! * a failing property writes `proptest-regressions/<name>.txt` recording
//!   the seed and case index (directory overridable with
//!   `PROPTEST_REGRESSION_DIR`); later runs replay a recorded seed first.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::Range;
use std::path::PathBuf;

pub use rand;

use rand::rngs::StdRng;
use rand::Rng;

/// Default number of randomized cases each property runs; override with
/// the `PROPTEST_CASES` environment variable.
pub const CASES: usize = 128;

/// The effective per-property case count: `PROPTEST_CASES` when set to a
/// positive integer, [`CASES`] otherwise.
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(CASES)
}

pub mod prelude {
    //! Glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a natural full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy drawing from a type's full domain.
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i32, i64, f32, f64);

pub mod collection {
    //! Collection strategies.

    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy over `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n =
                if self.len.is_empty() { self.len.start } else { rng.gen_range(self.len.clone()) };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derive a per-property RNG seed from the property name, so every property
/// explores its own deterministic sequence.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

/// A seed with process entropy in it, for `PROPTEST_UNSEEDED` runs.
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    // `RandomState` seeds itself from OS entropy once per process; folding
    // the pid in keeps concurrent CI shards apart even if it did not.
    let mut hasher = std::collections::hash_map::RandomState::new().build_hasher();
    hasher.write_u32(std::process::id());
    hasher.finish()
}

/// Where failure regressions are written (`PROPTEST_REGRESSION_DIR`, or
/// `proptest-regressions/` under the test's working directory).
fn regression_dir() -> PathBuf {
    std::env::var_os("PROPTEST_REGRESSION_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("proptest-regressions"))
}

fn regression_file(name: &str) -> PathBuf {
    regression_dir().join(format!("{name}.txt"))
}

/// Extract the `seed = …` line of a regression file (decimal or 0x hex).
fn parse_recorded_seed(text: &str) -> Option<u64> {
    for line in text.lines() {
        if let Some(value) = line.trim().strip_prefix("seed =") {
            let value = value.trim();
            let parsed = match value.strip_prefix("0x").or_else(|| value.strip_prefix("0X")) {
                Some(hex) => u64::from_str_radix(hex, 16),
                None => value.parse(),
            };
            return parsed.ok();
        }
    }
    None
}

fn recorded_seed(name: &str) -> Option<u64> {
    parse_recorded_seed(&std::fs::read_to_string(regression_file(name)).ok()?)
}

/// Writes the failing seed/case to the regression directory when the
/// property body panics out of the run loop.
struct RegressionGuard<'a> {
    name: &'a str,
    seed: u64,
    case: Cell<usize>,
    armed: Cell<bool>,
}

impl Drop for RegressionGuard<'_> {
    fn drop(&mut self) {
        if !self.armed.get() || !std::thread::panicking() {
            return;
        }
        let dir = regression_dir();
        let _ = std::fs::create_dir_all(&dir);
        let body = format!(
            "# proptest failure regression for `{}`.\n\
             # Re-running the property replays this seed before the fresh one.\n\
             seed = 0x{:016x}\ncase = {}\n",
            self.name,
            self.seed,
            self.case.get(),
        );
        let path = regression_file(self.name);
        if std::fs::write(&path, body).is_ok() {
            eprintln!(
                "proptest: `{}` failed with seed 0x{:016x} at case {}; wrote {}",
                self.name,
                self.seed,
                self.case.get(),
                path.display(),
            );
        }
    }
}

/// Drive one property: replay any recorded failing seed first, then run
/// [`cases`] fresh cases from the per-name seed (or an entropy seed under
/// `PROPTEST_UNSEEDED`). Called by the [`proptest!`] expansion.
pub fn run_property<F: FnMut(&mut StdRng)>(name: &str, mut body: F) {
    use rand::SeedableRng;
    let cases = cases();
    let mut seeds = Vec::new();
    if let Some(seed) = recorded_seed(name) {
        eprintln!("proptest: `{name}` replaying recorded failure seed 0x{seed:016x}");
        seeds.push(seed);
    }
    let fresh = if std::env::var_os("PROPTEST_UNSEEDED").is_some() {
        let seed = entropy_seed() ^ seed_for(name);
        eprintln!("proptest: `{name}` running unseeded (seed 0x{seed:016x}, {cases} cases)");
        seed
    } else {
        seed_for(name)
    };
    if !seeds.contains(&fresh) {
        seeds.push(fresh);
    }
    for seed in seeds {
        let guard = RegressionGuard { name, seed, case: Cell::new(0), armed: Cell::new(true) };
        let mut rng = StdRng::seed_from_u64(seed);
        for case in 0..cases {
            guard.case.set(case);
            body(&mut rng);
        }
        guard.armed.set(false);
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`cases`] deterministic randomized cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_property(stringify!($name), |rng| {
                    $(let $arg = $crate::Strategy::sample(&($strategy), rng);)+
                    $body
                });
            }
        )*
    };
}

/// Assert a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_give_in_bounds_values(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_the_range(v in crate::collection::vec(any::<bool>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }

    #[test]
    fn seeds_differ_per_property_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }

    #[test]
    fn failing_properties_write_a_regression_file() {
        let dir = std::env::temp_dir().join(format!("proptest-stub-{}", std::process::id()));
        std::env::set_var("PROPTEST_REGRESSION_DIR", &dir);
        let result = std::panic::catch_unwind(|| {
            super::run_property("always_fails", |_rng| panic!("boom"));
        });
        assert!(result.is_err(), "the failing property must propagate its panic");
        let text = std::fs::read_to_string(dir.join("always_fails.txt"))
            .expect("failure must write a regression file");
        assert!(super::parse_recorded_seed(&text).is_some(), "{text}");
        // A later passing run replays the recorded seed without tripping.
        super::run_property("always_fails", |_rng| {});
        std::env::remove_var("PROPTEST_REGRESSION_DIR");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorded_seeds_parse_hex_and_decimal() {
        let hex = "# comment\nseed = 0x00ab_cdef\ncase = 3\n".replace('_', "");
        assert_eq!(super::parse_recorded_seed(&hex), Some(0x00ab_cdef));
        assert_eq!(super::parse_recorded_seed("seed = 42\n"), Some(42));
        assert_eq!(super::parse_recorded_seed("case = 3\n"), None);
        assert_eq!(super::parse_recorded_seed("seed = bogus\n"), None);
    }
}
