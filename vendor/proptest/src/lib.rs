//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, [`any`], integer and
//! float range strategies, [`collection::vec`], and the `prop_assert*`
//! macros. Each property runs a fixed number of deterministic randomized
//! cases (no shrinking); failures report the usual assert diagnostics.

use std::marker::PhantomData;
use std::ops::Range;

pub use rand;

use rand::rngs::StdRng;
use rand::Rng;

/// Number of randomized cases each property runs.
pub const CASES: usize = 128;

pub mod prelude {
    //! Glob-importable surface, mirroring `proptest::prelude`.
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Arbitrary, Strategy};
}

/// A generator of test-case values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

/// Types with a natural full-domain strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

/// Strategy drawing from a type's full domain.
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, i32, i64, f32, f64);

pub mod collection {
    //! Collection strategies.

    use super::{Range, StdRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec` strategy over `element` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n =
                if self.len.is_empty() { self.len.start } else { rng.gen_range(self.len.clone()) };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derive a per-property RNG seed from the property name, so every property
/// explores its own deterministic sequence.
pub fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3))
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic randomized cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng: $crate::rand::rngs::StdRng = $crate::rand::SeedableRng::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

/// Assert a property holds for the current case.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert two values are equal for the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_give_in_bounds_values(x in 3usize..9, f in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_the_range(v in crate::collection::vec(any::<bool>(), 0..16)) {
            prop_assert!(v.len() < 16);
        }
    }

    #[test]
    fn seeds_differ_per_property_name() {
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}
