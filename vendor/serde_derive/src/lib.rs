//! No-op `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The workspace derives the serde traits purely as annotations — nothing
//! serializes through serde's data model (JSON output is hand-rolled in
//! `spikestream::report`). These derives therefore expand to nothing, which
//! keeps every `#[derive(Serialize, Deserialize)]` in the tree compiling
//! without crates.io access. `#[serde(...)]` helper attributes are accepted
//! and ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
