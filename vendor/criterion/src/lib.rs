//! Offline stand-in for `criterion`.
//!
//! Provides the macro/builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] and `Bencher::iter` — backed by a simple
//! wall-clock harness: each benchmark runs `sample_size` timed samples
//! after a warm-up pass and reports min/mean/max to stdout. No plots, no
//! statistics machinery; just enough to keep `cargo bench` meaningful
//! without crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver configured by `criterion_group!`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Upper bound on the total measurement time of one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Time spent running the closure untimed before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &name.into(), &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named set of benchmarks sharing the driver's configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark inside the group.
    pub fn bench_function<S: Into<String>, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_bench(self.criterion, &full, &mut f);
        self
    }

    /// Finish the group (formatting parity with the real crate; no-op).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the inner routine.
pub struct Bencher {
    samples: Vec<Duration>,
    deadline: Instant,
    warm_up: Duration,
    sample_size: usize,
}

impl Bencher {
    /// Warm up, then time `routine` once per sample until the sample budget
    /// or the measurement deadline is exhausted.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + self.warm_up;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() > self.deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(config: &Criterion, name: &str, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        deadline: Instant::now() + config.measurement_time,
        warm_up: config.warm_up_time,
        sample_size: config.sample_size,
    };
    f(&mut bencher);
    let n = bencher.samples.len().max(1) as u32;
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / n;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    let max = bencher.samples.iter().max().copied().unwrap_or_default();
    println!(
        "{name:<48} samples {:>3}  min {:>12?}  mean {:>12?}  max {:>12?}",
        bencher.samples.len(),
        min,
        mean,
        max
    );
}

/// Define a benchmark group function, mirroring criterion's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1))
    }

    #[test]
    fn bench_function_runs_the_closure() {
        let mut runs = 0usize;
        quick().bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_prefix_names_and_finish() {
        let mut c = quick();
        let mut group = c.benchmark_group("g");
        group.bench_function("inner", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
