//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as derive annotations (`#[derive(Serialize,
//! Deserialize)]`); no code path serializes through serde's data model, and
//! report JSON is produced by hand in `spikestream::report`. This crate
//! re-exports no-op derive macros so those annotations compile without
//! crates.io access. The `derive` feature exists so dependents can request
//! it as they would with the real crate.

pub use serde_derive::{Deserialize, Serialize};
