//! Offline stand-in for `serde`.
//!
//! The workspace only uses serde as derive annotations (`#[derive(Serialize,
//! Deserialize)]`); no code path serializes through serde's data model, and
//! report JSON is produced by hand in `spikestream::report`. This crate
//! re-exports no-op derive macros so those annotations compile without
//! crates.io access, plus marker traits of the same names so generic code
//! can write real `T: Serialize` bounds. The `derive` feature exists so
//! dependents can request it as they would with the real crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
///
/// Carries no methods: the no-op derives emit no impls, so coverage is
/// provided by the blanket impls below for the types the workspace shares
/// (primitives, strings, containers, and — crucially for the `Arc<[u32]>`
/// gather-index sharing in `StreamPattern`/`IndexStream` — `Arc`).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

macro_rules! impl_markers {
    ($($t:ty),* $(,)?) => {
        $(
            impl Serialize for $t {}
            impl<'de> Deserialize<'de> for $t {}
        )*
    };
}

impl_markers!(
    bool, char, f32, f64, i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize, String
);

impl<T: Serialize + ?Sized> Serialize for &T {}

impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}

impl<T: Serialize> Serialize for [T] {}

// The `Arc` impls the real serde gates behind its `rc` feature. Shared
// slices (`Arc<[T]>`, how stream gather-index lists travel through the IR
// and trace ops) are covered by the unsized `T: ?Sized` receiver together
// with the `[T]` impl above.
impl<T: Serialize + ?Sized> Serialize for std::sync::Arc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::sync::Arc<[T]> {}

impl<T: Serialize + ?Sized> Serialize for std::rc::Rc<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for std::rc::Rc<T> {}
