//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the rand 0.8 API it actually uses: seedable
//! deterministic generators ([`rngs::StdRng`], [`rngs::mock::StepRng`]) and
//! the [`Rng`] convenience methods `gen`, `gen_bool` and `gen_range`.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256** seeded through
//! SplitMix64 — not the ChaCha12 core of the real crate, but statistically
//! solid and, crucially, **deterministic for a given seed**, which is what
//! the reproduction relies on (bit-identical reports for equal seeds).

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly distributed value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types that [`Rng::gen`] can sample from their natural domain.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f32(rng.next_u32())
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Types with a uniform distribution over half-open and inclusive ranges.
pub trait SampleUniform: Sized + PartialOrd {
    /// A value in `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        let v = lo + (hi - lo) * unit_f64(rng.next_u64());
        // `lo + (hi - lo) * u` can round up to `hi` even though `u < 1`;
        // a half-open range must never return its upper bound.
        if !inclusive && v >= hi {
            hi.next_down().max(lo)
        } else {
            v.clamp(lo, hi)
        }
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
        let v = lo + (hi - lo) * unit_f32(rng.next_u32());
        if !inclusive && v >= hi {
            hi.next_down().max(lo)
        } else {
            v.clamp(lo, hi)
        }
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                // i128 arithmetic sidesteps `hi - lo` overflow for signed
                // types and the 2^64-wide inclusive full-domain case.
                let span = (hi as i128).wrapping_sub(lo as i128) + inclusive as i128;
                if span <= 0 || span > u64::MAX as i128 {
                    // Full 64-bit domain: every bit pattern is a valid value.
                    return rng.next_u64() as $t;
                }
                ((lo as i128) + (rng.next_u64() % span as u64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, u16, u8, i64, i32);

/// Ranges that [`Rng::gen_range`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty inclusive range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 32 random bits to a uniform `f32` in `[0, 1)`.
fn unit_f32(bits: u32) -> f32 {
    (bits >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic general-purpose generator (xoshiro256** over a
    /// SplitMix64-expanded seed).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        //! Trivial generators for unit tests.

        use super::super::RngCore;

        /// Emits `initial`, `initial + increment`, `initial + 2*increment`, …
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            value: u64,
            increment: u64,
        }

        impl StepRng {
            /// Create a generator counting from `initial` by `increment`.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng { value: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let v = self.value;
                self.value = self.value.wrapping_add(self.increment);
                v
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let i = rng.gen_range(10usize..20);
            assert!((10..20).contains(&i));
            let g = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits");
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn half_open_float_ranges_exclude_the_upper_bound() {
        // StepRng at u64::MAX pins the unit sample at its maximum, where
        // `lo + (hi - lo) * u` rounds up to `hi` without the guard.
        let mut rng = StepRng::new(u64::MAX, 0);
        for _ in 0..4 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!(v < 0.75, "f64 half-open range returned its bound: {v}");
            let f: f32 = rng.gen_range(0.25..0.75);
            assert!(f < 0.75, "f32 half-open range returned its bound: {f}");
        }
    }

    #[test]
    fn full_domain_integer_ranges_do_not_panic() {
        let mut rng = StdRng::seed_from_u64(17);
        let _: u64 = rng.gen_range(0..=u64::MAX);
        let _: i64 = rng.gen_range(i64::MIN..=i64::MAX);
        let v: i64 = rng.gen_range(i64::MIN..i64::MAX);
        assert!(v < i64::MAX);
        let u: usize = rng.gen_range(0..=usize::MAX);
        let _ = u;
    }

    #[test]
    fn step_rng_counts() {
        let mut rng = StepRng::new(1, 7);
        assert_eq!(rng.next_u64(), 1);
        assert_eq!(rng.next_u64(), 8);
        assert_eq!(rng.next_u64(), 15);
    }
}
