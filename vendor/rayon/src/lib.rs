//! Offline stand-in for `rayon`.
//!
//! Implements the subset the workspace uses — `into_par_iter().map(f)
//! .collect::<Vec<_>>()` — with real data parallelism: the input is split
//! into contiguous chunks, one scoped OS thread per chunk, and the results
//! are reassembled **in input order**, so a parallel map is always
//! element-for-element identical to its sequential counterpart.

use std::num::NonZeroUsize;

pub mod prelude {
    //! Glob-importable traits, mirroring `rayon::prelude`.
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// Begin a parallel pipeline over the elements.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// Operations shared by the parallel pipeline stages.
pub trait ParallelIterator: Sized {
    /// Element type produced by this stage.
    type Item: Send;
}

/// A materialized parallel iterator over owned items.
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
}

impl<T: Send> ParIter<T> {
    /// Map every element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<T, F>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParMap { items: self.items, f }
    }
}

/// A pending parallel map; executes when collected.
pub struct ParMap<T: Send, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, R: Send, F: Fn(T) -> R + Sync> ParallelIterator for ParMap<T, F> {
    type Item = R;
}

impl<T: Send, F> ParMap<T, F> {
    /// Run the map across scoped threads and collect the results in input
    /// order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: From<Vec<R>>,
    {
        C::from(par_map_vec(self.items, &self.f))
    }
}

/// Number of worker threads: the machine's parallelism, capped by the
/// element count.
fn thread_count(len: usize) -> usize {
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1).min(len).max(1)
}

fn par_map_vec<T: Send, R: Send, F: Fn(T) -> R + Sync>(items: Vec<T>, f: &F) -> Vec<R> {
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Contiguous chunks keep reassembly a simple ordered concatenation.
    let chunk_len = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let rest = items.split_off(items.len().min(chunk_len));
        chunks.push(std::mem::replace(&mut items, rest));
    }

    let mut out: Vec<Vec<R>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        handles.into_iter().map(|h| h.join().expect("parallel map worker panicked")).collect()
    });
    let mut flat = Vec::with_capacity(n);
    for part in out.drain(..) {
        flat.extend(part);
    }
    flat
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let seq: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        let par: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 3).collect();
        assert_eq!(seq, par);
    }

    #[test]
    fn vec_source_and_non_copy_results() {
        let strings: Vec<String> =
            vec![1, 2, 3].into_par_iter().map(|i: i32| format!("v{i}")).collect();
        assert_eq!(strings, vec!["v1", "v2", "v3"]);
    }

    #[test]
    fn empty_and_single_inputs() {
        let empty: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = (5..6).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(one, vec![6]);
    }
}
