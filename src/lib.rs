//! Workspace umbrella crate for the SpikeStream reproduction.
//!
//! This crate only re-exports the member crates so that the repository-level
//! examples and integration tests have a single import root. The actual
//! library lives in the `crates/` members; start from [`spikestream`].

pub use neuro_accel_models as accel_models;
pub use snitch_arch as arch;
pub use snitch_mem as mem;
pub use snitch_sim as sim;
pub use spikestream as core;
pub use spikestream_energy as energy;
pub use spikestream_ir as ir;
pub use spikestream_kernels as kernels;
pub use spikestream_snn as snn;
