//! `spikestream` — the sharded batch-inference driver CLI.
//!
//! Four subcommands, all driven by declarative scenario files
//! (`examples/scenarios/*.toml`):
//!
//! * `run` — run one scenario through the sharded batch driver and print
//!   the per-layer report plus the fleet statistics (or `--json`);
//! * `bench` — sweep the same scenario over several shard counts and
//!   report makespan, utilization, imbalance and effective speedup;
//! * `compare` — run the scenario under both code variants (baseline vs
//!   SpikeStream) and print per-layer and end-to-end speedups;
//! * `serve-demo` — publish the scenario to a `spikestream-serve` gateway
//!   and drive it from K concurrent client threads, printing the gateway
//!   counters plus per-request latency percentiles.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use spikestream::{InferenceReport, Request, Scenario, TemporalEncoding, WorkloadMode};
use spikestream_serve::{
    Gateway, GatewayConfig, ResponseHandle, ServeError, SubmitOptions, BATCH_HIST_LABELS,
};

const USAGE: &str = "\
spikestream — sharded batch-inference driver for the SpikeStream reproduction

USAGE:
    spikestream run <scenario.toml> [--shards N] [--batch N] [--timesteps N] [--workers N] [--json]
    spikestream bench <scenario.toml> [--shards N1,N2,...] [--timesteps N]
    spikestream compare <scenario.toml> [--shards N] [--timesteps N]
    spikestream serve-demo <scenario.toml> [--clients K] [--requests-per-client M]
                           [--max-batch B] [--linger-us L] [--queue-cap C] [--json]
    spikestream help

Scenario files are a strict TOML subset; see examples/scenarios/ for
checked-in examples and `spikestream help` for the key reference.

OPTIONS:
    --shards N        Override the scenario's shard count
                      (for bench: comma-separated list, default 1,2,4,8)
    --batch N         Override the scenario's batch size
    --timesteps N     Run the temporal pipeline for N timesteps (real spike
                      propagation with persistent membranes; keeps the
                      scenario's encoding, or direct coding by default)
    --workers N       Serve the request with N host worker threads (default:
                      host parallelism; 1 = strictly sequential; the report
                      is bit-identical for every worker count)
    --json            Print the deterministic report JSON instead of tables
                      (for serve-demo: counters + result digest, latencies
                      excluded)

SERVE-DEMO OPTIONS (defaults come from the scenario's [serve] table):
    --clients K             Concurrent submitter threads (default 4)
    --requests-per-client M Single-sample requests per client (default 8)
    --max-batch B           Close a micro-batch at B samples
    --linger-us L           Close a non-full micro-batch after L microseconds
    --queue-cap C           Bounded per-tenant queue capacity (the demo
                            raises it to K*M so the paced phase never blocks)
";

const KEY_REFERENCE: &str = "\
Scenario keys (all optional except the [scenario] header):
    name      = \"string\"         scenario name, used in output headers
    network   = \"svgg11\"         svgg11 | tiny-cnn | tiny-pool
    variant   = \"spikestream\"    baseline | spikestream
    format    = \"fp16\"           fp64 | fp32 | fp16 | fp8
    timing    = \"analytic\"       analytic | cycle-level
    batch     = 128               batch samples (>= 1)
    seed      = 0xC1FA            workload seed (decimal or 0x hex)
    shards    = 1                 simulated cluster shards (>= 1)
    timesteps = 4                 temporal-pipeline steps (>= 1; setting this
                                  or `encoding` enables real spike propagation)
    encoding  = \"rate\"           rate | direct (temporal input coding)

Neuron-model keys (optional [neuron_model] table; overrides every layer):
    model       = \"lif\"          lif | izhikevich (default lif)
    alpha       = 0.5             lif: decay factor in [0, 1]
    resistance  = 1.0             lif: membrane resistance (> 0)
    v_threshold = 1.0             firing threshold (lif: > 0; izhikevich: > c)
    v_reset     = 1.0             lif: reset potential (>= 0)
    a           = 0.02            izhikevich: recovery time scale in (0, 1]
    b           = 0.2             izhikevich: recovery sensitivity
    c           = -65.0           izhikevich: after-spike reset potential
    d           = 8.0             izhikevich: after-spike recovery increment

Serving keys (optional [serve] table; defaults for `serve-demo`):
    max_batch   = 64              close a micro-batch at this many samples
    linger_us   = 200             close a non-full micro-batch after this long
    queue_cap   = 256             bounded per-tenant queue capacity
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command {
        "run" => cmd_run(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "serve-demo" => cmd_serve_demo(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}\n{KEY_REFERENCE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed common flags of every subcommand.
struct Options {
    scenario: Scenario,
    shards_list: Option<Vec<usize>>,
    workers: Option<usize>,
    json: bool,
}

/// Which subcommand the shared flag parser is serving; gates the flags
/// that only some subcommands support instead of silently ignoring them.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Command {
    Run,
    Bench,
    Compare,
}

fn parse_options(command: Command, args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut shards_list = None;
    let mut batch = None;
    let mut timesteps = None;
    let mut workers = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                let value = it.next().ok_or("--shards needs a value")?;
                let list: Result<Vec<usize>, _> =
                    value.split(',').map(|v| v.trim().parse::<usize>()).collect();
                let list = list.map_err(|_| format!("bad --shards value `{value}`"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err(format!("--shards entries must be >= 1, got `{value}`"));
                }
                if command != Command::Bench && list.len() > 1 {
                    return Err(format!(
                        "--shards takes a single value here (lists are for `bench`), got `{value}`"
                    ));
                }
                shards_list = Some(list);
            }
            "--batch" => {
                let value = it.next().ok_or("--batch needs a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad --batch value `{value}`"))?;
                if parsed == 0 {
                    return Err("--batch must be >= 1".into());
                }
                batch = Some(parsed);
            }
            "--timesteps" => {
                let value = it.next().ok_or("--timesteps needs a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad --timesteps value `{value}`"))?;
                if parsed == 0 {
                    return Err("--timesteps must be >= 1".into());
                }
                timesteps = Some(parsed);
            }
            "--workers" => {
                if command != Command::Run {
                    return Err("--workers is only supported by `run`".into());
                }
                let value = it.next().ok_or("--workers needs a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad --workers value `{value}`"))?;
                if parsed == 0 {
                    return Err("--workers must be >= 1".into());
                }
                workers = Some(parsed);
            }
            "--json" => {
                if command != Command::Run {
                    return Err("--json is only supported by `run`".into());
                }
                json = true;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let path = path.ok_or_else(|| format!("missing scenario file\n\n{USAGE}"))?;
    let mut scenario =
        Scenario::from_file(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
    if let Some(batch) = batch {
        scenario.config.batch = batch;
    }
    if let Some(steps) = timesteps {
        // Keep the scenario's encoding if it already runs temporally;
        // otherwise switch the run to direct-coded temporal inference.
        let encoding = match scenario.config.mode {
            WorkloadMode::Temporal { encoding, .. } => encoding,
            WorkloadMode::Synthetic => TemporalEncoding::Direct,
        };
        scenario.config.mode = WorkloadMode::Temporal { timesteps: steps, encoding };
    }
    if let Some(list) = &shards_list {
        scenario.shards = list[0];
    }
    Ok(Options { scenario, shards_list, workers, json })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_options(Command::Run, args)?;
    // Compile once, then serve the request through a session — the CLI
    // never assembles backends by hand and never re-lowers per call.
    let plan = opts.scenario.compile().map_err(|e| e.to_string())?;
    let mut request = opts.scenario.request();
    if let Some(workers) = opts.workers {
        request = request.with_workers(workers);
    }
    let mut session = plan.open_session();
    let report = session.infer(&request);
    if opts.json {
        // The JSON report is a golden-pinned byte-exact contract; serving
        // diagnostics stay on the human-readable table path only.
        println!("{}", report.to_json());
        return Ok(());
    }
    let mode = match opts.scenario.config.mode {
        WorkloadMode::Synthetic => "synthetic".to_string(),
        WorkloadMode::Temporal { timesteps, encoding } => {
            format!("temporal T={timesteps} ({encoding})")
        }
    };
    let neuron = opts.scenario.neuron.map_or("lif", |m| m.as_str());
    println!(
        "scenario `{}`: {} · {} · {} · {} neurons · batch {} · {} shard(s) · {}",
        opts.scenario.name,
        report.network,
        report.variant,
        report.format,
        neuron,
        report.batch,
        opts.scenario.shards,
        mode,
    );
    print_layer_table(&report);
    print_timestep_table(&report);
    print_shard_table(&report);
    print_serving_stats(&plan, &session);
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let opts = parse_options(Command::Bench, args)?;
    let shard_counts = opts.shards_list.unwrap_or_else(|| vec![1, 2, 4, 8]);
    println!(
        "scenario `{}`: shard sweep over batch {}",
        opts.scenario.name, opts.scenario.config.batch
    );
    println!(
        "{:>7} {:>16} {:>10} {:>10} {:>12} {:>12}",
        "shards", "makespan [cyc]", "speedup", "imbalance", "util(min)", "util(max)"
    );
    // One compiled plan and one long-lived session serve the whole sweep:
    // only the fleet attribution changes between shard counts, so the
    // lowering is paid exactly once.
    let plan = opts.scenario.compile().map_err(|e| e.to_string())?;
    let mut session = plan.open_session();
    let mut aggregate_json: Option<String> = None;
    for &shards in &shard_counts {
        let report = session.infer(&Request::batch(opts.scenario.config.batch).with_shards(shards));
        let fleet = report.shards.as_ref().expect("sharded runs carry fleet stats");
        let util_min = fleet.shards.iter().map(|s| s.utilization).fold(f64::INFINITY, f64::min);
        let util_max = fleet.shards.iter().map(|s| s.utilization).fold(0.0, f64::max);
        println!(
            "{:>7} {:>16.0} {:>10.2} {:>10.3} {:>12.3} {:>12.3}",
            shards, fleet.makespan_cycles, fleet.batch_speedup, fleet.imbalance, util_min, util_max
        );
        let json = report.without_shard_stats().to_json();
        match &aggregate_json {
            None => aggregate_json = Some(json),
            Some(reference) => {
                if *reference != json {
                    return Err(format!(
                        "aggregate report changed between shard counts (at {shards} shards)"
                    ));
                }
            }
        }
    }
    println!("aggregate report bit-identical across shard counts: yes");
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    use spikestream::KernelVariant;
    let opts = parse_options(Command::Compare, args)?;
    let mut baseline_scenario = opts.scenario.clone();
    baseline_scenario.config.variant = KernelVariant::Baseline;
    let mut streamed_scenario = opts.scenario.clone();
    streamed_scenario.config.variant = KernelVariant::SpikeStream;

    let baseline_plan = baseline_scenario.compile().map_err(|e| e.to_string())?;
    let streamed_plan = streamed_scenario.compile().map_err(|e| e.to_string())?;
    let baseline = baseline_plan.open_session().infer(&baseline_scenario.request());
    let streamed = streamed_plan.open_session().infer(&streamed_scenario.request());
    println!(
        "scenario `{}`: Baseline vs SpikeStream · {} · {} · batch {} · {} shard(s)",
        opts.scenario.name, baseline.network, baseline.format, baseline.batch, opts.scenario.shards,
    );
    println!(
        "{:<10} {:>16} {:>16} {:>9} {:>12}",
        "layer", "base [cyc]", "stream [cyc]", "speedup", "energy gain"
    );
    for (b, s) in baseline.layers.iter().zip(streamed.layers.iter()) {
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>8.2}x {:>11.2}x",
            b.name,
            b.cycles,
            s.cycles,
            b.cycles / s.cycles.max(1.0),
            b.energy_j / s.energy_j.max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "{:<10} {:>16.0} {:>16.0} {:>8.2}x {:>11.2}x",
        "total",
        baseline.total_cycles(),
        streamed.total_cycles(),
        streamed.speedup_over(&baseline),
        streamed.energy_gain_over(&baseline),
    );
    Ok(())
}

/// Parsed `serve-demo` flags: the driver shape plus gateway-policy
/// overrides (CLI flag beats `[serve]` table beats gateway default).
struct ServeDemoOptions {
    scenario: Scenario,
    clients: usize,
    requests_per_client: usize,
    config: GatewayConfig,
    json: bool,
}

fn parse_serve_demo_options(args: &[String]) -> Result<ServeDemoOptions, String> {
    let mut path = None;
    let mut clients = 4usize;
    let mut requests_per_client = 8usize;
    let mut max_batch = None;
    let mut linger_us = None;
    let mut queue_cap = None;
    let mut json = false;

    fn positive(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<usize, String> {
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        let parsed: usize = value.parse().map_err(|_| format!("bad {flag} value `{value}`"))?;
        if parsed == 0 {
            return Err(format!("{flag} must be >= 1"));
        }
        Ok(parsed)
    }

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clients" => clients = positive(&mut it, "--clients")?,
            "--requests-per-client" => {
                requests_per_client = positive(&mut it, "--requests-per-client")?
            }
            "--max-batch" => max_batch = Some(positive(&mut it, "--max-batch")?),
            "--linger-us" => {
                let value = it.next().ok_or("--linger-us needs a value")?;
                let parsed: u64 =
                    value.parse().map_err(|_| format!("bad --linger-us value `{value}`"))?;
                linger_us = Some(parsed);
            }
            "--queue-cap" => queue_cap = Some(positive(&mut it, "--queue-cap")?),
            "--json" => json = true,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let path = path.ok_or_else(|| format!("missing scenario file\n\n{USAGE}"))?;
    let scenario = Scenario::from_file(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
    let defaults = GatewayConfig::default();
    let table = scenario.serve.unwrap_or_default();
    let config = GatewayConfig {
        max_batch: max_batch.or(table.max_batch).unwrap_or(defaults.max_batch),
        linger_us: linger_us.or(table.linger_us).unwrap_or(defaults.linger_us),
        queue_cap: queue_cap.or(table.queue_cap).unwrap_or(defaults.queue_cap),
    };
    Ok(ServeDemoOptions { scenario, clients, requests_per_client, config, json })
}

fn cmd_serve_demo(args: &[String]) -> Result<(), String> {
    let opts = parse_serve_demo_options(args)?;
    let total = opts.clients * opts.requests_per_client;
    // The demo pauses the tenant while every client enqueues (so the batch
    // composition — and therefore every counter — is a pure function of
    // the flags, never of thread scheduling), which requires the queue to
    // hold all K*M requests at once.
    let mut config = opts.config;
    config.queue_cap = config.queue_cap.max(total);

    let plan = opts.scenario.compile().map_err(|e| e.to_string())?;
    let batch = opts.scenario.config.batch;
    let tenant = opts.scenario.name.clone();
    let gateway = Gateway::new(config);
    let version = gateway.publish(&tenant, plan).map_err(|e| e.to_string())?;
    gateway.pause(&tenant).map_err(|e| e.to_string())?;

    let started = Instant::now();
    // Phase 1: K concurrent clients enqueue M single-sample requests each.
    // Joining the scope proves every request is queued before resume.
    type Submitted = Vec<Result<(Instant, ResponseHandle), ServeError>>;
    let submitted: Vec<Submitted> = std::thread::scope(|scope| {
        let joins: Vec<_> = (0..opts.clients)
            .map(|client| {
                let gateway = &gateway;
                let tenant = tenant.as_str();
                let per_client = opts.requests_per_client;
                scope.spawn(move || {
                    (0..per_client)
                        .map(|i| {
                            let sample = (client * per_client + i) % batch;
                            let at = Instant::now();
                            gateway
                                .submit_timeout(
                                    tenant,
                                    &[sample],
                                    SubmitOptions::default(),
                                    Duration::from_secs(60),
                                )
                                .map(|handle| (at, handle))
                        })
                        .collect()
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().expect("client thread panicked")).collect()
    });

    // Phase 2: release the dispatcher and collect every response in
    // deterministic (client, request) order.
    gateway.resume(&tenant).map_err(|e| e.to_string())?;
    let mut latencies_us: Vec<f64> = Vec::with_capacity(total);
    let mut digest = Fnv1a::new();
    for per_client in submitted {
        for entry in per_client {
            let (at, handle) = entry.map_err(|e| e.to_string())?;
            let response = handle.wait().map_err(|e| e.to_string())?;
            latencies_us.push(at.elapsed().as_secs_f64() * 1e6);
            digest.update(response.report().to_json().as_bytes());
        }
    }
    let wall = started.elapsed();
    let stats = gateway.stats();
    gateway.shutdown();

    if opts.json {
        // Deterministic subset only: counters and the result digest are
        // functions of the flags and the scenario, never of timing.
        let hist: Vec<String> = stats.batch_hist.iter().map(u64::to_string).collect();
        println!(
            "{{\"scenario\":\"{}\",\"tenant_version\":{},\"clients\":{},\
             \"requests_per_client\":{},\"max_batch\":{},\"queue_cap\":{},\
             \"submitted\":{},\"completed\":{},\"rejected_full\":{},\"batches\":{},\
             \"coalesced\":{},\"hot_swaps\":{},\"panics\":{},\"queue_depth\":{},\
             \"batch_hist\":[{}],\"report_digest\":\"{:#018x}\"}}",
            opts.scenario.name,
            version,
            opts.clients,
            opts.requests_per_client,
            config.max_batch,
            config.queue_cap,
            stats.submitted,
            stats.completed,
            stats.rejected_full,
            stats.batches,
            stats.coalesced,
            stats.hot_swaps,
            stats.panics,
            stats.tenants.iter().map(|t| t.queue_depth).sum::<usize>(),
            hist.join(","),
            digest.finish(),
        );
        return Ok(());
    }

    println!(
        "serve-demo `{}`: {} clients x {} requests · tenant v{} · max_batch {} · \
         linger {} us · queue cap {}",
        opts.scenario.name,
        opts.clients,
        opts.requests_per_client,
        version,
        config.max_batch,
        config.linger_us,
        config.queue_cap,
    );
    println!(
        "gateway: {} submitted · {} completed · {} rejected · {} batches \
         ({} coalesced) · {} hot swaps · {} panics",
        stats.submitted,
        stats.completed,
        stats.rejected_full,
        stats.batches,
        stats.coalesced,
        stats.hot_swaps,
        stats.panics,
    );
    let sizes: Vec<String> = BATCH_HIST_LABELS
        .iter()
        .zip(stats.batch_hist.iter())
        .map(|(label, count)| format!("{label}:{count}"))
        .collect();
    println!("batch sizes: {}", sizes.join(" "));
    for t in &stats.tenants {
        println!(
            "tenant `{}`: v{} (serving v{}) · queue {} · session {{ samples {} · \
             arena grows {} · pool jobs {} }}",
            t.name,
            t.version,
            t.serving_version,
            t.queue_depth,
            t.session.runs,
            t.session.grows,
            t.session.pool.jobs,
        );
    }
    latencies_us.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    println!(
        "latency [us]: p50 {:.1} · p90 {:.1} · p99 {:.1} · max {:.1}",
        percentile(&latencies_us, 0.50),
        percentile(&latencies_us, 0.90),
        percentile(&latencies_us, 0.99),
        latencies_us.last().copied().unwrap_or(0.0),
    );
    println!("wall: {:.3} ms · report digest {:#018x}", wall.as_secs_f64() * 1e3, digest.finish());
    Ok(())
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// FNV-1a 64-bit digest over the concatenated response reports — a cheap,
/// dependency-free fingerprint the CI smoke pins against a golden.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn print_layer_table(report: &InferenceReport) {
    println!(
        "{:<10} {:>14} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "layer", "cycles", "util", "ipc", "rate", "synops", "power [W]"
    );
    for layer in &report.layers {
        println!(
            "{:<10} {:>14.0} {:>8.3} {:>8.3} {:>10.4} {:>12.0} {:>10.3}",
            layer.name,
            layer.cycles,
            layer.fpu_utilization,
            layer.ipc,
            layer.input_firing_rate,
            layer.synops,
            layer.power_w,
        );
    }
    println!(
        "total: {:.0} cycles · {:.3} ms · {:.3} mJ · avg util {:.3}",
        report.total_cycles(),
        report.total_seconds() * 1e3,
        report.total_energy_j() * 1e3,
        report.average_utilization(),
    );
}

fn print_timestep_table(report: &InferenceReport) {
    let Some(steps) = &report.timesteps else { return };
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>24}",
        "step", "cycles", "dma [B]", "energy [uJ]", "firing rates (per layer)"
    );
    for step in steps {
        let rates: Vec<String> = step.firing_rates.iter().map(|r| format!("{r:.3}")).collect();
        println!(
            "{:>5} {:>14.0} {:>14.0} {:>12.3} {:>24}",
            step.step,
            step.cycles,
            step.dma_bytes,
            step.energy_j * 1e6,
            rates.join(" "),
        );
    }
}

/// Serving diagnostics: how the request actually hit the plan's program
/// cache and the session's arenas/pool. On the analytic steady state the
/// cache line should read all hits (emits only from a cold compile) and
/// `arena grows` should be flat at one per worker slot.
fn print_serving_stats(plan: &spikestream::Plan, session: &spikestream::Session<'_>) {
    let cache = plan.programs().counters();
    println!(
        "programs: {} cached · {} lookups ({} hits, {} rebinds, {} emits)",
        plan.programs().len(),
        cache.lookups(),
        cache.hits,
        cache.rebinds,
        cache.emits,
    );
    let stats = session.stats();
    println!(
        "session: {} samples · {} arena grows · pool {{ threads {} · jobs {} · steals {} }}",
        stats.runs, stats.grows, stats.pool.spawned, stats.pool.jobs, stats.pool.steals,
    );
}

fn print_shard_table(report: &InferenceReport) {
    let Some(fleet) = &report.shards else { return };
    println!(
        "fleet: makespan {:.0} cycles · speedup {:.2}x · imbalance {:.3}",
        fleet.makespan_cycles, fleet.batch_speedup, fleet.imbalance
    );
    println!("{:>6} {:>9} {:>16} {:>12}", "shard", "samples", "busy [cyc]", "utilization");
    for shard in &fleet.shards {
        println!(
            "{:>6} {:>9} {:>16.0} {:>12.3}",
            shard.shard, shard.samples, shard.busy_cycles, shard.utilization
        );
    }
}
