//! `spikestream` — the sharded batch-inference driver CLI.
//!
//! Three subcommands, all driven by declarative scenario files
//! (`examples/scenarios/*.toml`):
//!
//! * `run` — run one scenario through the sharded batch driver and print
//!   the per-layer report plus the fleet statistics (or `--json`);
//! * `bench` — sweep the same scenario over several shard counts and
//!   report makespan, utilization, imbalance and effective speedup;
//! * `compare` — run the scenario under both code variants (baseline vs
//!   SpikeStream) and print per-layer and end-to-end speedups.

use std::process::ExitCode;

use spikestream::{InferenceReport, Request, Scenario, TemporalEncoding, WorkloadMode};

const USAGE: &str = "\
spikestream — sharded batch-inference driver for the SpikeStream reproduction

USAGE:
    spikestream run <scenario.toml> [--shards N] [--batch N] [--timesteps N] [--workers N] [--json]
    spikestream bench <scenario.toml> [--shards N1,N2,...] [--timesteps N]
    spikestream compare <scenario.toml> [--shards N] [--timesteps N]
    spikestream help

Scenario files are a strict TOML subset; see examples/scenarios/ for
checked-in examples and `spikestream help` for the key reference.

OPTIONS:
    --shards N        Override the scenario's shard count
                      (for bench: comma-separated list, default 1,2,4,8)
    --batch N         Override the scenario's batch size
    --timesteps N     Run the temporal pipeline for N timesteps (real spike
                      propagation with persistent membranes; keeps the
                      scenario's encoding, or direct coding by default)
    --workers N       Serve the request with N host worker threads (default:
                      host parallelism; 1 = strictly sequential; the report
                      is bit-identical for every worker count)
    --json            Print the deterministic report JSON instead of tables
";

const KEY_REFERENCE: &str = "\
Scenario keys (all optional except the [scenario] header):
    name      = \"string\"         scenario name, used in output headers
    network   = \"svgg11\"         svgg11 | tiny-cnn | tiny-pool
    variant   = \"spikestream\"    baseline | spikestream
    format    = \"fp16\"           fp64 | fp32 | fp16 | fp8
    timing    = \"analytic\"       analytic | cycle-level
    batch     = 128               batch samples (>= 1)
    seed      = 0xC1FA            workload seed (decimal or 0x hex)
    shards    = 1                 simulated cluster shards (>= 1)
    timesteps = 4                 temporal-pipeline steps (>= 1; setting this
                                  or `encoding` enables real spike propagation)
    encoding  = \"rate\"           rate | direct (temporal input coding)

Neuron-model keys (optional [neuron_model] table; overrides every layer):
    model       = \"lif\"          lif | izhikevich (default lif)
    alpha       = 0.5             lif: decay factor in [0, 1]
    resistance  = 1.0             lif: membrane resistance (> 0)
    v_threshold = 1.0             firing threshold (lif: > 0; izhikevich: > c)
    v_reset     = 1.0             lif: reset potential (>= 0)
    a           = 0.02            izhikevich: recovery time scale in (0, 1]
    b           = 0.2             izhikevich: recovery sensitivity
    c           = -65.0           izhikevich: after-spike reset potential
    d           = 8.0             izhikevich: after-spike recovery increment
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first().map(String::as_str) else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command {
        "run" => cmd_run(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "compare" => cmd_compare(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}\n{KEY_REFERENCE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand `{other}`\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Parsed common flags of every subcommand.
struct Options {
    scenario: Scenario,
    shards_list: Option<Vec<usize>>,
    workers: Option<usize>,
    json: bool,
}

/// Which subcommand the shared flag parser is serving; gates the flags
/// that only some subcommands support instead of silently ignoring them.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Command {
    Run,
    Bench,
    Compare,
}

fn parse_options(command: Command, args: &[String]) -> Result<Options, String> {
    let mut path = None;
    let mut shards_list = None;
    let mut batch = None;
    let mut timesteps = None;
    let mut workers = None;
    let mut json = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--shards" => {
                let value = it.next().ok_or("--shards needs a value")?;
                let list: Result<Vec<usize>, _> =
                    value.split(',').map(|v| v.trim().parse::<usize>()).collect();
                let list = list.map_err(|_| format!("bad --shards value `{value}`"))?;
                if list.is_empty() || list.contains(&0) {
                    return Err(format!("--shards entries must be >= 1, got `{value}`"));
                }
                if command != Command::Bench && list.len() > 1 {
                    return Err(format!(
                        "--shards takes a single value here (lists are for `bench`), got `{value}`"
                    ));
                }
                shards_list = Some(list);
            }
            "--batch" => {
                let value = it.next().ok_or("--batch needs a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad --batch value `{value}`"))?;
                if parsed == 0 {
                    return Err("--batch must be >= 1".into());
                }
                batch = Some(parsed);
            }
            "--timesteps" => {
                let value = it.next().ok_or("--timesteps needs a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad --timesteps value `{value}`"))?;
                if parsed == 0 {
                    return Err("--timesteps must be >= 1".into());
                }
                timesteps = Some(parsed);
            }
            "--workers" => {
                if command != Command::Run {
                    return Err("--workers is only supported by `run`".into());
                }
                let value = it.next().ok_or("--workers needs a value")?;
                let parsed: usize =
                    value.parse().map_err(|_| format!("bad --workers value `{value}`"))?;
                if parsed == 0 {
                    return Err("--workers must be >= 1".into());
                }
                workers = Some(parsed);
            }
            "--json" => {
                if command != Command::Run {
                    return Err("--json is only supported by `run`".into());
                }
                json = true;
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other if path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }

    let path = path.ok_or_else(|| format!("missing scenario file\n\n{USAGE}"))?;
    let mut scenario =
        Scenario::from_file(std::path::Path::new(&path)).map_err(|e| e.to_string())?;
    if let Some(batch) = batch {
        scenario.config.batch = batch;
    }
    if let Some(steps) = timesteps {
        // Keep the scenario's encoding if it already runs temporally;
        // otherwise switch the run to direct-coded temporal inference.
        let encoding = match scenario.config.mode {
            WorkloadMode::Temporal { encoding, .. } => encoding,
            WorkloadMode::Synthetic => TemporalEncoding::Direct,
        };
        scenario.config.mode = WorkloadMode::Temporal { timesteps: steps, encoding };
    }
    if let Some(list) = &shards_list {
        scenario.shards = list[0];
    }
    Ok(Options { scenario, shards_list, workers, json })
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let opts = parse_options(Command::Run, args)?;
    // Compile once, then serve the request through a session — the CLI
    // never assembles backends by hand and never re-lowers per call.
    let plan = opts.scenario.compile().map_err(|e| e.to_string())?;
    let mut request = opts.scenario.request();
    if let Some(workers) = opts.workers {
        request = request.with_workers(workers);
    }
    let mut session = plan.open_session();
    let report = session.infer(&request);
    if opts.json {
        // The JSON report is a golden-pinned byte-exact contract; serving
        // diagnostics stay on the human-readable table path only.
        println!("{}", report.to_json());
        return Ok(());
    }
    let mode = match opts.scenario.config.mode {
        WorkloadMode::Synthetic => "synthetic".to_string(),
        WorkloadMode::Temporal { timesteps, encoding } => {
            format!("temporal T={timesteps} ({encoding})")
        }
    };
    let neuron = opts.scenario.neuron.map_or("lif", |m| m.as_str());
    println!(
        "scenario `{}`: {} · {} · {} · {} neurons · batch {} · {} shard(s) · {}",
        opts.scenario.name,
        report.network,
        report.variant,
        report.format,
        neuron,
        report.batch,
        opts.scenario.shards,
        mode,
    );
    print_layer_table(&report);
    print_timestep_table(&report);
    print_shard_table(&report);
    print_serving_stats(&plan, &session);
    Ok(())
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let opts = parse_options(Command::Bench, args)?;
    let shard_counts = opts.shards_list.unwrap_or_else(|| vec![1, 2, 4, 8]);
    println!(
        "scenario `{}`: shard sweep over batch {}",
        opts.scenario.name, opts.scenario.config.batch
    );
    println!(
        "{:>7} {:>16} {:>10} {:>10} {:>12} {:>12}",
        "shards", "makespan [cyc]", "speedup", "imbalance", "util(min)", "util(max)"
    );
    // One compiled plan and one long-lived session serve the whole sweep:
    // only the fleet attribution changes between shard counts, so the
    // lowering is paid exactly once.
    let plan = opts.scenario.compile().map_err(|e| e.to_string())?;
    let mut session = plan.open_session();
    let mut aggregate_json: Option<String> = None;
    for &shards in &shard_counts {
        let report = session.infer(&Request::batch(opts.scenario.config.batch).with_shards(shards));
        let fleet = report.shards.as_ref().expect("sharded runs carry fleet stats");
        let util_min = fleet.shards.iter().map(|s| s.utilization).fold(f64::INFINITY, f64::min);
        let util_max = fleet.shards.iter().map(|s| s.utilization).fold(0.0, f64::max);
        println!(
            "{:>7} {:>16.0} {:>10.2} {:>10.3} {:>12.3} {:>12.3}",
            shards, fleet.makespan_cycles, fleet.batch_speedup, fleet.imbalance, util_min, util_max
        );
        let json = report.without_shard_stats().to_json();
        match &aggregate_json {
            None => aggregate_json = Some(json),
            Some(reference) => {
                if *reference != json {
                    return Err(format!(
                        "aggregate report changed between shard counts (at {shards} shards)"
                    ));
                }
            }
        }
    }
    println!("aggregate report bit-identical across shard counts: yes");
    Ok(())
}

fn cmd_compare(args: &[String]) -> Result<(), String> {
    use spikestream::KernelVariant;
    let opts = parse_options(Command::Compare, args)?;
    let mut baseline_scenario = opts.scenario.clone();
    baseline_scenario.config.variant = KernelVariant::Baseline;
    let mut streamed_scenario = opts.scenario.clone();
    streamed_scenario.config.variant = KernelVariant::SpikeStream;

    let baseline_plan = baseline_scenario.compile().map_err(|e| e.to_string())?;
    let streamed_plan = streamed_scenario.compile().map_err(|e| e.to_string())?;
    let baseline = baseline_plan.open_session().infer(&baseline_scenario.request());
    let streamed = streamed_plan.open_session().infer(&streamed_scenario.request());
    println!(
        "scenario `{}`: Baseline vs SpikeStream · {} · {} · batch {} · {} shard(s)",
        opts.scenario.name, baseline.network, baseline.format, baseline.batch, opts.scenario.shards,
    );
    println!(
        "{:<10} {:>16} {:>16} {:>9} {:>12}",
        "layer", "base [cyc]", "stream [cyc]", "speedup", "energy gain"
    );
    for (b, s) in baseline.layers.iter().zip(streamed.layers.iter()) {
        println!(
            "{:<10} {:>16.0} {:>16.0} {:>8.2}x {:>11.2}x",
            b.name,
            b.cycles,
            s.cycles,
            b.cycles / s.cycles.max(1.0),
            b.energy_j / s.energy_j.max(f64::MIN_POSITIVE),
        );
    }
    println!(
        "{:<10} {:>16.0} {:>16.0} {:>8.2}x {:>11.2}x",
        "total",
        baseline.total_cycles(),
        streamed.total_cycles(),
        streamed.speedup_over(&baseline),
        streamed.energy_gain_over(&baseline),
    );
    Ok(())
}

fn print_layer_table(report: &InferenceReport) {
    println!(
        "{:<10} {:>14} {:>8} {:>8} {:>10} {:>12} {:>10}",
        "layer", "cycles", "util", "ipc", "rate", "synops", "power [W]"
    );
    for layer in &report.layers {
        println!(
            "{:<10} {:>14.0} {:>8.3} {:>8.3} {:>10.4} {:>12.0} {:>10.3}",
            layer.name,
            layer.cycles,
            layer.fpu_utilization,
            layer.ipc,
            layer.input_firing_rate,
            layer.synops,
            layer.power_w,
        );
    }
    println!(
        "total: {:.0} cycles · {:.3} ms · {:.3} mJ · avg util {:.3}",
        report.total_cycles(),
        report.total_seconds() * 1e3,
        report.total_energy_j() * 1e3,
        report.average_utilization(),
    );
}

fn print_timestep_table(report: &InferenceReport) {
    let Some(steps) = &report.timesteps else { return };
    println!(
        "{:>5} {:>14} {:>14} {:>12} {:>24}",
        "step", "cycles", "dma [B]", "energy [uJ]", "firing rates (per layer)"
    );
    for step in steps {
        let rates: Vec<String> = step.firing_rates.iter().map(|r| format!("{r:.3}")).collect();
        println!(
            "{:>5} {:>14.0} {:>14.0} {:>12.3} {:>24}",
            step.step,
            step.cycles,
            step.dma_bytes,
            step.energy_j * 1e6,
            rates.join(" "),
        );
    }
}

/// Serving diagnostics: how the request actually hit the plan's program
/// cache and the session's arenas/pool. On the analytic steady state the
/// cache line should read all hits (emits only from a cold compile) and
/// `arena grows` should be flat at one per worker slot.
fn print_serving_stats(plan: &spikestream::Plan, session: &spikestream::Session<'_>) {
    let cache = plan.programs().counters();
    println!(
        "programs: {} cached · {} lookups ({} hits, {} rebinds, {} emits)",
        plan.programs().len(),
        cache.lookups(),
        cache.hits,
        cache.rebinds,
        cache.emits,
    );
    let stats = session.stats();
    println!(
        "session: {} samples · {} arena grows · pool {{ threads {} · jobs {} · steals {} }}",
        stats.runs, stats.grows, stats.pool.spawned, stats.pool.jobs, stats.pool.steals,
    );
}

fn print_shard_table(report: &InferenceReport) {
    let Some(fleet) = &report.shards else { return };
    println!(
        "fleet: makespan {:.0} cycles · speedup {:.2}x · imbalance {:.3}",
        fleet.makespan_cycles, fleet.batch_speedup, fleet.imbalance
    );
    println!("{:>6} {:>9} {:>16} {:>12}", "shard", "samples", "busy [cyc]", "utilization");
    for shard in &fleet.shards {
        println!(
            "{:>6} {:>9} {:>16.0} {:>12.3}",
            shard.shard, shard.samples, shard.busy_cycles, shard.utilization
        );
    }
}
