//! The phase-folding contract: [`CostIntegrator::integrate`] deduplicates
//! replicated work items by core-equivalence class, and that fold must be
//! *bit-for-bit* identical to [`CostIntegrator::integrate_reference`],
//! which walks every core of every replicated item the long way. No
//! tolerance, no rounding allowance: a folded core copies the exit state
//! of its class representative, so any divergence at all means the class
//! key (share count + entry-state bits) admitted two cores that were not
//! actually interchangeable.
//!
//! Exact (non-replicated) programs take the same code path with nothing
//! to fold, so the suite covers them too — cheaply, via the exact
//! emitters — alongside randomized symbolic programs across every layer
//! kind x `KernelVariant` x `FpFormat` x firing rate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use snitch_arch::ClusterConfig;
use spikestream::{Engine, FpFormat, KernelVariant};
use spikestream_ir::{CostIntegrator, ProgramCost, StreamProgram};
use spikestream_kernels::LayerExecutor;
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::TensorShape;
use spikestream_snn::{ConvSpec, Layer, LayerKind, LinearSpec, PoolSpec};

const ALL_VARIANTS: [KernelVariant; 2] = [KernelVariant::Baseline, KernelVariant::SpikeStream];
const ALL_FORMATS: [FpFormat; 3] = [FpFormat::Fp32, FpFormat::Fp16, FpFormat::Fp8];

/// Assert the folded and reference integrations agree bit-for-bit.
///
/// `PartialEq` on `ProgramCost` compares `f64` fields with `==`, which
/// would let `-0.0` pass for `0.0`; the `Debug` comparison closes that
/// hole and doubles as a readable diff when a field diverges.
fn assert_fold_exact(label: &str, integrator: &CostIntegrator, program: &StreamProgram) {
    let folded = integrator.integrate(program);
    let reference = integrator.integrate_reference(program);
    assert_eq!(folded, reference, "{label}: folded vs reference integration");
    assert_eq!(
        format!("{folded:?}"),
        format!("{reference:?}"),
        "{label}: folded vs reference (bit-level)"
    );
}

fn conv_layer(in_c: usize, out_c: usize, hw: usize, seed: u64) -> Layer {
    let spec = ConvSpec {
        input: TensorShape::new(hw, hw, in_c),
        out_channels: out_c,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
    let mut rng = StdRng::seed_from_u64(seed);
    layer.randomize_weights(&mut rng, 0.1);
    layer
}

fn pool_layer(hw: usize, c: usize) -> Layer {
    let spec = PoolSpec { input: TensorShape::new(hw, hw, c), window: 2 };
    Layer::new("pool", LayerKind::AvgPool(spec), LifParams::default())
}

fn linear_layer(in_features: usize, out_features: usize, seed: u64) -> Layer {
    let spec = LinearSpec { in_features, out_features };
    let mut layer = Layer::new("fc", LayerKind::Linear(spec), LifParams::new(0.5, 0.15));
    let mut rng = StdRng::seed_from_u64(seed);
    layer.randomize_weights(&mut rng, 0.1);
    layer
}

/// Every layer of the paper's S-VGG11 lowered symbolically at its profile
/// rate, for every variant and format. This is the fixed-seed
/// differential run CI executes on every push; the proptests below widen
/// the same contract to randomized geometry.
#[test]
fn svgg11_symbolic_programs_fold_bit_for_bit() {
    let engine = Engine::svgg11(5);
    let integrator = CostIntegrator::snitch();
    let n = engine.network().len();
    for variant in ALL_VARIANTS {
        for format in ALL_FORMATS {
            let executor = LayerExecutor::new(variant, format);
            for (idx, layer) in engine.network().layers().iter().enumerate() {
                let input_rate = engine.profile().rates[idx];
                let output_rate = engine.profile().rates[(idx + 1).min(n - 1)];
                let program =
                    executor.lower_symbolic(integrator.config(), layer, input_rate, output_rate);
                assert_fold_exact(
                    &format!("svgg11/{}/{variant}/{format:?}", layer.name),
                    &integrator,
                    &program,
                );
            }
        }
    }
}

#[test]
fn folding_is_exact_under_single_core_and_fractional_shares() {
    // Degenerate cluster shapes stress the remainder-share classes: one
    // worker core (nothing to fold), and the default cluster at rates low
    // enough that every core's share is fractional (k < 1 scaled-delta
    // path).
    let single = ClusterConfig { worker_cores: 1, ..ClusterConfig::default() };
    let integrators =
        [CostIntegrator::snitch(), CostIntegrator::new(single, snitch_arch::CostModel::default())];
    let layer = conv_layer(8, 8, 6, 11);
    for integrator in &integrators {
        for rate in [0.0005, 0.01, 0.2, 0.9] {
            let program = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16)
                .lower_symbolic(integrator.config(), &layer, rate, rate * 0.8);
            assert_fold_exact(
                &format!("conv/cores={}/rate={rate}", integrator.config().worker_cores),
                integrator,
                &program,
            );
        }
    }
}

proptest! {
    #[test]
    fn random_symbolic_conv_programs_fold_bit_for_bit(
        in_c in 3usize..32,
        out_c in 4usize..48,
        hw in 4usize..14,
        input_rate in 0.001f64..0.95,
        output_rate in 0.001f64..0.95,
        seed in any::<u64>(),
    ) {
        let integrator = CostIntegrator::snitch();
        let mut layer = conv_layer(in_c, out_c, hw, seed);
        // Cover the dense-encoding lowering on a slice of the seed space:
        // its symbolic program has no rate-scaled gather, so its folded
        // classes collapse differently.
        layer.encodes_input = seed % 4 == 0;
        for variant in ALL_VARIANTS {
            let format = ALL_FORMATS[(seed % 3) as usize];
            let program = LayerExecutor::new(variant, format)
                .lower_symbolic(integrator.config(), &layer, input_rate, output_rate);
            let folded = integrator.integrate(&program);
            let reference = integrator.integrate_reference(&program);
            prop_assert_eq!(&folded, &reference);
            prop_assert_eq!(format!("{:?}", folded), format!("{:?}", reference));
        }
    }

    #[test]
    fn random_symbolic_fc_and_pool_programs_fold_bit_for_bit(
        features in 16usize..512,
        out_features in 4usize..64,
        hw in 4usize..16,
        channels in 2usize..32,
        input_rate in 0.001f64..0.95,
        output_rate in 0.001f64..0.95,
        seed in any::<u64>(),
    ) {
        let integrator = CostIntegrator::snitch();
        let layers = [
            linear_layer(features, out_features, seed),
            pool_layer(hw.div_ceil(2) * 2, channels),
        ];
        for variant in ALL_VARIANTS {
            let format = ALL_FORMATS[(seed % 3) as usize];
            for layer in &layers {
                let program = LayerExecutor::new(variant, format)
                    .lower_symbolic(integrator.config(), layer, input_rate, output_rate);
                let folded = integrator.integrate(&program);
                let reference = integrator.integrate_reference(&program);
                prop_assert_eq!(&folded, &reference);
                prop_assert_eq!(format!("{:?}", folded), format!("{:?}", reference));
            }
        }
    }
}

/// Exact programs carry no `Replicate` items, so `integrate` and
/// `integrate_reference` share every instruction — but the contract is
/// cheap to pin and guards against the fold flag ever leaking into the
/// non-replicated paths.
#[test]
fn exact_programs_are_untouched_by_folding() {
    use rand::Rng;
    use spikestream_kernels::ConvKernel;
    use spikestream_snn::tensor::SpikeMap;
    use spikestream_snn::{CompressedIfmap, NeuronState};

    let layer = conv_layer(8, 12, 6, 21);
    let LayerKind::Conv(spec) = layer.kind else { unreachable!() };
    let mut rng = StdRng::seed_from_u64(22);
    let shape = spec.padded_input();
    let mut map = SpikeMap::silent(shape);
    for h in 1..shape.h - 1 {
        for w in 1..shape.w - 1 {
            for c in 0..shape.c {
                if rng.gen_bool(0.3) {
                    map.set(h, w, c, true);
                }
            }
        }
    }
    let input = CompressedIfmap::from_spike_map(&map);
    let mut state = NeuronState::lif(spec.conv_output().len());
    let (program, _) = ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16).lower(
        &ClusterConfig::default(),
        &layer,
        &input,
        &mut state,
    );
    assert_fold_exact("conv/exact", &CostIntegrator::snitch(), &program);
}

/// The reference path is not an alias: a quick structural check that the
/// costs it produces carry real work, so a bug that made both paths
/// return zeros could not silently satisfy the differential suite.
#[test]
fn differential_suite_integrates_nonzero_work() {
    let integrator = CostIntegrator::snitch();
    let layer = conv_layer(16, 16, 8, 3);
    let program = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16).lower_symbolic(
        integrator.config(),
        &layer,
        0.25,
        0.2,
    );
    let cost: ProgramCost = integrator.integrate_reference(&program);
    assert!(cost.compute_cycles > 0);
    assert!(cost.flops > 0.0);
    assert!(cost.stream_elements > 0.0);
}
