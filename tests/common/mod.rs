//! Shared vocabulary of the cross-backend differential harness: proptest
//! strategies over neuron models and run dimensions, plus the tiny
//! conv→conv→fc network the differential properties drive. Lives in a
//! subdirectory so cargo does not build it as its own test binary.

use proptest::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::TensorShape;
use spikestream_snn::{ConvSpec, IzhiParams, LinearSpec, Network, NetworkBuilder, NeuronModel};

/// Uniform draw from a fixed candidate list — the vendored proptest has no
/// `prop_oneof!`, so enumerated dimensions (model family, encoding, format,
/// variant, timestep count) all go through this.
pub struct Choice<T: Clone>(Vec<T>);

/// A [`Choice`] strategy over `items`.
pub fn choice<T: Clone>(items: &[T]) -> Choice<T> {
    assert!(!items.is_empty(), "choice needs at least one candidate");
    Choice(items.to_vec())
}

impl<T: Clone> Strategy for Choice<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        self.0[rng.gen_range(0..self.0.len())].clone()
    }
}

/// Strategy over valid neuron models: LIF with randomized decay and
/// threshold, or an Izhikevich cortical cell (regular- or fast-spiking
/// base) with a randomized after-spike recovery increment.
pub struct AnyModel;

impl Strategy for AnyModel {
    type Value = NeuronModel;
    fn sample(&self, rng: &mut StdRng) -> NeuronModel {
        let model = if rng.gen::<bool>() {
            NeuronModel::Lif(LifParams::new(rng.gen_range(0.2f32..0.9), rng.gen_range(0.2f32..1.2)))
        } else {
            let base = if rng.gen::<bool>() {
                IzhiParams::regular_spiking()
            } else {
                IzhiParams::fast_spiking()
            };
            NeuronModel::Izhikevich(IzhiParams { d: rng.gen_range(2.0f32..10.0), ..base })
        };
        model.validate().expect("strategies draw valid models only");
        model
    }
}

/// Weight amplitude matched to the model's operating regime: the
/// millivolt-scale Izhikevich dynamics (rest near −70 mV, threshold
/// 30 mV) need input currents orders of magnitude above the unit-scale
/// LIF thresholds to reach threshold within a few timesteps.
pub fn weight_amplitude(model: &NeuronModel) -> f32 {
    match model {
        NeuronModel::Lif(_) => 0.15,
        NeuronModel::Izhikevich(_) => 8.0,
    }
}

/// The harness's tiny conv→conv→fc network under `model` (first layer
/// encodes the input image), sized so cycle-level property cases stay
/// fast across hundreds of randomized configurations.
pub fn tiny_network(seed: u64, model: NeuronModel) -> Network {
    let mut net = NetworkBuilder::new("diff-tiny")
        .conv(
            "conv1",
            ConvSpec {
                input: TensorShape::new(6, 6, 3),
                out_channels: 6,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: true,
            },
            model,
        )
        .conv(
            "conv2",
            ConvSpec {
                input: TensorShape::new(3, 3, 6),
                out_channels: 8,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: false,
            },
            model,
        )
        .linear("fc3", LinearSpec { in_features: 3 * 3 * 8, out_features: 10 }, model)
        .build_with_random_weights(seed, weight_amplitude(&model));
    net.layers_mut()[0].encodes_input = true;
    net.validate().expect("shapes chain");
    net
}
