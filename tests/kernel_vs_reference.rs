//! Cross-crate integration test: the cycle-level kernels (baseline and
//! SpikeStream, all storage formats) must agree with the functional
//! reference engine on a small but non-trivial network, and the two code
//! variants must be bit-identical to each other.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snitch_arch::{ClusterConfig, CostModel};
use snitch_sim::ClusterModel;
use spikestream::{FpFormat, KernelVariant};
use spikestream_kernels::{ConvKernel, FcKernel};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{
    CompressedFcInput, CompressedIfmap, ConvSpec, Layer, LayerKind, LinearSpec, NeuronState,
    ReferenceEngine,
};

fn conv_layer() -> (Layer, ConvSpec) {
    let spec = ConvSpec {
        input: TensorShape::new(6, 6, 12),
        out_channels: 16,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.25));
    let mut rng = StdRng::seed_from_u64(100);
    layer.randomize_weights(&mut rng, 0.15);
    (layer, spec)
}

fn conv_input(spec: &ConvSpec, rate: f64) -> CompressedIfmap {
    let mut rng = StdRng::seed_from_u64(200);
    let shape = spec.padded_input();
    let mut map = SpikeMap::silent(shape);
    for h in 1..shape.h - 1 {
        for w in 1..shape.w - 1 {
            for c in 0..shape.c {
                if rng.gen_bool(rate) {
                    map.set(h, w, c, true);
                }
            }
        }
    }
    CompressedIfmap::from_spike_map(&map)
}

#[test]
fn conv_kernels_match_reference_for_every_format_and_variant() {
    let (layer, spec) = conv_layer();
    let input = conv_input(&spec, 0.3);
    let reference = ReferenceEngine::new();
    let ref_currents = reference.conv_currents(&layer, &spec, &input.decompress());

    for format in [FpFormat::Fp32, FpFormat::Fp16, FpFormat::Fp8] {
        let mut outputs = Vec::new();
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
            let mut state = NeuronState::lif(spec.conv_output().len());
            let out =
                ConvKernel::new(variant, format).run(&mut cluster, &layer, &input, &mut state);
            outputs.push(out);
        }
        // The two variants are always bit-identical to each other.
        assert_eq!(outputs[0].spikes, outputs[1].spikes, "{format}");
        assert_eq!(outputs[0].currents, outputs[1].currents, "{format}");

        // And close to the unquantized reference (tolerance scales with the
        // format's precision).
        let tol = match format {
            FpFormat::Fp32 => 1e-4,
            FpFormat::Fp16 => 2e-2,
            _ => 0.4,
        };
        for (a, b) in outputs[0].currents.data().iter().zip(ref_currents.data()) {
            assert!((a - b).abs() <= tol, "{format}: {a} vs {b}");
        }
    }
}

#[test]
fn fc_kernels_match_reference_and_each_other() {
    let spec = LinearSpec { in_features: 300, out_features: 40 };
    let mut layer = Layer::new("fc", LayerKind::Linear(spec), LifParams::new(0.5, 0.2));
    let mut rng = StdRng::seed_from_u64(300);
    layer.randomize_weights(&mut rng, 0.1);
    let spikes: Vec<bool> = (0..300).map(|_| rng.gen_bool(0.08)).collect();
    let input = CompressedFcInput::from_spikes(&spikes);

    let reference = ReferenceEngine::new();
    let ref_input = SpikeMap::from_vec(TensorShape::new(1, 1, 300), spikes);
    let ref_currents = reference.linear_currents(&layer, &spec, &ref_input);

    let mut results = Vec::new();
    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
        let mut state = NeuronState::lif(spec.out_features);
        results.push(FcKernel::new(variant, FpFormat::Fp32).run(
            &mut cluster,
            &layer,
            &input,
            &mut state,
        ));
    }
    assert_eq!(results[0].spikes, results[1].spikes);
    for (a, b) in results[0].currents.iter().zip(ref_currents.iter()) {
        assert!((a - b).abs() < 1e-4);
    }
}

#[test]
fn streaming_speedup_grows_with_channel_depth() {
    // The paper's core observation: deeper (wider-channel) layers have
    // longer SpVA streams and therefore benefit more from the SSRs.
    let speedup_for_depth = |in_c: usize| {
        let spec = ConvSpec {
            input: TensorShape::new(6, 6, in_c),
            out_channels: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let mut layer = Layer::new("c", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
        let mut rng = StdRng::seed_from_u64(7);
        layer.randomize_weights(&mut rng, 0.1);
        let input = conv_input(&spec, 0.25);
        let mut cycles = Vec::new();
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
            let mut state = NeuronState::lif(spec.conv_output().len());
            ConvKernel::new(variant, FpFormat::Fp16).run(&mut cluster, &layer, &input, &mut state);
            cycles.push(cluster.finish_phase("x").compute_cycles as f64);
        }
        cycles[0] / cycles[1]
    };
    let shallow = speedup_for_depth(8);
    let deep = speedup_for_depth(128);
    assert!(deep > shallow, "deep {deep:.2} vs shallow {shallow:.2}");
}
