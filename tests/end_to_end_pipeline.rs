//! End-to-end pipeline test: chain the kernels layer to layer (spikes from
//! one layer feed the next) on a small network and check the chain against
//! the functional reference engine, exercising compression, padding,
//! pooling and both kernel types together.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snitch_arch::{ClusterConfig, CostModel};
use snitch_sim::ClusterModel;
use spikestream::{FpFormat, KernelVariant};
use spikestream_kernels::{ConvKernel, DenseEncodingKernel, FcKernel};
use spikestream_snn::encoding::{pad_image, pad_spikes, synthetic_image};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::TensorShape;
use spikestream_snn::{
    CompressedFcInput, CompressedIfmap, ConvSpec, LayerKind, LinearSpec, NetworkBuilder,
    NeuronState, ReferenceEngine,
};

#[test]
fn chained_inference_matches_the_reference_engine() {
    let lif = LifParams::new(0.5, 0.3);
    let mut network = NetworkBuilder::new("chain")
        .conv(
            "conv1",
            ConvSpec {
                input: TensorShape::new(8, 8, 3),
                out_channels: 8,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: true,
            },
            lif,
        )
        .conv(
            "conv2",
            ConvSpec {
                input: TensorShape::new(4, 4, 8),
                out_channels: 16,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: false,
            },
            lif,
        )
        .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
        .build_with_random_weights(77, 0.15);
    network.layers_mut()[0].encodes_input = true;
    network.validate().expect("shapes chain");

    let mut rng = StdRng::seed_from_u64(5);
    let image_inner = synthetic_image(TensorShape::new(8, 8, 3), &mut rng);

    // --- Reference chain ---------------------------------------------------
    let reference = ReferenceEngine::new();
    let layers = network.layers();
    let (spec1, spec2, spec3) = match (&layers[0].kind, &layers[1].kind, &layers[2].kind) {
        (LayerKind::Conv(a), LayerKind::Conv(b), LayerKind::Linear(c)) => (*a, *b, *c),
        _ => panic!("unexpected layer kinds"),
    };

    let padded_image = pad_image(&image_inner, spec1.padding);
    let mut ref_state1 = NeuronState::lif(spec1.conv_output().len());
    let ref_currents1 = reference.conv_currents_dense(&layers[0], &spec1, &padded_image);
    let ref_spikes1 = reference.activate_conv(&layers[0], &spec1, &ref_currents1, &mut ref_state1);
    let ref_out1 = spikestream_snn::reference::max_pool_2x2(&ref_spikes1);

    let mut ref_state2 = NeuronState::lif(spec2.conv_output().len());
    let ref_out2 =
        reference.conv_forward(&layers[1], &pad_spikes(&ref_out1, spec2.padding), &mut ref_state2);

    let mut ref_state3 = NeuronState::lif(spec3.out_features);
    let ref_out3 = reference.linear_forward(&layers[2], &ref_out2, &mut ref_state3);

    // --- Kernel chain (SpikeStream, FP32 so results are exact) -------------
    let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
    let format = FpFormat::Fp32;

    let mut state1 = NeuronState::lif(spec1.conv_output().len());
    let out1 = DenseEncodingKernel::new(KernelVariant::SpikeStream, format).run(
        &mut cluster,
        &layers[0],
        &padded_image,
        &mut state1,
    );
    let layer1_cycles = cluster.finish_phase("conv1").compute_cycles;
    assert_eq!(out1.output, ref_out1, "conv1 output spikes");

    let padded = pad_spikes(&out1.output, spec2.padding);
    let compressed = CompressedIfmap::from_spike_map(&padded);
    let mut state2 = NeuronState::lif(spec2.conv_output().len());
    let out2 = ConvKernel::new(KernelVariant::SpikeStream, format).run(
        &mut cluster,
        &layers[1],
        &compressed,
        &mut state2,
    );
    let layer2_cycles = cluster.finish_phase("conv2").compute_cycles;
    assert_eq!(out2.output, ref_out2, "conv2 output spikes");

    let fc_input = CompressedFcInput::from_spike_map(&out2.output);
    let mut state3 = NeuronState::lif(spec3.out_features);
    let out3 = FcKernel::new(KernelVariant::SpikeStream, format).run(
        &mut cluster,
        &layers[2],
        &fc_input,
        &mut state3,
    );
    let layer3_cycles = cluster.finish_phase("fc3").compute_cycles;
    assert_eq!(out3.spikes, ref_out3, "fc3 output spikes");

    // Timing sanity: every layer costs cycles and the conv layers dominate.
    assert!(layer1_cycles > 0 && layer2_cycles > 0 && layer3_cycles > 0);
    assert!(layer1_cycles + layer2_cycles > layer3_cycles);
}
