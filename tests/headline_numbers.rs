//! Integration test E7: the headline numbers of the paper's abstract.
//!
//! We do not require exact matches with the paper (our substrate is an
//! architectural model, not the authors' RTL + post-layout flow), but the
//! *shape* must hold: a large speedup from streaming, a utilization jump
//! from ~10% to >40%, bigger gains in FP8 than FP16, and energy-efficiency
//! improvements alongside the speedup.

use spikestream::experiments::headline;

#[test]
fn headline_numbers_have_the_paper_shape() {
    let h = headline(16);

    // Paper: 4.39x (abstract) .. 7.29x (FP8) end-to-end speedup.
    assert!(h.speedup_fp16 > 3.0, "FP16 speedup {:.2}", h.speedup_fp16);
    assert!(h.speedup_fp8 > h.speedup_fp16, "FP8 must beat FP16");
    assert!(h.speedup_fp8 < 12.0, "speedup should stay physically plausible");

    // Paper: utilization rises from 9.28% to 52.3%.
    assert!(
        h.utilization_baseline > 0.05 && h.utilization_baseline < 0.20,
        "baseline utilization {:.3}",
        h.utilization_baseline
    );
    assert!(
        h.utilization_spikestream > 0.40,
        "SpikeStream utilization {:.3}",
        h.utilization_spikestream
    );

    // Paper: 3.25x (FP16) and 5.67x (FP8) energy-efficiency gains.
    assert!(h.energy_gain_fp16 > 1.5, "FP16 energy gain {:.2}", h.energy_gain_fp16);
    assert!(h.energy_gain_fp8 > h.energy_gain_fp16, "FP8 energy gain must be larger");
}
