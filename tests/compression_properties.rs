//! Property-based integration tests on the compression formats and the
//! floating-point conversions — the two data-representation substrates the
//! kernels rely on.

use proptest::prelude::*;

use snitch_arch::fp::{f16_to_f32, f32_to_f16, f32_to_f8, f8_to_f32, FpFormat};
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{AerFrame, CompressedFcInput, CompressedIfmap};

proptest! {
    /// The packed representation round-trips through every format we have:
    /// `Vec<bool>` ⇄ packed words ⇄ CSR ⇄ AER, on shapes whose length sits
    /// on the word-packing edge cases (`len % 64 ∈ {0, 1, 63}` among
    /// others), with popcounts and active-index iteration agreeing at
    /// every hop.
    #[test]
    fn packed_round_trips_across_all_representations(
        h in 1usize..6,
        w in 1usize..6,
        rem_pick in 0usize..3,
        seed in any::<u64>(),
    ) {
        // Shapes whose bit count lands on the packing edge cases: a
        // multiple of 64 (no slack bits), one bit into a fresh word
        // (63 slack bits), and one bit short of a full word (1 slack bit).
        let rem = [0usize, 1, 63][rem_pick];
        let shape = if rem == 0 {
            TensorShape::new(h, w, 64) // len % 64 == 0, several full words
        } else {
            TensorShape::new(1, 1, 64 * h * w + rem) // len % 64 == rem
        };
        let mut state = seed;
        let mut bools = Vec::with_capacity(shape.len());
        for _ in 0..shape.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            bools.push(state >> 60 < 5);
        }

        // bools -> packed -> bools
        let map = SpikeMap::from_vec(shape, bools.clone());
        prop_assert_eq!(map.to_bools(), bools.clone());
        prop_assert_eq!(map.count_spikes(), bools.iter().filter(|&&b| b).count());

        // packed -> words -> packed (the serialization surface)
        let rebuilt = SpikeMap::from_words(shape, map.words().to_vec());
        prop_assert_eq!(&rebuilt, &map);

        // iter_active agrees with the dense scan
        let active: Vec<usize> = map.iter_active().collect();
        let expected: Vec<usize> =
            bools.iter().enumerate().filter_map(|(i, &b)| b.then_some(i)).collect();
        prop_assert_eq!(active, expected);

        // packed -> CSR -> packed
        let csr = CompressedIfmap::from_spike_map(&map);
        prop_assert_eq!(csr.spike_count(), map.count_spikes());
        prop_assert_eq!(csr.decompress(), map.clone());

        // packed -> AER -> packed
        let aer = AerFrame::from_spike_map(&map, 1);
        prop_assert_eq!(aer.events().len(), map.count_spikes());
        prop_assert_eq!(aer.decompress(), map.clone());

        // packed -> FC index array -> bools (flattened HWC order)
        if shape.len() <= u16::MAX as usize + 1 {
            let fc = spikestream_snn::CompressedFcInput::from_spike_map(&map);
            prop_assert_eq!(fc.decompress(), bools);
        }
    }

    /// CSR-derived compression is lossless for any spike pattern.
    #[test]
    fn csr_compression_round_trips(
        h in 1usize..8,
        w in 1usize..8,
        c in 1usize..32,
        seed in any::<u64>(),
    ) {
        let shape = TensorShape::new(h, w, c);
        let mut map = SpikeMap::silent(shape);
        let mut state = seed;
        for i in 0..shape.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            if state >> 60 < 5 {
                map.set(i / (w * c), (i / c) % w, i % c, true);
            }
        }
        let compressed = CompressedIfmap::from_spike_map(&map);
        prop_assert_eq!(compressed.decompress(), map.clone());
        prop_assert_eq!(compressed.spike_count(), map.count_spikes());

        // AER is also lossless, and never smaller than CSR for 16-bit fields.
        let aer = AerFrame::from_spike_map(&map, 0);
        prop_assert_eq!(aer.decompress(), map);
        if compressed.spike_count() > shape.h * shape.w {
            prop_assert!(aer.footprint_bytes() > compressed.footprint_bytes());
        }
    }

    /// FC compression is lossless for any boolean vector.
    #[test]
    fn fc_compression_round_trips(spikes in proptest::collection::vec(any::<bool>(), 0..2048)) {
        let compressed = CompressedFcInput::from_spikes(&spikes);
        prop_assert_eq!(compressed.decompress(), spikes);
    }

    /// A temporal run emits one AER frame per timestep; concatenating the
    /// frames' events yields monotonically non-decreasing timestamps, with
    /// frame `t` stamped exactly `t` — the property that makes the AER
    /// stream of a temporal inference replayable in order.
    #[test]
    fn aer_frame_sequences_have_monotone_timestamps(
        timesteps in 1usize..12,
        h in 1usize..6,
        w in 1usize..6,
        c in 1usize..16,
        seed in any::<u64>(),
    ) {
        let shape = TensorShape::new(h, w, c);
        let mut state = seed;
        let maps: Vec<SpikeMap> = (0..timesteps)
            .map(|_| {
                let mut map = SpikeMap::silent(shape);
                for i in 0..shape.len() {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if state >> 61 < 3 {
                        map.set(i / (w * c), (i / c) % w, i % c, true);
                    }
                }
                map
            })
            .collect();

        let frames = AerFrame::sequence(&maps);
        prop_assert_eq!(frames.len(), timesteps);
        let mut last = 0u16;
        for (t, (frame, map)) in frames.iter().zip(&maps).enumerate() {
            // Frame t is stamped t and round-trips its step's spikes.
            prop_assert!(frame.events().iter().all(|e| e.timestamp == t as u16));
            prop_assert_eq!(&frame.decompress(), map);
            // The concatenated event stream never goes backward in time.
            for event in frame.events() {
                prop_assert!(event.timestamp >= last);
                last = event.timestamp;
            }
        }
    }

    /// FP16 conversion round-trips exactly for values already representable
    /// in binary16, and is monotone for finite inputs.
    #[test]
    fn f16_round_trip_is_stable(bits in any::<u16>()) {
        let v = f16_to_f32(bits);
        if v.is_finite() {
            // Converting an exactly representable value back is lossless.
            prop_assert_eq!(f16_to_f32(f32_to_f16(v)).to_bits(), v.to_bits());
        }
    }

    /// Quantization never increases magnitude beyond the format's maximum
    /// and is idempotent.
    #[test]
    fn quantization_is_idempotent(v in -1.0e5f32..1.0e5f32) {
        for format in [FpFormat::Fp32, FpFormat::Fp16, FpFormat::Fp8] {
            let q = format.quantize(v);
            prop_assert_eq!(format.quantize(q), q);
        }
        let q8 = f8_to_f32(f32_to_f8(v));
        prop_assert!(q8.abs() <= 448.0);
    }

    /// FP8 rounding error is bounded by half a mantissa step (relative).
    #[test]
    fn f8_relative_error_is_bounded(v in 0.02f32..400.0f32) {
        let q = f8_to_f32(f32_to_f8(v));
        let rel = ((q - v) / v).abs();
        prop_assert!(rel <= 0.0667, "value {v} quantized to {q} (rel err {rel})");
    }
}
