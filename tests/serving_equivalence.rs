//! Golden-JSON serving equivalence.
//!
//! The compile-once `Plan`/`Session` redesign must not move a single byte
//! of any report: this suite replays the scenarios of the pre-redesign
//! engine — cycle-level (`tiny`, `tiny_pool`), temporal (`tiny_temporal`)
//! and analytic (S-VGG11 FP16/FP8, synthetic and temporal) at 1/2/4
//! shards — and compares
//!
//! 1. the *legacy* entry points (`Engine::run`, `Engine::run_sequential`,
//!    `Engine::run_sharded`, `Scenario::run`), now thin deprecated
//!    wrappers over a one-shot session, and
//! 2. the *serving* path (`Scenario::compile` → `Session::infer`)
//!
//! byte for byte against the JSON reports captured from the pre-redesign
//! code (`tests/golden/*.json`). `tiny_izhikevich` extends the set with a
//! two-state-variable temporal capture pinning the Izhikevich path.
//!
//! Refreshing a golden after an *intentional* behavior change:
//!
//! ```text
//! for n in 1 2 4; do
//!   cargo run --release --bin spikestream -- \
//!     run examples/scenarios/<name>.toml --shards $n --json \
//!     > tests/golden/<name>_shards$n.json
//! done
//! ```
//!
//! then explain in the commit message why every byte that moved was
//! supposed to move — these captures exist to make silent report drift
//! impossible, so a refresh must never ride along unexplained.
//!
//! This file is the one sanctioned caller of the deprecated wrappers — the
//! explicit exemption of the CI `-D deprecated` gate.
#![allow(deprecated)]

use std::path::{Path, PathBuf};

use spikestream::{AnalyticBackend, CycleLevelBackend, Request, Scenario, TimingModel};

fn repo_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

fn golden(name: &str) -> String {
    let path = repo_dir().join("tests/golden").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden capture {} must exist: {e}", path.display()))
        .trim_end()
        .to_string()
}

fn scenario(name: &str) -> Scenario {
    Scenario::from_file(&repo_dir().join("examples/scenarios").join(name)).expect("scenario parses")
}

/// Serve `scenario` at `shards` through the new lifecycle.
fn serve(scenario: &Scenario, shards: usize) -> String {
    let plan = scenario.compile().expect("scenario compiles");
    plan.open_session().infer(&Request::batch(scenario.config.batch).with_shards(shards)).to_json()
}

/// Run `scenario` at `shards` through the legacy wrapper entry points.
fn legacy(scenario: &Scenario, shards: usize) -> String {
    let mut legacy = scenario.clone();
    legacy.shards = shards;
    legacy.run().to_json()
}

#[test]
fn cycle_level_and_temporal_scenarios_match_the_pre_redesign_captures() {
    for name in ["tiny", "tiny_pool", "tiny_temporal", "tiny_izhikevich"] {
        let scenario = scenario(&format!("{name}.toml"));
        for shards in [1usize, 2, 4] {
            let expected = golden(&format!("{name}_shards{shards}.json"));
            assert_eq!(serve(&scenario, shards), expected, "{name} @ {shards} shards: session");
            assert_eq!(legacy(&scenario, shards), expected, "{name} @ {shards} shards: legacy");
        }
    }
}

#[test]
fn analytic_scenarios_match_the_pre_redesign_captures() {
    // `spikestream run svgg11_fp16.toml --batch 8 --shards 2 --json`
    let mut fp16 = scenario("svgg11_fp16.toml");
    fp16.config.batch = 8;
    assert_eq!(fp16.config.timing, TimingModel::Analytic);
    let expected = golden("svgg11_analytic_shards2.json");
    assert_eq!(serve(&fp16, 2), expected, "svgg11 fp16: session");
    assert_eq!(legacy(&fp16, 2), expected, "svgg11 fp16: legacy");

    // `--batch 4 --timesteps 3 --shards 2`: the temporal analytic path.
    let mut temporal = scenario("svgg11_fp16.toml");
    temporal.config.batch = 4;
    temporal.config = temporal.config.temporal_steps(3);
    let expected = golden("svgg11_analytic_t3_shards2.json");
    assert_eq!(serve(&temporal, 2), expected, "svgg11 t3: session");
    assert_eq!(legacy(&temporal, 2), expected, "svgg11 t3: legacy");

    // `spikestream run svgg11_fp8.toml --batch 8 --shards 4 --json`
    let mut fp8 = scenario("svgg11_fp8.toml");
    fp8.config.batch = 8;
    let expected = golden("svgg11_fp8_analytic_shards4.json");
    assert_eq!(serve(&fp8, 4), expected, "svgg11 fp8: session");
    assert_eq!(legacy(&fp8, 4), expected, "svgg11 fp8: legacy");
}

#[test]
fn every_legacy_engine_entry_point_is_a_faithful_session_wrapper() {
    let scenario = scenario("tiny.toml");
    let engine = scenario.engine();
    let config = scenario.config;
    let plan = engine.compile(&config);
    let mut session = plan.open_session();

    // Engine::run == parallel session over the full batch.
    assert_eq!(
        engine.run(&config).to_json(),
        session.infer(&Request::batch(config.batch)).to_json()
    );
    // Engine::run_sequential == sequential request.
    assert_eq!(
        engine.run_sequential(&CycleLevelBackend, &config).to_json(),
        session.infer(&Request::batch(config.batch).sequential()).to_json()
    );
    // Engine::run_sharded == sharded request.
    assert_eq!(
        engine.run_sharded(&CycleLevelBackend, &config, 3).to_json(),
        session.infer(&Request::batch(config.batch).with_shards(3)).to_json()
    );
    // Engine::run_with_backend == explicit-backend request; the timing
    // model named by the config is ignored in favour of the caller's
    // backend, exactly as before.
    let analytic = engine.run_with_backend(&AnalyticBackend, &config).to_json();
    assert_eq!(
        analytic,
        session.infer_with_backend(&AnalyticBackend, &Request::batch(config.batch)).to_json()
    );
    // Scenario::run == compile + sharded request.
    assert_eq!(legacy(&scenario, scenario.shards), serve(&scenario, scenario.shards));
}

#[test]
fn legacy_wrappers_keep_tolerating_a_zero_batch() {
    // The historical entry points clamped `batch: 0` to one sample; the
    // strict `Compiler::compile` rejects it, but the wrappers must keep
    // the old tolerance (bit-identical behavior, not just bit-identical
    // numbers).
    let scenario = scenario("tiny.toml");
    let engine = scenario.engine();
    let mut config = scenario.config;
    config.batch = 0;
    let zero = engine.run(&config);
    config.batch = 1;
    assert_eq!(zero.to_json(), engine.run(&config).to_json());

    let mut zero_scenario = scenario.clone();
    zero_scenario.config.batch = 0;
    assert_eq!(zero_scenario.run().batch, 1);
    assert_eq!(zero_scenario.run_sequential().batch, 1);
}
