//! The session-owned parked worker pool, observed from the outside.
//!
//! `tests/serving_equivalence.rs` already pins the pooled serving path
//! byte-for-byte against the pre-pool golden captures (the pool is the
//! default multi-worker executor). This suite pins the pool's *operational*
//! contract on top:
//!
//! * thread reuse — `SessionStats::pool.spawned` is flat after warm-up, no
//!   matter how many requests follow (the whole point of the pool);
//! * sizing — a session never owns more threads than its largest request
//!   needed, growth between requests spawns only the difference, and the
//!   calling thread always serves slot 0;
//! * equivalence — serving at workers 1/2/4/8 is bit-identical across both
//!   backends, and the pooled path is bit-identical to the legacy
//!   spawn-per-request executor it replaced;
//! * panic policy — a panicking backend propagates its payload to the
//!   caller and leaves the pool fully serviceable for the next request;
//! * lifecycle — dropping the session joins every pool thread.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

use spikestream::{
    AnalyticBackend, Engine, ExecutionBackend, FpFormat, InferenceConfig, KernelVariant,
    LayerSample, Plan, Request, SampleContext, Scenario,
};

/// Serialize the tests in this binary: they assert on pool thread counts
/// and `/proc/self/task`, which concurrent sessions in sibling tests would
/// perturb. (Each file under `tests/` is its own test binary, so this lock
/// covers every thread-spawning test in the process.)
static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn scenario(name: &str) -> Scenario {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios").join(name);
    Scenario::from_file(&path).expect("scenario parses")
}

fn golden(name: &str) -> String {
    let path: PathBuf = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden capture {} must exist: {e}", path.display()))
        .trim_end()
        .to_string()
}

fn svgg11_plan(batch: usize) -> Plan {
    Engine::svgg11(3).compile(&InferenceConfig {
        batch,
        seed: 0xFEED,
        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    })
}

#[test]
fn spawned_stays_flat_after_warm_up() {
    let _serial = serial();
    let plan = svgg11_plan(64);
    let mut session = plan.open_session();
    // chunk=4 → 16 chunks, so a workers=4 request uses all four slots.
    session.infer(&Request::batch(64).with_workers(4));
    let warm = session.stats();
    assert_eq!(warm.pool.spawned, 3, "slot 0 is the calling thread, never a pool thread");
    assert_eq!(warm.pool.jobs, 1);

    for _ in 0..16 {
        session.infer(&Request::batch(64).with_workers(4));
    }
    let steady = session.stats();
    assert_eq!(steady.pool.spawned, warm.pool.spawned, "no thread churn after warm-up");
    assert_eq!(steady.pool.jobs, 17);
    // Every pooled request wakes exactly the workers-1 pool threads it uses.
    assert_eq!(steady.pool.wakeups, 17 * 3);
    // Every chunk is claimed exactly once per request.
    assert_eq!(steady.pool.steals, 17 * 16);
    assert_eq!(steady.grows, warm.grows, "steady-state requests grow no arena buffer");
}

#[test]
fn pool_grows_to_the_largest_request_and_never_shrinks() {
    let _serial = serial();
    let plan = svgg11_plan(64);
    let mut session = plan.open_session();

    session.infer(&Request::batch(64).with_workers(2));
    assert_eq!(session.stats().pool.spawned, 1);

    session.infer(&Request::batch(64).with_workers(8));
    assert_eq!(session.stats().pool.spawned, 7, "growth spawns only the difference");

    // A smaller request leaves the extra threads parked, not joined.
    session.infer(&Request::batch(64).with_workers(2));
    assert_eq!(session.stats().pool.spawned, 7);

    // Sequential requests bypass the pool entirely.
    let wakeups = session.stats().pool.wakeups;
    session.infer(&Request::batch(64).sequential());
    assert_eq!(session.stats().pool.wakeups, wakeups);
}

#[test]
fn single_worker_requests_never_spawn_a_thread() {
    let _serial = serial();
    let plan = svgg11_plan(16);
    let mut session = plan.open_session();
    for _ in 0..4 {
        session.infer(&Request::batch(16).sequential());
    }
    // A tiny batch clamps to one worker (one chunk) even with a large
    // worker override — still no pool involvement.
    session.infer(&Request::batch(3).with_workers(8));
    assert_eq!(session.stats().pool.spawned, 0);
    assert_eq!(session.stats().pool.jobs, 0);
}

#[test]
fn pooled_serving_is_bit_identical_across_worker_counts() {
    let _serial = serial();
    // Analytic S-VGG11: one session, every worker count, one reference.
    let plan = svgg11_plan(32);
    let mut session = plan.open_session();
    let reference = session.infer(&Request::batch(32).sequential()).to_json();
    for workers in [2usize, 4, 8] {
        let report = session.infer(&Request::batch(32).with_workers(workers)).to_json();
        assert_eq!(report, reference, "workers={workers}");
    }

    // Cycle-level and temporal scenarios against the golden captures, at
    // every worker count (the goldens predate the pool — byte-identity
    // here is the "pool moved nothing" guarantee).
    for name in ["tiny", "tiny_temporal"] {
        let scenario = scenario(&format!("{name}.toml"));
        let plan = scenario.compile().expect("scenario compiles");
        let mut session = plan.open_session();
        let expected = golden(&format!("{name}_shards2.json"));
        for workers in [1usize, 2, 4, 8] {
            let request =
                Request::batch(scenario.config.batch).with_shards(2).with_workers(workers);
            assert_eq!(session.infer(&request).to_json(), expected, "{name} workers={workers}");
        }
    }
}

#[test]
fn pooled_and_spawn_per_request_paths_agree() {
    let _serial = serial();
    let plan = svgg11_plan(48);
    let mut pooled = plan.open_session();
    let mut legacy = plan.open_session().with_spawn_per_request(true);
    for workers in [2usize, 4, 8] {
        let request = Request::batch(48).with_workers(workers);
        assert_eq!(pooled.infer(&request), legacy.infer(&request), "workers={workers}");
    }
    assert_eq!(legacy.stats().pool.spawned, 0, "the baseline never touches the pool");
}

/// A backend that panics on one designated sample the first time it is
/// asked for it, then behaves exactly like [`AnalyticBackend`].
struct PanicOnce {
    fuse: AtomicUsize,
    sample: usize,
}

impl PanicOnce {
    fn armed(sample: usize) -> Self {
        PanicOnce { fuse: AtomicUsize::new(1), sample }
    }
}

impl ExecutionBackend for PanicOnce {
    fn name(&self) -> &'static str {
        "panic-once"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        if sample == self.sample && self.fuse.swap(0, Ordering::SeqCst) == 1 {
            panic!("backend exploded on sample {sample}");
        }
        AnalyticBackend.run_sample(ctx, sample)
    }
}

#[test]
fn a_panicking_backend_propagates_and_leaves_the_pool_serviceable() {
    let _serial = serial();
    let plan = svgg11_plan(32);
    let mut session = plan.open_session();
    let reference = session.infer(&Request::batch(32).with_workers(4)).to_json();
    let spawned = session.stats().pool.spawned;

    let backend = PanicOnce::armed(17);
    let payload = catch_unwind(AssertUnwindSafe(|| {
        session.infer_with_backend(&backend, &Request::batch(32).with_workers(4))
    }))
    .expect_err("the backend panic must reach the caller");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload is a string");
    assert!(message.contains("backend exploded on sample 17"), "got: {message}");

    // The fuse is blown, so the same backend now serves cleanly — through
    // the same pool threads, with results identical to the plan's backend.
    let report =
        session.infer_with_backend(&backend, &Request::batch(32).with_workers(4)).to_json();
    assert_eq!(report, reference, "the pool serves correctly after a worker panic");
    assert_eq!(session.stats().pool.spawned, spawned, "no thread was lost or respawned");
}

#[test]
fn dropping_the_session_joins_every_pool_thread() {
    let _serial = serial();
    let count = || std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0);
    let plan = svgg11_plan(64);
    let before = count();
    {
        let mut session = plan.open_session();
        session.infer(&Request::batch(64).with_workers(8));
        assert_eq!(session.stats().pool.spawned, 7);
        assert!(count() >= before + 7, "pool threads are live while the session is");
    }
    // Drop joined the workers: the thread count is back to the baseline.
    assert_eq!(count(), before, "session drop joins every pool thread");
}
