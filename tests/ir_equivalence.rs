//! The IR equivalence contract: for every layer kind x `KernelVariant` x
//! `FpFormat`, integrating the cost model over a kernel's *exact* stream
//! program must match interpreting that same program on the cycle-level
//! cluster — exactly for instruction / FLOP / stream-element / DMA-byte
//! totals, and within a stated tolerance for cycle counts (the integrator
//! distributes work stealing with the same greedy rule but in floating
//! point, so tiny rounding reorders are allowed).
//!
//! This is what lets the analytic and cycle-level backends agree by
//! construction instead of by parallel reimplementation.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snitch_arch::{ClusterConfig, CostModel};
use snitch_sim::{execute_program, ClusterModel, PhaseStats};
use spikestream::{FpFormat, KernelVariant};
use spikestream_ir::{CostIntegrator, ProgramCost, StreamProgram};
use spikestream_kernels::{ConvKernel, DenseEncodingKernel, FcKernel, PoolKernel};
use spikestream_snn::encoding::{pad_image, synthetic_image};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{
    CompressedFcInput, CompressedIfmap, ConvSpec, Layer, LayerKind, LinearSpec, NeuronState,
    PoolSpec,
};

/// Relative cycle-count tolerance between integration and interpretation.
const CYCLE_TOLERANCE: f64 = 0.05;

const ALL_VARIANTS: [KernelVariant; 2] = [KernelVariant::Baseline, KernelVariant::SpikeStream];
const ALL_FORMATS: [FpFormat; 3] = [FpFormat::Fp32, FpFormat::Fp16, FpFormat::Fp8];

fn cluster() -> ClusterModel {
    ClusterModel::new(ClusterConfig::default(), CostModel::default())
}

fn random_spikes(shape: TensorShape, rate: f64, border: usize, seed: u64) -> SpikeMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = SpikeMap::silent(shape);
    for h in border..shape.h.saturating_sub(border) {
        for w in border..shape.w.saturating_sub(border) {
            for c in 0..shape.c {
                if rng.gen_bool(rate) {
                    map.set(h, w, c, true);
                }
            }
        }
    }
    map
}

/// Interpret and integrate one exact program; return both measurements.
fn both_consumers(program: &StreamProgram) -> (PhaseStats, ProgramCost) {
    let mut cl = cluster();
    execute_program(&mut cl, program);
    let stats = cl.finish_phase(&program.label);
    let cost = CostIntegrator::snitch().integrate(program);
    (stats, cost)
}

fn assert_equivalent(label: &str, stats: &PhaseStats, cost: &ProgramCost) {
    assert_eq!(stats.totals.int_instrs as f64, cost.int_instrs, "{label}: int instrs");
    assert_eq!(stats.totals.fp_instrs as f64, cost.fp_instrs, "{label}: fp instrs");
    assert_eq!(stats.totals.flops as f64, cost.flops, "{label}: flops");
    assert_eq!(
        stats.totals.stream_elements as f64, cost.stream_elements,
        "{label}: stream elements"
    );
    assert_eq!(stats.totals.ssr_configs as f64, cost.ssr_configs, "{label}: ssr configs");
    assert_eq!(
        stats.totals.fpu_busy_cycles as f64, cost.fpu_busy_cycles,
        "{label}: fpu busy cycles"
    );
    assert_eq!(stats.dma_bytes_in, cost.dma_bytes_in, "{label}: dma bytes in");
    assert_eq!(stats.dma_bytes_out, cost.dma_bytes_out, "{label}: dma bytes out");

    let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
        / stats.compute_cycles as f64;
    assert!(
        rel <= CYCLE_TOLERANCE,
        "{label}: compute cycles diverge by {:.2}% (sim {} vs integrator {})",
        100.0 * rel,
        stats.compute_cycles,
        cost.compute_cycles
    );
}

fn conv_program(
    variant: KernelVariant,
    format: FpFormat,
    in_c: usize,
    out_c: usize,
    rate: f64,
    seed: u64,
) -> StreamProgram {
    let spec = ConvSpec {
        input: TensorShape::new(6, 6, in_c),
        out_channels: out_c,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.2));
    let mut rng = StdRng::seed_from_u64(seed);
    layer.randomize_weights(&mut rng, 0.1);
    let input =
        CompressedIfmap::from_spike_map(&random_spikes(spec.padded_input(), rate, 1, seed ^ 1));
    let mut state = NeuronState::lif(spec.conv_output().len());
    ConvKernel::new(variant, format).lower(&ClusterConfig::default(), &layer, &input, &mut state).0
}

fn dense_program(variant: KernelVariant, format: FpFormat, seed: u64) -> StreamProgram {
    let spec = ConvSpec {
        input: TensorShape::new(6, 6, 3),
        out_channels: 8,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("conv1", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
    let mut rng = StdRng::seed_from_u64(seed);
    layer.randomize_weights(&mut rng, 0.2);
    let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
    let mut state = NeuronState::lif(spec.conv_output().len());
    DenseEncodingKernel::new(variant, format)
        .lower(&ClusterConfig::default(), &layer, &image, &mut state)
        .0
}

fn fc_program(variant: KernelVariant, format: FpFormat, rate: f64, seed: u64) -> StreamProgram {
    let spec = LinearSpec { in_features: 128, out_features: 24 };
    let mut layer = Layer::new("fc", LayerKind::Linear(spec), LifParams::new(0.5, 0.15));
    let mut rng = StdRng::seed_from_u64(seed);
    layer.randomize_weights(&mut rng, 0.1);
    let spikes: Vec<bool> = (0..spec.in_features).map(|_| rng.gen_bool(rate)).collect();
    let input = CompressedFcInput::from_spikes(&spikes);
    let mut state = NeuronState::lif(spec.out_features);
    FcKernel::new(variant, format).lower(&ClusterConfig::default(), &layer, &input, &mut state).0
}

fn pool_program(variant: KernelVariant, format: FpFormat, rate: f64, seed: u64) -> StreamProgram {
    let spec = PoolSpec { input: TensorShape::new(8, 8, 12), window: 2 };
    let layer = Layer::new("pool", LayerKind::AvgPool(spec), LifParams::default());
    let input = random_spikes(spec.input, rate, 0, seed);
    PoolKernel::new(variant, format).lower(&ClusterConfig::default(), &layer, &input).0
}

#[test]
fn every_kind_variant_and_format_integrates_to_the_interpreted_totals() {
    for variant in ALL_VARIANTS {
        for format in ALL_FORMATS {
            let programs = [
                ("conv", conv_program(variant, format, 12, 16, 0.3, 7)),
                ("dense", dense_program(variant, format, 9)),
                ("fc", fc_program(variant, format, 0.1, 11)),
                ("pool", pool_program(variant, format, 0.35, 13)),
            ];
            for (kind, program) in programs {
                let (stats, cost) = both_consumers(&program);
                assert_equivalent(&format!("{kind}/{variant}/{format:?}"), &stats, &cost);
            }
        }
    }
}

#[test]
fn double_buffered_conv_overlaps_dma_with_compute() {
    // A wide conv whose weights need several scratchpad tiles: the first
    // tile is a prologue load, the remaining tiles stream in behind
    // compute. Total cycles must come in under the serial sum of compute
    // and DMA busy time — the acceptance criterion for double buffering.
    let program = conv_program(KernelVariant::SpikeStream, FpFormat::Fp16, 96, 64, 0.3, 5);
    let mut cl = cluster();
    execute_program(&mut cl, &program);
    let stats = cl.finish_phase("conv");
    assert!(stats.dma_busy_cycles > 0, "the layer moves tiles");
    assert!(
        stats.cycles < stats.compute_cycles + stats.dma_busy_cycles,
        "double buffering must hide transfer time: cycles {} vs compute {} + dma {}",
        stats.cycles,
        stats.compute_cycles,
        stats.dma_busy_cycles
    );
    // The epilogue membrane write-back is issued only after the compute
    // stream drains, so the last DMA completion lands past compute and the
    // phase duration covers it.
    assert!(
        stats.dma_cycles > stats.compute_cycles,
        "epilogue write-back must land after compute: dma {} vs compute {}",
        stats.dma_cycles,
        stats.compute_cycles
    );
    assert_eq!(stats.cycles, stats.dma_cycles);

    // The integrator sees the same overlap and the same epilogue tail.
    let cost = CostIntegrator::snitch().integrate(&program);
    assert!(cost.cycles < cost.compute_cycles + cost.dma_busy_cycles);
    assert!(cost.dma_cycles > cost.compute_cycles);
}

#[test]
fn empty_streams_integrate_exactly_like_they_interpret() {
    // An emitter that lowers a silent position into an unguarded Stream op
    // must still satisfy the exact-totals contract: both consumers charge
    // the SSR configuration and skip the FREP.
    use snitch_arch::isa::FpOp;
    use snitch_arch::SsrId;
    use spikestream_ir::{ComputePhase, IndexStream, KernelOp, Phase, StreamSpec, WorkItem};
    let mut program = StreamProgram::new("empty-stream", FpFormat::Fp16);
    program.push(Phase::Compute(ComputePhase {
        code: vec![],
        items: vec![WorkItem::new(vec![
            KernelOp::alu(),
            KernelOp::Stream {
                ssrs: vec![(
                    SsrId::Ssr0,
                    StreamSpec::Indirect {
                        index_base: 0,
                        index_bytes: 2,
                        data_base: 0x100,
                        elem_bytes: 8,
                        indices: IndexStream::exact(Vec::new()),
                    },
                )],
                op: FpOp::Add,
            },
        ])],
    }));
    let (stats, cost) = both_consumers(&program);
    assert_equivalent("empty-stream", &stats, &cost);
    assert_eq!(stats.compute_cycles, cost.compute_cycles);
}

proptest! {
    #[test]
    fn integration_matches_interpretation_for_random_conv_layers(
        in_c in 4usize..24,
        out_c in 4usize..16,
        rate in 0.02f64..0.6,
        seed in any::<u64>(),
    ) {
        for variant in ALL_VARIANTS {
            let format = ALL_FORMATS[(seed % 3) as usize];
            let program = conv_program(variant, format, in_c, out_c, rate, seed);
            let (stats, cost) = both_consumers(&program);
            prop_assert_eq!(stats.totals.int_instrs as f64, cost.int_instrs);
            prop_assert_eq!(stats.totals.fp_instrs as f64, cost.fp_instrs);
            prop_assert_eq!(stats.totals.flops as f64, cost.flops);
            prop_assert_eq!(stats.dma_bytes_in, cost.dma_bytes_in);
            prop_assert_eq!(stats.dma_bytes_out, cost.dma_bytes_out);
            let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
                / stats.compute_cycles as f64;
            prop_assert!(rel <= CYCLE_TOLERANCE, "cycles diverge by {:.2}%", 100.0 * rel);
        }
    }

    #[test]
    fn integration_matches_interpretation_for_random_fc_and_pool_layers(
        rate in 0.01f64..0.5,
        seed in any::<u64>(),
    ) {
        for variant in ALL_VARIANTS {
            let format = ALL_FORMATS[(seed % 3) as usize];
            for program in [
                fc_program(variant, format, rate, seed),
                pool_program(variant, format, rate, seed),
            ] {
                let (stats, cost) = both_consumers(&program);
                prop_assert_eq!(stats.totals.int_instrs as f64, cost.int_instrs);
                prop_assert_eq!(stats.totals.flops as f64, cost.flops);
                prop_assert_eq!(stats.totals.stream_elements as f64, cost.stream_elements);
                let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
                    / stats.compute_cycles as f64;
                prop_assert!(rel <= CYCLE_TOLERANCE, "cycles diverge by {:.2}%", 100.0 * rel);
            }
        }
    }
}
