//! Plan-cache behavior under the serving lifecycle.
//!
//! What makes `Plan`/`Session` a *compile-once* API measurable: repeated
//! requests over the same sample population are pure cache hits (no
//! emitter, no cost integration in the per-sample loop), cross-bucket
//! misses are served by `Expected`-count re-binding when the program
//! shape allows it, and the steady state allocates nothing — neither new
//! cache entries nor arena growth.

use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, Plan, Request, TimingModel, WorkloadMode,
};
use spikestream_ir::CostIntegrator;
use spikestream_kernels::LayerExecutor;

fn analytic_plan(batch: usize) -> Plan {
    Engine::svgg11(5).compile(&InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch,
        seed: 0x5EED,
        mode: WorkloadMode::Synthetic,
    })
}

#[test]
fn plan_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Plan>();
    // And usable from another thread: the backend is a plan-owned value,
    // not a reference into a static registry.
    let plan = analytic_plan(2);
    std::thread::scope(|s| {
        s.spawn(|| {
            let report = plan.open_session().infer(&Request::batch(2));
            assert_eq!(report.layers.len(), 8);
        });
    });
}

#[test]
fn repeated_requests_hit_the_cache_without_new_entries() {
    let plan = analytic_plan(16);
    let units = plan.network().len() * 16;
    let mut session = plan.open_session();

    session.infer(&Request::batch(16));
    let warm = plan.programs().counters();
    let warm_len = plan.programs().len();
    assert_eq!(warm.lookups(), units as u64, "one binding per (sample, layer)");
    assert!(warm.misses() > 0, "first request binds the realized buckets");

    for _ in 0..3 {
        session.infer(&Request::batch(16));
    }
    let steady = plan.programs().counters();
    assert_eq!(steady.hits, warm.hits + 3 * units as u64, "steady state is all hits");
    assert_eq!(steady.misses(), warm.misses(), "no further emissions or rebinds");
    assert_eq!(plan.programs().len(), warm_len, "no per-request cache insertions");
}

#[test]
fn new_sample_populations_miss_into_new_buckets() {
    let plan = analytic_plan(4);
    let units = plan.network().len() * 4;
    let mut session = plan.open_session();
    session.infer(&Request::samples(0..4));
    let warm = plan.programs().counters();

    // Different samples realize different jittered sparsities: every
    // binding is a fresh bucket (served cold), none steals a warm hit.
    session.infer(&Request::samples(100..104));
    let cold = plan.programs().counters();
    assert_eq!(cold.hits, warm.hits, "disjoint sample jitter shares no bucket");
    assert_eq!(cold.misses(), warm.misses() + units as u64);

    // ... and re-serving the *first* population again is all hits.
    session.infer(&Request::samples(0..4));
    let again = plan.programs().counters();
    assert_eq!(again.hits, cold.hits + units as u64);
    assert_eq!(again.misses(), cold.misses());
}

#[test]
fn cross_bucket_misses_rebind_instead_of_re_emitting() {
    // Drive the plan-owned cache through the executor exactly like the
    // analytic backend does, with two sparsities that share the discrete
    // program shape (same planner footprint, same output rate): the
    // second binding must be served by `Expected`-count re-binding and be
    // bit-identical to a from-scratch emission.
    let plan = analytic_plan(2);
    let cache = plan.programs();
    let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);
    let integrator = CostIntegrator::snitch();
    let layer_idx = 2; // a spike-consuming conv layer of S-VGG11
    let layer = &plan.network().layers()[layer_idx];

    let before = cache.counters();
    let (r1, r2) = (0.2000001, 0.2000002); // same rounded ifmap footprint
    let first = executor.bind_symbolic(cache, &integrator, layer_idx, layer, r1, 0.15);
    let second = executor.bind_symbolic(cache, &integrator, layer_idx, layer, r2, 0.15);
    let after = cache.counters();

    assert_eq!(after.emits, before.emits + 1, "only the first binding runs the emitter");
    assert_eq!(after.rebinds, before.rebinds + 1, "the sibling bucket is re-bound");
    assert_ne!(first.program, second.program, "distinct buckets, distinct Expected counts");
    let fresh = executor.lower_symbolic(integrator.config(), layer, r2, 0.15);
    assert_eq!(second.program, fresh, "re-binding is bit-identical to re-emission");
    assert_eq!(second.cost, integrator.integrate(&fresh));
}

#[test]
fn distinct_neuron_models_never_cross_serve_cached_programs() {
    use spikestream_ir::ProgramCache;
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::{ConvSpec, IzhiParams, Layer, LayerKind, NeuronModel};

    // One layer geometry in two flavors differing only in neuron model,
    // bound through one shared cache at identical rates: the cache key's
    // model class must keep the entries apart — a cross-served LIF program
    // would under-price the Izhikevich DMA and FLOPs silently.
    let spec = ConvSpec {
        input: TensorShape::new(6, 6, 8),
        out_channels: 8,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut lif_layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
    let mut rng: rand::rngs::StdRng = rand::SeedableRng::seed_from_u64(3);
    lif_layer.randomize_weights(&mut rng, 0.1);
    let mut izhi_layer = lif_layer.clone();
    izhi_layer.neuron = NeuronModel::Izhikevich(IzhiParams::regular_spiking());

    let cache = ProgramCache::new();
    let integrator = CostIntegrator::snitch();
    let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);

    let lif = executor.bind_symbolic(&cache, &integrator, 0, &lif_layer, 0.2, 0.15);
    let warm = cache.counters();
    assert_eq!(warm.emits, 1, "first model emits its program");

    // Same layer index, same rates, other model: a fresh emission — not a
    // hit, not an `Expected`-count rebind of the LIF entry.
    let izhi = executor.bind_symbolic(&cache, &integrator, 0, &izhi_layer, 0.2, 0.15);
    let cold = cache.counters();
    assert_eq!(cold.emits, warm.emits + 1, "the other model emits fresh");
    assert_eq!(cold.hits, warm.hits, "no cross-model cache hit");
    assert_eq!(cold.rebinds, warm.rebinds, "no cross-model rebinding");
    assert_ne!(lif.program, izhi.program, "the two models lower distinct programs");

    // Re-binding each model again is a pure hit on its own entry.
    executor.bind_symbolic(&cache, &integrator, 0, &lif_layer, 0.2, 0.15);
    executor.bind_symbolic(&cache, &integrator, 0, &izhi_layer, 0.2, 0.15);
    let steady = cache.counters();
    assert_eq!(steady.hits, cold.hits + 2, "each model hits its own entry");
    assert_eq!(steady.emits, cold.emits, "no further emissions");

    // Each cached program is exactly what its own emitter produces.
    assert_eq!(lif.program, executor.lower_symbolic(integrator.config(), &lif_layer, 0.2, 0.15));
    assert_eq!(izhi.program, executor.lower_symbolic(integrator.config(), &izhi_layer, 0.2, 0.15));
    assert_eq!(izhi.cost, integrator.integrate(&izhi.program));
}

#[test]
fn steady_state_requests_grow_no_arena_buffers() {
    let plan = analytic_plan(12);
    let mut session = plan.open_session();
    // Warm-up: arenas size themselves to the workload.
    session.infer(&Request::batch(12));
    session.infer(&Request::batch(12).with_shards(4));
    let (_, grows_warm) = session.arena_stats();

    for _ in 0..4 {
        session.infer(&Request::batch(12));
        session.infer(&Request::batch(12).with_shards(4));
    }
    let (runs, grows) = session.arena_stats();
    assert_eq!(runs, 10 * 12, "every sample ran through an arena");
    assert_eq!(grows, grows_warm, "steady-state serving allocates no arena growth");
}

#[test]
fn steady_state_serving_is_lookup_only_and_allocation_free() {
    // The combined serving contract behind the context-owned integrator /
    // executor and the `Arc`-shared cached programs: once a sample
    // population is warm, a request performs *no* emitter runs, *no* cost
    // integrations (zero emits and zero rebinds — every binding is an
    // exact-key hit served through the cache's `Arc`), and *no* arena
    // growth. Steady-state inference is a read-only walk over
    // already-priced programs.
    let plan = analytic_plan(8);
    let units = plan.network().len() * 8;
    let mut session = plan.open_session();

    // Warm-up: bind every realized sparsity bucket and size the arenas.
    session.infer(&Request::batch(8));
    let warm = plan.programs().counters();
    let warm_len = plan.programs().len();
    let (_, grows_warm) = session.arena_stats();

    for _ in 0..5 {
        session.infer(&Request::batch(8));
    }

    let steady = plan.programs().counters();
    assert_eq!(steady.emits, warm.emits, "steady state runs the emitter zero times");
    assert_eq!(steady.rebinds, warm.rebinds, "steady state re-prices zero programs");
    assert_eq!(steady.hits, warm.hits + 5 * units as u64, "every binding is a pure hit");
    assert_eq!(plan.programs().len(), warm_len, "no new cache entries");

    let (runs, grows) = session.arena_stats();
    assert_eq!(runs, 6 * 8, "every sample ran through an arena");
    assert_eq!(grows, grows_warm, "steady state allocates no arena growth");

    let stats = session.stats();
    assert_eq!(stats.runs, 6 * 8);
    assert_eq!(stats.grows, grows_warm, "session stats agree with the arena pool");
}

#[test]
fn temporal_sessions_reuse_membrane_state_arenas_across_requests() {
    use spikestream::{NetworkChoice, TemporalEncoding};
    let (network, profile) = NetworkChoice::TinyCnn.build(7);
    let engine = Engine::new(network, profile);
    let config = InferenceConfig {
        timing: TimingModel::CycleLevel,
        batch: 2,
        seed: 9,
        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    }
    .temporal(3, TemporalEncoding::Rate);
    let plan = engine.compile(&config);
    let mut session = plan.open_session();

    let first = session.infer(&Request::batch(2).sequential());
    let (_, grows_warm) = session.arena_stats();
    for _ in 0..3 {
        // Membranes are reset per sample by the arena-owned scratch, so
        // repeated requests are bit-identical and allocation-free.
        let again = session.infer(&Request::batch(2).sequential());
        assert_eq!(again.to_json(), first.to_json());
    }
    let (runs, grows) = session.arena_stats();
    assert_eq!(runs, 8);
    assert_eq!(grows, grows_warm, "temporal scratch reuse reaches steady state");
}
