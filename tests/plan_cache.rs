//! Plan-cache behavior under the serving lifecycle.
//!
//! What makes `Plan`/`Session` a *compile-once* API measurable: repeated
//! requests over the same sample population are pure cache hits (no
//! emitter, no cost integration in the per-sample loop), cross-bucket
//! misses are served by `Expected`-count re-binding when the program
//! shape allows it, and the steady state allocates nothing — neither new
//! cache entries nor arena growth.

use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, Plan, Request, TimingModel, WorkloadMode,
};
use spikestream_ir::CostIntegrator;
use spikestream_kernels::LayerExecutor;

fn analytic_plan(batch: usize) -> Plan {
    Engine::svgg11(5).compile(&InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch,
        seed: 0x5EED,
        mode: WorkloadMode::Synthetic,
    })
}

#[test]
fn plan_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Plan>();
    // And usable from another thread: the backend is a plan-owned value,
    // not a reference into a static registry.
    let plan = analytic_plan(2);
    std::thread::scope(|s| {
        s.spawn(|| {
            let report = plan.open_session().infer(&Request::batch(2));
            assert_eq!(report.layers.len(), 8);
        });
    });
}

#[test]
fn repeated_requests_hit_the_cache_without_new_entries() {
    let plan = analytic_plan(16);
    let units = plan.network().len() * 16;
    let mut session = plan.open_session();

    session.infer(&Request::batch(16));
    let warm = plan.programs().counters();
    let warm_len = plan.programs().len();
    assert_eq!(warm.lookups(), units as u64, "one binding per (sample, layer)");
    assert!(warm.misses() > 0, "first request binds the realized buckets");

    for _ in 0..3 {
        session.infer(&Request::batch(16));
    }
    let steady = plan.programs().counters();
    assert_eq!(steady.hits, warm.hits + 3 * units as u64, "steady state is all hits");
    assert_eq!(steady.misses(), warm.misses(), "no further emissions or rebinds");
    assert_eq!(plan.programs().len(), warm_len, "no per-request cache insertions");
}

#[test]
fn new_sample_populations_miss_into_new_buckets() {
    let plan = analytic_plan(4);
    let units = plan.network().len() * 4;
    let mut session = plan.open_session();
    session.infer(&Request::samples(0..4));
    let warm = plan.programs().counters();

    // Different samples realize different jittered sparsities: every
    // binding is a fresh bucket (served cold), none steals a warm hit.
    session.infer(&Request::samples(100..104));
    let cold = plan.programs().counters();
    assert_eq!(cold.hits, warm.hits, "disjoint sample jitter shares no bucket");
    assert_eq!(cold.misses(), warm.misses() + units as u64);

    // ... and re-serving the *first* population again is all hits.
    session.infer(&Request::samples(0..4));
    let again = plan.programs().counters();
    assert_eq!(again.hits, cold.hits + units as u64);
    assert_eq!(again.misses(), cold.misses());
}

#[test]
fn cross_bucket_misses_rebind_instead_of_re_emitting() {
    // Drive the plan-owned cache through the executor exactly like the
    // analytic backend does, with two sparsities that share the discrete
    // program shape (same planner footprint, same output rate): the
    // second binding must be served by `Expected`-count re-binding and be
    // bit-identical to a from-scratch emission.
    let plan = analytic_plan(2);
    let cache = plan.programs();
    let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);
    let integrator = CostIntegrator::snitch();
    let layer_idx = 2; // a spike-consuming conv layer of S-VGG11
    let layer = &plan.network().layers()[layer_idx];

    let before = cache.counters();
    let (r1, r2) = (0.2000001, 0.2000002); // same rounded ifmap footprint
    let first = executor.bind_symbolic(cache, &integrator, layer_idx, layer, r1, 0.15);
    let second = executor.bind_symbolic(cache, &integrator, layer_idx, layer, r2, 0.15);
    let after = cache.counters();

    assert_eq!(after.emits, before.emits + 1, "only the first binding runs the emitter");
    assert_eq!(after.rebinds, before.rebinds + 1, "the sibling bucket is re-bound");
    assert_ne!(first.program, second.program, "distinct buckets, distinct Expected counts");
    let fresh = executor.lower_symbolic(integrator.config(), layer, r2, 0.15);
    assert_eq!(second.program, fresh, "re-binding is bit-identical to re-emission");
    assert_eq!(second.cost, integrator.integrate(&fresh));
}

#[test]
fn steady_state_requests_grow_no_arena_buffers() {
    let plan = analytic_plan(12);
    let mut session = plan.open_session();
    // Warm-up: arenas size themselves to the workload.
    session.infer(&Request::batch(12));
    session.infer(&Request::batch(12).with_shards(4));
    let (_, grows_warm) = session.arena_stats();

    for _ in 0..4 {
        session.infer(&Request::batch(12));
        session.infer(&Request::batch(12).with_shards(4));
    }
    let (runs, grows) = session.arena_stats();
    assert_eq!(runs, 10 * 12, "every sample ran through an arena");
    assert_eq!(grows, grows_warm, "steady-state serving allocates no arena growth");
}

#[test]
fn temporal_sessions_reuse_membrane_state_arenas_across_requests() {
    use spikestream::{NetworkChoice, TemporalEncoding};
    let (network, profile) = NetworkChoice::TinyCnn.build(7);
    let engine = Engine::new(network, profile);
    let config = InferenceConfig {
        timing: TimingModel::CycleLevel,
        batch: 2,
        seed: 9,
        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    }
    .temporal(3, TemporalEncoding::Rate);
    let plan = engine.compile(&config);
    let mut session = plan.open_session();

    let first = session.infer(&Request::batch(2).sequential());
    let (_, grows_warm) = session.arena_stats();
    for _ in 0..3 {
        // Membranes are reset per sample by the arena-owned scratch, so
        // repeated requests are bit-identical and allocation-free.
        let again = session.infer(&Request::batch(2).sequential());
        assert_eq!(again.to_json(), first.to_json());
    }
    let (runs, grows) = session.arena_stats();
    assert_eq!(runs, 8);
    assert_eq!(grows, grows_warm, "temporal scratch reuse reaches steady state");
}
