//! The sharded batch driver must be a pure refinement of the sequential
//! engine: identical aggregate reports at every shard count, plus
//! deterministic, sane fleet statistics on top.

use proptest::prelude::*;
use spikestream::{
    AnalyticBackend, BatchScheduler, Engine, FpFormat, InferenceConfig, KernelVariant,
    NetworkChoice, Request, Scenario, TimingModel, WorkloadMode,
};

fn svgg11_config(batch: usize) -> InferenceConfig {
    InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch,
        seed: 0xBEEF,
        mode: WorkloadMode::Synthetic,
    }
}

#[test]
fn sharded_aggregates_are_bit_identical_to_sequential_at_1_2_8_shards() {
    let engine = Engine::svgg11(9);
    let config = svgg11_config(32);
    let plan = engine.compile(&config);
    let mut session = plan.open_session();
    let sequential = session.infer(&Request::batch(32).sequential());
    for shards in [1, 2, 8] {
        let sharded = session.infer(&Request::batch(32).with_shards(shards));
        let fleet = sharded.shards.clone().expect("sharded runs carry fleet stats");
        assert_eq!(fleet.shards.len(), shards);
        let stripped = sharded.without_shard_stats();
        assert_eq!(stripped, sequential, "{shards} shards");
        assert_eq!(stripped.to_json(), sequential.to_json(), "{shards} shards");
    }
}

#[test]
fn sharded_cycle_level_backend_matches_sequential_too() {
    let scenario = Scenario::parse(
        "[scenario]\nname = \"cyc\"\nnetwork = \"tiny-cnn\"\ntiming = \"cycle-level\"\nbatch = 5\nshards = 2\nseed = 3\n",
    )
    .unwrap();
    let plan = scenario.compile().unwrap();
    let mut session = plan.open_session();
    let sharded = session.infer(&scenario.request());
    let sequential = session.infer(&Request::batch(scenario.config.batch).sequential());
    assert_eq!(sharded.without_shard_stats(), sequential);
}

#[test]
fn fleet_statistics_are_deterministic_across_repeated_runs() {
    let engine = Engine::svgg11(9);
    let config = svgg11_config(48);
    let plan = engine.compile(&config);
    let mut session = plan.open_session();
    let first = session.infer(&Request::batch(48).with_shards(8));
    for _ in 0..3 {
        let again = session.infer(&Request::batch(48).with_shards(8));
        assert_eq!(again, first);
        assert_eq!(again.to_json(), first.to_json());
    }
}

#[test]
fn imbalance_statistics_are_sane() {
    let engine = Engine::svgg11(9);
    let config = svgg11_config(64);
    let report = engine.compile(&config).open_session().infer(&Request::batch(64).with_shards(8));
    let fleet = report.shards.clone().expect("fleet stats present");

    assert_eq!(fleet.shards.iter().map(|s| s.samples).sum::<u64>(), 64);
    assert!((1.0..=8.0).contains(&fleet.imbalance), "imbalance {}", fleet.imbalance);
    assert!(fleet.batch_speedup > 4.0 && fleet.batch_speedup <= 8.0);
    let busiest: f64 = fleet.shards.iter().map(|s| s.busy_cycles).fold(0.0, f64::max);
    assert_eq!(fleet.makespan_cycles, busiest);
    for shard in &fleet.shards {
        assert!(shard.utilization > 0.0 && shard.utilization <= 1.0);
        assert!(shard.samples > 0, "64 samples over 8 shards leave nobody idle");
        // The least-loaded policy keeps every shard within the heaviest
        // single sample of the makespan, so utilization stays high.
        assert!(shard.utilization > 0.5, "utilization {}", shard.utilization);
    }
    // Per-shard utilization also surfaces in the JSON rendering.
    let json = report.to_json();
    assert!(json.contains("\"shards\":{\"makespan_cycles\":"));
    assert!(json.contains("\"per_shard\":[{\"shard\":0,"));
    assert!(json.contains("\"utilization\":"));
    assert!(json.contains("\"imbalance\":"));
}

#[test]
fn more_shards_than_samples_leave_the_tail_idle() {
    let engine = Engine::svgg11(9);
    let config = svgg11_config(3);
    let report = engine.compile(&config).open_session().infer(&Request::batch(3).with_shards(8));
    let fleet = report.shards.expect("fleet stats present");
    assert_eq!(fleet.shards.iter().filter(|s| s.samples > 0).count(), 3);
    assert_eq!(fleet.shards.iter().filter(|s| s.busy_cycles == 0.0).count(), 5);
}

proptest! {
    #[test]
    fn any_shard_count_times_batch_size_preserves_the_aggregate_report(
        shards in 1usize..12,
        batch in 1usize..40,
        seed in any::<u64>(),
    ) {
        let (network, profile) = NetworkChoice::TinyCnn.build(seed % 1000);
        let engine = Engine::new(network, profile);
        let config = InferenceConfig {
            variant: KernelVariant::SpikeStream,
            format: FpFormat::Fp16,
            timing: TimingModel::Analytic,
            batch,
            seed,
            mode: WorkloadMode::Synthetic,
        };
        let plan = engine.compile(&config);
        let mut session = plan.open_session();
        let sharded = session.infer(&Request::batch(batch).with_shards(shards));
        let fleet = sharded.shards.clone().expect("fleet stats present");
        prop_assert_eq!(fleet.shards.len(), shards);
        prop_assert_eq!(fleet.shards.iter().map(|s| s.samples).sum::<u64>(), batch as u64);
        let sequential = session.infer(&Request::batch(batch).sequential());
        prop_assert_eq!(sharded.without_shard_stats(), sequential);
    }
}

#[test]
fn scheduler_attribution_is_a_pure_function_of_the_samples() {
    // Different host-side worker/chunk choices must never change anything:
    // neither the measurements nor the fleet attribution.
    let engine = Engine::svgg11(2);
    let config = svgg11_config(24);
    let ctx = engine.sample_context(&config);
    let layers = engine.network().len();
    let reference = BatchScheduler::new(6).with_workers(1).with_chunk(1).run(
        &AnalyticBackend,
        &ctx,
        24,
        layers,
    );
    let racy = BatchScheduler::new(6).with_workers(8).with_chunk(2).run(
        &AnalyticBackend,
        &ctx,
        24,
        layers,
    );
    assert_eq!(racy.samples(), reference.samples());
    assert_eq!(racy.shard_of(), reference.shard_of());
    assert_eq!(racy.summary(), reference.summary());
}
