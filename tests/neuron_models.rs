//! Cross-backend differential harness for the neuron models.
//!
//! Randomized `(model × encoding × format × variant × T)` configurations
//! pin three claims for LIF *and* Izhikevich end to end:
//!
//! 1. **Bit-identity** — the kernel executor's temporal chain reproduces a
//!    scalar `f32` reference chain exactly at FP32: output spikes *and* the
//!    full membrane (`v`) / recovery (`u`) trajectories, every timestep.
//! 2. **Backend equality** — integrating a layer's exact stream program
//!    (the analytic backend's consumer) matches interpreting it on the
//!    cycle-level cluster: instruction / FLOP / stream-element / DMA-byte
//!    totals exactly, cycles within tolerance — and the two-variable
//!    Izhikevich update is priced honestly (doubled membrane DMA, larger
//!    activation FLOP counts), never inherited from the LIF template.
//! 3. **Schedule invariance** — serving reports are bit-identical across
//!    worker fan-out and shard counts 1/2/4 for both models, both
//!    encodings, T ∈ {1, 4}, both timing models.

mod common;

use common::{choice, AnyModel};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use snitch_arch::{ClusterConfig, CostModel};
use snitch_sim::{execute_program, ClusterModel, PhaseStats};
use spikestream::{
    AnalyticBackend, CycleLevelBackend, Engine, ExecutionBackend, FiringProfile, FpFormat,
    InferenceConfig, KernelVariant, Request, TemporalEncoding, TimingModel,
};
use spikestream_ir::{CostIntegrator, ProgramCost, StreamProgram};
use spikestream_kernels::{ConvKernel, FcKernel, LayerExecutor, LayerInput, LayerScratch};
use spikestream_snn::encoding::{pad_image, pad_spikes, synthetic_image, TemporalEncoder};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{
    CompressedFcInput, CompressedIfmap, ConvSpec, IzhiParams, Layer, LayerKind, LinearSpec,
    NeuronModel, NeuronState, ReferenceEngine, Tensor3,
};

/// Relative cycle-count tolerance between integration and interpretation
/// (same bound as the IR-equivalence contract).
const CYCLE_TOLERANCE: f64 = 0.05;

/// One representative of each model family for the deterministic
/// cross-product tests.
fn both_models() -> [NeuronModel; 2] {
    [
        NeuronModel::Lif(LifParams::new(0.5, 0.3)),
        NeuronModel::Izhikevich(IzhiParams::regular_spiking()),
    ]
}

fn random_spikes(shape: TensorShape, rate: f64, border: usize, seed: u64) -> SpikeMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut map = SpikeMap::silent(shape);
    for h in border..shape.h.saturating_sub(border) {
        for w in border..shape.w.saturating_sub(border) {
            for c in 0..shape.c {
                if rng.gen_bool(rate) {
                    map.set(h, w, c, true);
                }
            }
        }
    }
    map
}

/// Interpret and integrate one exact program; return both measurements.
fn both_consumers(program: &StreamProgram) -> (PhaseStats, ProgramCost) {
    let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
    execute_program(&mut cluster, program);
    let stats = cluster.finish_phase(&program.label);
    let cost = CostIntegrator::snitch().integrate(program);
    (stats, cost)
}

fn assert_backends_equal(label: &str, stats: &PhaseStats, cost: &ProgramCost) {
    assert_eq!(stats.totals.int_instrs as f64, cost.int_instrs, "{label}: int instrs");
    assert_eq!(stats.totals.fp_instrs as f64, cost.fp_instrs, "{label}: fp instrs");
    assert_eq!(stats.totals.flops as f64, cost.flops, "{label}: flops");
    assert_eq!(
        stats.totals.stream_elements as f64, cost.stream_elements,
        "{label}: stream elements"
    );
    assert_eq!(stats.dma_bytes_in, cost.dma_bytes_in, "{label}: dma bytes in");
    assert_eq!(stats.dma_bytes_out, cost.dma_bytes_out, "{label}: dma bytes out");
    let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
        / stats.compute_cycles as f64;
    assert!(
        rel <= CYCLE_TOLERANCE,
        "{label}: compute cycles diverge by {:.2}% (sim {} vs integrator {})",
        100.0 * rel,
        stats.compute_cycles,
        cost.compute_cycles
    );
}

/// The conv layer the program-level properties lower, under `model`.
fn conv_layer(model: NeuronModel, seed: u64) -> (ConvSpec, Layer) {
    let spec = ConvSpec {
        input: TensorShape::new(6, 6, 8),
        out_channels: 8,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("conv", LayerKind::Conv(spec), model);
    layer.randomize_weights(&mut StdRng::seed_from_u64(seed), 0.1);
    (spec, layer)
}

fn fc_layer(model: NeuronModel, seed: u64) -> (LinearSpec, Layer) {
    let spec = LinearSpec { in_features: 64, out_features: 16 };
    let mut layer = Layer::new("fc", LayerKind::Linear(spec), model);
    layer.randomize_weights(&mut StdRng::seed_from_u64(seed ^ 0xFC), 0.1);
    (spec, layer)
}

proptest! {
    /// Claim 1: for random models, encodings, variants and horizons, the
    /// executor's temporal chain is bit-for-bit the scalar reference —
    /// spikes, membranes and (for Izhikevich) recovery variables alike.
    #[test]
    fn kernel_chain_is_bit_identical_to_the_scalar_reference(
        model in AnyModel,
        encoding in choice(&[TemporalEncoding::Direct, TemporalEncoding::Rate]),
        timesteps in choice(&[1usize, 4]),
        variant in choice(&[KernelVariant::Baseline, KernelVariant::SpikeStream]),
        seed in 0u64..1_000,
    ) {
        let net = common::tiny_network(seed, model);
        let layers = net.layers();
        let (spec1, spec2, spec3) = match (&layers[0].kind, &layers[1].kind, &layers[2].kind) {
            (LayerKind::Conv(a), LayerKind::Conv(b), LayerKind::Linear(c)) => (*a, *b, *c),
            _ => panic!("unexpected layer kinds"),
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let image = pad_image(&synthetic_image(spec1.input, &mut rng), spec1.padding);
        let encoder = TemporalEncoder::new(&image, encoding, 0);

        // Scalar reference chain: plain `f32` loops over persistent states.
        let reference = ReferenceEngine::new();
        let mut ref_state1 = NeuronState::new(&model, spec1.conv_output().len());
        let mut ref_state2 = NeuronState::new(&model, spec2.conv_output().len());
        let mut ref_state3 = NeuronState::new(&model, spec3.out_features);

        // Kernel chain at FP32, where quantization is the identity — every
        // comparison below is exact equality, not tolerance.
        let executor = LayerExecutor::new(variant, FpFormat::Fp32);
        let mut scratch = LayerScratch::new();
        scratch.begin_sample(&net);
        let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
        let mut encoded = Tensor3::zeros(image.shape());

        for step in 0..timesteps {
            encoder.encode_step_into(step, &mut encoded);

            let ref_currents1 = reference.conv_currents_dense(&layers[0], &spec1, &encoded);
            let ref_spikes1 =
                reference.activate_conv(&layers[0], &spec1, &ref_currents1, &mut ref_state1);
            let ref_out1 = spikestream_snn::reference::max_pool_2x2(&ref_spikes1);
            let ref_out2 = reference.conv_forward(
                &layers[1],
                &pad_spikes(&ref_out1, spec2.padding),
                &mut ref_state2,
            );
            let ref_out3 = reference.linear_forward(&layers[2], &ref_out2, &mut ref_state3);

            let (exec1, out1) = executor.run_temporal_step(
                &mut cluster,
                &layers[0],
                0,
                LayerInput::Image(&encoded),
                &mut scratch,
            );
            cluster.finish_phase("conv1");
            let padded = pad_spikes(&out1, spec2.padding);
            let (exec2, out2) = executor.run_temporal_step(
                &mut cluster,
                &layers[1],
                1,
                LayerInput::Spikes(&padded),
                &mut scratch,
            );
            cluster.finish_phase("conv2");
            let (exec3, out3) = executor.run_temporal_step(
                &mut cluster,
                &layers[2],
                2,
                LayerInput::Spikes(&out2),
                &mut scratch,
            );
            cluster.finish_phase("fc3");

            let label =
                format!("{}/{variant}/{encoding}/T{timesteps}/seed {seed}/step {step}", model.as_str());
            prop_assert_eq!(&out1, &ref_out1, "{}: conv1 spikes", label);
            prop_assert_eq!(&out2, &ref_out2, "{}: conv2 spikes", label);
            prop_assert_eq!(&out3, &ref_out3, "{}: fc3 spikes", label);

            // Real propagation: layer N+1 consumes exactly what N emitted.
            prop_assert_eq!(exec2.input_spikes, exec1.output_spikes, "{}: conv1->conv2", label);
            prop_assert_eq!(exec3.input_spikes, exec2.output_spikes, "{}: conv2->fc3", label);

            // Full state trajectories: membranes and recovery variables.
            for (idx, reference_state) in
                [&ref_state1, &ref_state2, &ref_state3].into_iter().enumerate()
            {
                let kernel_state = scratch.membrane(idx);
                prop_assert_eq!(
                    kernel_state.membrane(),
                    reference_state.membrane(),
                    "{}: layer {} membrane",
                    label,
                    idx
                );
                prop_assert_eq!(
                    kernel_state.recovery(),
                    reference_state.recovery(),
                    "{}: layer {} recovery",
                    label,
                    idx
                );
            }
        }
    }

    /// Claim 2: the analytic backend's consumer (cost integration) and the
    /// cycle-level consumer (interpretation) agree on every exact program a
    /// random model lowers — conv and fc, all formats, both variants — and
    /// the outbound DMA really carries one FP32 tile per state variable.
    #[test]
    fn exact_programs_agree_across_backends_for_random_models(
        model in AnyModel,
        format in choice(&[FpFormat::Fp32, FpFormat::Fp16, FpFormat::Fp8]),
        variant in choice(&[KernelVariant::Baseline, KernelVariant::SpikeStream]),
        seed in 0u64..1_000,
    ) {
        let (spec, layer) = conv_layer(model, seed);
        let input =
            CompressedIfmap::from_spike_map(&random_spikes(spec.padded_input(), 0.3, 1, seed ^ 1));
        let mut state = NeuronState::new(&model, spec.conv_output().len());
        let (program, _) =
            ConvKernel::new(variant, format).lower(&ClusterConfig::default(), &layer, &input, &mut state);
        let (stats, cost) = both_consumers(&program);
        let label = format!("conv/{}/{variant}/{format:?}/seed {seed}", model.as_str());
        assert_backends_equal(&label, &stats, &cost);
        let state_bytes = (spec.conv_output().len() * 4 * model.state_vars()) as u64;
        prop_assert!(
            stats.dma_bytes_out >= state_bytes,
            "{}: outbound DMA must cover {} state bytes, got {}",
            label,
            state_bytes,
            stats.dma_bytes_out
        );

        let (spec, layer) = fc_layer(model, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 2);
        let spikes: Vec<bool> = (0..spec.in_features).map(|_| rng.gen_bool(0.3)).collect();
        let input = CompressedFcInput::from_spikes(&spikes);
        let mut state = NeuronState::new(&model, spec.out_features);
        let (program, _) =
            FcKernel::new(variant, format).lower(&ClusterConfig::default(), &layer, &input, &mut state);
        let (stats, cost) = both_consumers(&program);
        let label = format!("fc/{}/{variant}/{format:?}/seed {seed}", model.as_str());
        assert_backends_equal(&label, &stats, &cost);
        let state_bytes = (spec.out_features * 4 * model.state_vars()) as u64;
        prop_assert!(
            stats.dma_bytes_out >= state_bytes,
            "{}: outbound DMA must cover {} state bytes, got {}",
            label,
            state_bytes,
            stats.dma_bytes_out
        );
    }
}

/// The two-variable model is priced honestly relative to LIF on identical
/// work: exactly one extra FP32 state tile in *and* out (the recovery
/// buffer's DMA), and strictly more FP work per activation group.
#[test]
fn izhikevich_programs_carry_the_two_variable_costs() {
    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        let (spec, lif_layer) = conv_layer(NeuronModel::Lif(LifParams::new(0.5, 0.3)), 11);
        let (_, izhi_layer) =
            conv_layer(NeuronModel::Izhikevich(IzhiParams::regular_spiking()), 11);
        let input =
            CompressedIfmap::from_spike_map(&random_spikes(spec.padded_input(), 0.3, 1, 12));
        let kernel = ConvKernel::new(variant, FpFormat::Fp16);

        let mut lif_state = NeuronState::lif(spec.conv_output().len());
        let (lif_program, _) =
            kernel.lower(&ClusterConfig::default(), &lif_layer, &input, &mut lif_state);
        let (lif_stats, _) = both_consumers(&lif_program);

        let izhi_model = izhi_layer.neuron;
        let mut izhi_state = NeuronState::new(&izhi_model, spec.conv_output().len());
        let (izhi_program, _) =
            kernel.lower(&ClusterConfig::default(), &izhi_layer, &input, &mut izhi_state);
        let (izhi_stats, _) = both_consumers(&izhi_program);

        let state_tile = (spec.conv_output().len() * 4) as u64;
        assert_eq!(
            izhi_stats.dma_bytes_in,
            lif_stats.dma_bytes_in + state_tile,
            "{variant}: recovery tile inbound"
        );
        assert_eq!(
            izhi_stats.dma_bytes_out,
            lif_stats.dma_bytes_out + state_tile,
            "{variant}: recovery tile outbound"
        );
        assert!(
            izhi_stats.totals.fp_instrs > lif_stats.totals.fp_instrs,
            "{variant}: the quadratic update must cost more FP instructions \
             ({} vs {})",
            izhi_stats.totals.fp_instrs,
            lif_stats.totals.fp_instrs
        );
    }
}

/// Claim 3: serving reports are bit-identical across worker fan-out and
/// shard counts for both models × both encodings × T ∈ {1, 4} × both
/// timing models — the full acceptance cross-product.
#[test]
fn serving_is_shard_and_worker_invariant_for_both_models() {
    for model in both_models() {
        let engine = Engine::new(common::tiny_network(5, model), FiringProfile::uniform(3, 0.25));
        for timing in [TimingModel::Analytic, TimingModel::CycleLevel] {
            for encoding in [TemporalEncoding::Rate, TemporalEncoding::Direct] {
                for timesteps in [1usize, 4] {
                    let config = InferenceConfig {
                        timing,
                        batch: 4,
                        seed: 0xD1F7,
                        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
                    }
                    .temporal(timesteps, encoding);
                    let label = format!("{}/{timing:?}/{encoding}/T{timesteps}", model.as_str());
                    let plan = engine.compile(&config);
                    let mut session = plan.open_session();
                    let sequential = session.infer(&Request::batch(config.batch).sequential());
                    assert_eq!(
                        sequential.timesteps.as_ref().map(Vec::len),
                        Some(timesteps),
                        "{label}"
                    );
                    let parallel = session.infer(&Request::batch(config.batch));
                    assert_eq!(parallel.to_json(), sequential.to_json(), "{label}: fan-out");
                    for shards in [1usize, 2, 4] {
                        let sharded =
                            session.infer(&Request::batch(config.batch).with_shards(shards));
                        assert_eq!(sharded.shards.as_ref().unwrap().shards.len(), shards);
                        assert_eq!(
                            sharded.without_shard_stats().to_json(),
                            sequential.to_json(),
                            "{label}: {shards} shards"
                        );
                    }
                }
            }
        }
    }
}

/// The analytic and cycle-level backends agree on per-layer spike counts
/// under a jitter-free profile for both models (synthetic single-shot
/// path) — the report-level face of claim 2.
#[test]
fn backends_agree_on_spike_counts_for_both_models() {
    for model in both_models() {
        let engine = Engine::new(common::tiny_network(21, model), FiringProfile::uniform(3, 0.25));
        let config = InferenceConfig {
            batch: 2,
            seed: 0xE0_15,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        };
        let ctx = engine.sample_context(&config);
        for sample in 0..config.batch {
            let analytic = AnalyticBackend.run_sample(&ctx, sample);
            let cycle = CycleLevelBackend.run_sample(&ctx, sample);
            assert_eq!(analytic.len(), cycle.len());
            for (idx, (a, c)) in analytic.iter().zip(cycle.iter()).enumerate() {
                assert_eq!(
                    a.input_spikes.round(),
                    c.input_spikes,
                    "{} layer {idx} sample {sample}: analytic {} vs cycle-level {}",
                    model.as_str(),
                    a.input_spikes,
                    c.input_spikes
                );
            }
        }
    }
}

/// The harness's Izhikevich regime actually spikes: a silent model would
/// make every equality above vacuous for the second state variable.
#[test]
fn the_izhikevich_regime_produces_spikes_and_recovery_motion() {
    let model = NeuronModel::Izhikevich(IzhiParams::regular_spiking());
    let net = common::tiny_network(9, model);
    let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp32);
    let mut scratch = LayerScratch::new();
    scratch.begin_sample(&net);
    let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
    let spec1 = match &net.layers()[0].kind {
        LayerKind::Conv(c) => *c,
        _ => unreachable!(),
    };
    let mut rng = StdRng::seed_from_u64(9);
    let image = pad_image(&synthetic_image(spec1.input, &mut rng), spec1.padding);
    let mut fired = 0u64;
    for _ in 0..4 {
        let (exec, _) = executor.run_temporal_step(
            &mut cluster,
            &net.layers()[0],
            0,
            LayerInput::Image(&image),
            &mut scratch,
        );
        cluster.finish_phase("conv1");
        fired += exec.output_spikes;
    }
    assert!(fired > 0, "the calibrated weight amplitude must drive spikes in 4 steps");
    let state = scratch.membrane(0);
    assert_eq!(state.state_vars(), 2);
    let u_rest = IzhiParams::regular_spiking().u_rest();
    assert!(state.recovery().iter().any(|&u| u != u_rest), "recovery variables must move off rest");
}
