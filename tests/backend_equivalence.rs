//! Backend equivalence: the analytic and cycle-level execution backends
//! must agree on what the network *does* (spike counts, firing rates,
//! synops ordering) even though they model *how long it takes* at very
//! different fidelities — and the engine's parallel batch execution must be
//! bit-identical to a sequential run of the same backend.

use spikestream::{
    AnalyticBackend, CycleLevelBackend, Engine, ExecutionBackend, FiringProfile, FpFormat,
    InferenceConfig, InferenceReport, KernelVariant, Request, TimingModel, WorkloadMode,
};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::TensorShape;
use spikestream_snn::{ConvSpec, LinearSpec, NetworkBuilder};

/// A small three-layer network the cycle-level backend can simulate
/// quickly, with a uniform (jitter-free) firing profile so both backends
/// see exactly the same per-layer rates.
fn engine() -> Engine {
    let lif = LifParams::new(0.5, 0.3);
    let mut net = NetworkBuilder::new("equiv")
        .conv(
            "conv1",
            ConvSpec {
                input: TensorShape::new(8, 8, 3),
                out_channels: 8,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: true,
            },
            lif,
        )
        .conv(
            "conv2",
            ConvSpec {
                input: TensorShape::new(4, 4, 8),
                out_channels: 16,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: false,
            },
            lif,
        )
        .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
        .build_with_random_weights(21, 0.1);
    net.layers_mut()[0].encodes_input = true;
    net.validate().expect("shapes chain");
    Engine::new(net, FiringProfile::uniform(3, 0.25))
}

fn config(timing: TimingModel, batch: usize) -> InferenceConfig {
    InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing,
        batch,
        seed: 0xE0_15,
        mode: WorkloadMode::Synthetic,
    }
}

#[test]
fn backends_report_identical_spike_counts() {
    let engine = engine();
    let cfg = config(TimingModel::Analytic, 3);
    let ctx = engine.sample_context(&cfg);

    for sample in 0..cfg.batch {
        let analytic = AnalyticBackend.run_sample(&ctx, sample);
        let cycle = CycleLevelBackend.run_sample(&ctx, sample);
        assert_eq!(analytic.len(), cycle.len());

        for (idx, (a, c)) in analytic.iter().zip(cycle.iter()).enumerate() {
            // The workload generator realizes the jitter-free target rate
            // exactly, so the analytic expectation and the cycle-level
            // measurement are the same number.
            assert_eq!(
                a.input_spikes.round(),
                c.input_spikes,
                "layer {idx} sample {sample}: analytic {} vs cycle-level {}",
                a.input_spikes,
                c.input_spikes
            );
            assert!(a.synops > 0.0 && c.synops > 0.0, "layer {idx} must do work");
        }

        // The dense encoding layer consumes every padded pixel in both
        // backends (the analytic rate column reports the profile's entry
        // for layer 0, but its spike count is the dense pixel count).
        assert_eq!(analytic[0].input_spikes, cycle[0].input_spikes);
        assert_eq!(cycle[0].input_firing_rate, 1.0);
    }
}

#[test]
fn backends_agree_on_the_streaming_speedup() {
    let engine = engine();
    let run = |timing, variant| {
        let mut cfg = config(timing, 2);
        cfg.variant = variant;
        engine.compile(&cfg).run().total_cycles()
    };
    for timing in [TimingModel::Analytic, TimingModel::CycleLevel] {
        let base = run(timing, KernelVariant::Baseline);
        let fast = run(timing, KernelVariant::SpikeStream);
        assert!(fast < base, "{timing:?}: SpikeStream ({fast}) must beat the baseline ({base})");
    }
}

#[test]
fn parallel_batch_128_is_byte_identical_to_sequential() {
    // The acceptance configuration: a batch-128 analytic run through the
    // engine's parallel path against a single-threaded reference run.
    let engine = Engine::svgg11(42);
    let cfg = InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch: 128,
        seed: 0xC1FA,
        mode: WorkloadMode::Synthetic,
    };
    let plan = engine.compile(&cfg);
    let mut session = plan.open_session();
    let parallel: InferenceReport = session.infer(&Request::batch(cfg.batch));
    let sequential = session.infer(&Request::batch(cfg.batch).sequential());
    assert_eq!(
        parallel.to_json(),
        sequential.to_json(),
        "parallel batch execution must be byte-identical to the sequential reference"
    );
}

#[test]
fn cycle_level_parallel_runs_are_deterministic_too() {
    let engine = engine();
    let cfg = config(TimingModel::CycleLevel, 6);
    let plan = engine.compile(&cfg);
    let mut session = plan.open_session();
    let parallel = session.infer(&Request::batch(cfg.batch));
    let sequential = session.infer(&Request::batch(cfg.batch).sequential());
    assert_eq!(parallel.to_json(), sequential.to_json());
}
