//! Temporal-pipeline correctness: a T-timestep run must propagate *real*
//! spikes — layer N+1's per-step input is exactly layer N's per-step
//! output — with LIF membranes persisting across steps, resetting between
//! samples, and the whole pipeline staying deterministic no matter how the
//! batch is scheduled across workers or shards. Per-timestep programs must
//! also satisfy the IR-equivalence contract (exact instruction / FLOP /
//! stream / DMA totals between integrator and interpreter, cycles within
//! tolerance) even as the membrane state evolves.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snitch_arch::{ClusterConfig, CostModel};
use snitch_sim::{execute_program, ClusterModel};
use spikestream::{
    CycleLevelBackend, Engine, ExecutionBackend, FpFormat, InferenceConfig, KernelVariant, Request,
    TemporalEncoding, TimingModel,
};
use spikestream_ir::CostIntegrator;
use spikestream_kernels::{ConvKernel, LayerExecutor, LayerInput, LayerScratch};
use spikestream_snn::encoding::{pad_image, pad_spikes, synthetic_image, TemporalEncoder};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{
    CompressedIfmap, ConvSpec, FiringProfile, Layer, LayerKind, LinearSpec, Network,
    NetworkBuilder, NeuronState, ReferenceEngine,
};

const TIMESTEPS: usize = 4;

/// The tiny conv-conv-fc network used throughout (encoding first layer).
fn tiny_network(seed: u64) -> Network {
    let lif = LifParams::new(0.5, 0.3);
    let mut net = NetworkBuilder::new("temporal-tiny")
        .conv(
            "conv1",
            ConvSpec {
                input: TensorShape::new(8, 8, 3),
                out_channels: 8,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: true,
            },
            lif,
        )
        .conv(
            "conv2",
            ConvSpec {
                input: TensorShape::new(4, 4, 8),
                out_channels: 16,
                kh: 3,
                kw: 3,
                stride: 1,
                padding: 1,
                pool: false,
            },
            lif,
        )
        .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
        .build_with_random_weights(seed, 0.15);
    net.layers_mut()[0].encodes_input = true;
    net.validate().expect("shapes chain");
    net
}

fn temporal_config(
    timing: TimingModel,
    batch: usize,
    encoding: TemporalEncoding,
) -> InferenceConfig {
    InferenceConfig {
        timing,
        batch,
        seed: 0x7E_47,
        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    }
    .temporal(TIMESTEPS, encoding)
}

/// Kernel-vs-reference equality across every timestep: the executor's
/// temporal chain (persistent membranes, spikes fed layer to layer) must
/// reproduce a manual reference chain running the same LIF dynamics in
/// plain `f32` loops — and layer N+1's reported per-step input spike count
/// must equal layer N's per-step output spike count.
#[test]
fn temporal_chain_matches_the_reference_engine_at_every_step() {
    let net = tiny_network(91);
    let layers = net.layers();
    let (spec1, spec2, spec3) = match (&layers[0].kind, &layers[1].kind, &layers[2].kind) {
        (LayerKind::Conv(a), LayerKind::Conv(b), LayerKind::Linear(c)) => (*a, *b, *c),
        _ => panic!("unexpected layer kinds"),
    };

    let mut rng = StdRng::seed_from_u64(12);
    let image = pad_image(&synthetic_image(spec1.input, &mut rng), spec1.padding);
    let encoder = TemporalEncoder::new(&image, TemporalEncoding::Direct, 0);

    // Reference chain: persistent f32 LIF states, direct coding.
    let reference = ReferenceEngine::new();
    let mut ref_state1 = NeuronState::lif(spec1.conv_output().len());
    let mut ref_state2 = NeuronState::lif(spec2.conv_output().len());
    let mut ref_state3 = NeuronState::lif(spec3.out_features);

    // Kernel chain: FP32 so the results are exact.
    let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp32);
    let mut scratch = LayerScratch::new();
    scratch.begin_sample(&net);
    let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
    let mut encoded = spikestream_snn::Tensor3::zeros(image.shape());

    for step in 0..TIMESTEPS {
        // --- reference -----------------------------------------------------
        let ref_currents1 = reference.conv_currents_dense(&layers[0], &spec1, &image);
        let ref_spikes1 =
            reference.activate_conv(&layers[0], &spec1, &ref_currents1, &mut ref_state1);
        let ref_out1 = spikestream_snn::reference::max_pool_2x2(&ref_spikes1);
        let ref_out2 = reference.conv_forward(
            &layers[1],
            &pad_spikes(&ref_out1, spec2.padding),
            &mut ref_state2,
        );
        let ref_out3 = reference.linear_forward(&layers[2], &ref_out2, &mut ref_state3);

        // --- kernels -------------------------------------------------------
        encoder.encode_step_into(step, &mut encoded);
        let (exec1, out1) = executor.run_temporal_step(
            &mut cluster,
            &layers[0],
            0,
            LayerInput::Image(&encoded),
            &mut scratch,
        );
        cluster.finish_phase("conv1");
        let padded = pad_spikes(&out1, spec2.padding);
        let (exec2, out2) = executor.run_temporal_step(
            &mut cluster,
            &layers[1],
            1,
            LayerInput::Spikes(&padded),
            &mut scratch,
        );
        cluster.finish_phase("conv2");
        let (exec3, out3) = executor.run_temporal_step(
            &mut cluster,
            &layers[2],
            2,
            LayerInput::Spikes(&out2),
            &mut scratch,
        );
        cluster.finish_phase("fc3");

        assert_eq!(out1, ref_out1, "step {step}: conv1 output spikes");
        assert_eq!(out2, ref_out2, "step {step}: conv2 output spikes");
        assert_eq!(out3, ref_out3, "step {step}: fc3 output spikes");

        // Real propagation: layer N+1 consumes exactly what layer N emitted
        // this step (silent padding adds no spikes).
        assert_eq!(exec2.input_spikes, exec1.output_spikes, "step {step}: conv1 -> conv2");
        assert_eq!(exec3.input_spikes, exec2.output_spikes, "step {step}: conv2 -> fc3");

        // The kernel membranes track the reference membranes exactly.
        assert_eq!(scratch.membrane(0).membrane(), ref_state1.membrane(), "step {step}");
        assert_eq!(scratch.membrane(1).membrane(), ref_state2.membrane(), "step {step}");
        assert_eq!(scratch.membrane(2).membrane(), ref_state3.membrane(), "step {step}");
    }
}

/// Membrane state must reset between samples: re-running the same sample
/// after a `begin_sample` reproduces the first run exactly, and the
/// cycle-level backend reproduces its own per-sample results bit-for-bit.
#[test]
fn membrane_state_resets_between_samples() {
    let net = tiny_network(7);
    let engine = Engine::new(net.clone(), FiringProfile::uniform(3, 0.25));
    let config = temporal_config(TimingModel::CycleLevel, 2, TemporalEncoding::Rate);
    let ctx = engine.sample_context(&config);

    // Backend level: evaluating sample 0, then sample 1, then sample 0
    // again yields the first result bit-for-bit — no state can leak.
    let first = CycleLevelBackend.run_sample(&ctx, 0);
    let other = CycleLevelBackend.run_sample(&ctx, 1);
    let again = CycleLevelBackend.run_sample(&ctx, 0);
    assert_eq!(first, again, "sample 0 must be reproducible after sample 1 ran");
    assert_ne!(first, other, "distinct samples encode distinct spike trains");

    // Executor level: begin_sample really rests the membranes.
    let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);
    let mut scratch = LayerScratch::new();
    scratch.begin_sample(&net);
    let mut rng = StdRng::seed_from_u64(3);
    let spec1 = match &net.layers()[0].kind {
        LayerKind::Conv(c) => *c,
        _ => unreachable!(),
    };
    let image = pad_image(&synthetic_image(spec1.input, &mut rng), spec1.padding);
    let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
    executor.run_temporal_step(
        &mut cluster,
        &net.layers()[0],
        0,
        LayerInput::Image(&image),
        &mut scratch,
    );
    cluster.finish_phase("conv1");
    assert!(scratch.membrane(0).membrane().iter().any(|&v| v != 0.0), "the step charged membranes");
    scratch.begin_sample(&net);
    assert!(scratch.membrane(0).membrane().iter().all(|&v| v == 0.0), "begin_sample rests them");
}

/// Temporal runs must be deterministic and shard-count invariant: the
/// aggregate report (layers + per-timestep breakdown) is bit-identical at
/// any shard count and equal to the sequential reference, for both
/// encodings.
#[test]
fn temporal_runs_are_shard_count_invariant() {
    let engine = Engine::new(tiny_network(5), FiringProfile::uniform(3, 0.25));
    for encoding in [TemporalEncoding::Rate, TemporalEncoding::Direct] {
        let config = temporal_config(TimingModel::CycleLevel, 5, encoding);
        let plan = engine.compile(&config);
        let mut session = plan.open_session();
        let batch = config.batch;
        let sequential = session.infer(&Request::batch(batch).sequential());
        assert_eq!(sequential.timesteps.as_ref().map(Vec::len), Some(TIMESTEPS));

        let parallel = session.infer(&Request::batch(batch));
        assert_eq!(parallel.to_json(), sequential.to_json(), "{encoding}: parallel fan-out");

        for shards in [1, 2, 4] {
            let sharded = session.infer(&Request::batch(batch).with_shards(shards));
            assert_eq!(sharded.shards.as_ref().unwrap().shards.len(), shards);
            let stripped = sharded.without_shard_stats();
            assert_eq!(stripped, sequential, "{encoding}: {shards} shards");
            assert_eq!(stripped.to_json(), sequential.to_json(), "{encoding}: {shards} shards");
        }
    }
}

/// The emergent firing-rate trajectory: starting from resting membranes,
/// spiking layers under-fire at step 0 and warm up over the first steps —
/// the dynamics the synthetic single-shot path cannot show.
#[test]
fn temporal_firing_rates_warm_up_from_rest() {
    let engine = Engine::new(tiny_network(11), FiringProfile::uniform(3, 0.25));
    let config = temporal_config(TimingModel::CycleLevel, 4, TemporalEncoding::Rate);
    let report = engine.compile(&config).run();
    let steps = report.timesteps.as_ref().expect("temporal breakdown");
    assert_eq!(steps.len(), TIMESTEPS);
    // conv2's input is conv1's output: silent at rest, active once the
    // conv1 membranes charged past threshold.
    let first = steps[0].firing_rates[1];
    let later: f64 =
        steps[1..].iter().map(|s| s.firing_rates[1]).sum::<f64>() / (TIMESTEPS - 1) as f64;
    assert!(
        later > first,
        "conv2 input rate must ramp up from rest: step0 {first} vs later mean {later}"
    );
    // Every step moves membrane-state DMA even when spikes are scarce.
    assert!(steps.iter().all(|s| s.dma_bytes > 0.0));
}

/// Per-timestep programs keep the IR-equivalence contract as the membrane
/// state evolves: at every step, integrating the step's exact stream
/// program matches interpreting it — instruction/FLOP/stream/DMA totals
/// exactly, cycles within 5%.
#[test]
fn per_timestep_programs_integrate_to_their_interpreted_totals() {
    const CYCLE_TOLERANCE: f64 = 0.05;
    // Channel-preserving layer so each step's output (padded) can feed the
    // next step's lowering — the state-dependent spike patterns a temporal
    // run produces.
    let spec = ConvSpec {
        input: TensorShape::new(6, 6, 12),
        out_channels: 12,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.2));
    let mut rng = StdRng::seed_from_u64(23);
    layer.randomize_weights(&mut rng, 0.1);

    let mut input = SpikeMap::silent(spec.padded_input());
    for h in 1..spec.padded_input().h - 1 {
        for w in 1..spec.padded_input().w - 1 {
            for c in 0..spec.padded_input().c {
                if (h * 13 + w * 7 + c * 3) % 10 < 3 {
                    input.set(h, w, c, true);
                }
            }
        }
    }

    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        let kernel = ConvKernel::new(variant, FpFormat::Fp16);
        // One persistent membrane state across the timesteps: each step's
        // program is lowered from the state the previous step left behind.
        let mut state = NeuronState::lif(spec.conv_output().len());
        let mut step_input = CompressedIfmap::from_spike_map(&input);
        for step in 0..3 {
            let (program, out) =
                kernel.lower(&ClusterConfig::default(), &layer, &step_input, &mut state);

            let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
            execute_program(&mut cluster, &program);
            let stats = cluster.finish_phase("step");
            let cost = CostIntegrator::snitch().integrate(&program);

            let label = format!("{variant} step {step}");
            assert_eq!(stats.totals.int_instrs as f64, cost.int_instrs, "{label}: int instrs");
            assert_eq!(stats.totals.flops as f64, cost.flops, "{label}: flops");
            assert_eq!(
                stats.totals.stream_elements as f64, cost.stream_elements,
                "{label}: stream elements"
            );
            assert_eq!(stats.dma_bytes_in, cost.dma_bytes_in, "{label}: dma in");
            assert_eq!(stats.dma_bytes_out, cost.dma_bytes_out, "{label}: dma out");
            let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
                / stats.compute_cycles as f64;
            assert!(rel <= CYCLE_TOLERANCE, "{label}: cycles diverge by {:.2}%", 100.0 * rel);

            // The membrane write-back is part of every per-step program: the
            // outbound DMA covers at least the FP32 membrane tile.
            assert!(
                stats.dma_bytes_out >= (spec.conv_output().len() * 4) as u64,
                "{label}: per-step membrane store"
            );

            // Feed the step's own output back in (padded) so later steps
            // run on emergent, state-dependent spike patterns.
            step_input = CompressedIfmap::from_spike_map(&pad_spikes(&out.output, spec.padding));
        }
    }
}
