//! The checked-in scenario files must stay parseable and runnable — they
//! are the CLI's public surface and the CI smoke test's input.

use std::path::Path;

use spikestream::{KernelVariant, NetworkChoice, Request, Scenario, TimingModel};

/// Serve one scenario through the compile-once lifecycle (what the CLI's
/// `run` subcommand does).
fn serve(scenario: &Scenario) -> spikestream::InferenceReport {
    scenario.compile().expect("scenario compiles").open_session().infer(&scenario.request())
}

fn scenario_dir() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/scenarios")
}

#[test]
fn every_checked_in_scenario_parses() {
    let mut found = 0;
    for entry in std::fs::read_dir(scenario_dir()).expect("examples/scenarios exists") {
        let path = entry.expect("readable dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("toml") {
            continue;
        }
        let scenario = Scenario::from_file(&path)
            .unwrap_or_else(|e| panic!("{} must parse: {e}", path.display()));
        assert_ne!(scenario.name, "unnamed", "{} should set a name", path.display());
        found += 1;
    }
    assert!(found >= 3, "expected at least three checked-in scenarios, found {found}");
}

#[test]
fn the_smoke_scenario_is_cycle_level_and_fast() {
    let scenario = Scenario::from_file(&scenario_dir().join("smoke.toml")).unwrap();
    assert_eq!(scenario.network, NetworkChoice::TinyCnn);
    assert_eq!(scenario.config.timing, TimingModel::CycleLevel);
    assert!(scenario.config.batch <= 16, "smoke batch stays CI-sized");

    let report = serve(&scenario);
    assert_eq!(report.layers.len(), 3);
    assert!(report.total_cycles() > 0.0);
    let fleet = report.shards.expect("sharded run carries fleet stats");
    assert_eq!(fleet.shards.iter().map(|s| s.samples).sum::<u64>(), scenario.config.batch as u64);
}

#[test]
fn the_pool_scenario_runs_the_avgpool_layer_on_both_backends() {
    let scenario = Scenario::from_file(&scenario_dir().join("tiny_pool.toml")).unwrap();
    assert_eq!(scenario.network, NetworkChoice::TinyPool);
    assert_eq!(scenario.config.timing, TimingModel::CycleLevel);

    let cycle = serve(&scenario);
    assert_eq!(cycle.layers.len(), 3);
    let pool = cycle.layer("pool2").expect("the pooling layer reports");
    assert!(pool.cycles > 0.0 && pool.synops > 0.0);
    // Pooling is far cheaper than the conv stage feeding it.
    assert!(pool.cycles < cycle.layer("conv1").unwrap().cycles);

    // The same scenario through the analytic (IR-integration) backend:
    // both backends lower the pool layer through the same emitter, so the
    // expected input spike count matches the realized one.
    let mut analytic = scenario.clone();
    analytic.config.timing = TimingModel::Analytic;
    let report = serve(&analytic);
    let a = report.layer("pool2").unwrap();
    assert_eq!(a.input_spikes.round(), pool.input_spikes);
    assert!(a.cycles > 0.0);
}

#[test]
fn the_headline_scenario_matches_the_paper_configuration() {
    let scenario = Scenario::from_file(&scenario_dir().join("svgg11_fp16.toml")).unwrap();
    assert_eq!(scenario.network, NetworkChoice::Svgg11);
    assert_eq!(scenario.config.variant, KernelVariant::SpikeStream);
    assert_eq!(scenario.config.batch, 128);
    assert_eq!(scenario.shards, 8);

    // The full headline run: sharded aggregate == sequential reference,
    // which is the CLI acceptance property (`spikestream run --shards 8`).
    let plan = scenario.compile().unwrap();
    let mut session = plan.open_session();
    let sharded = session.infer(&scenario.request());
    let sequential = session.infer(&Request::batch(scenario.config.batch).sequential());
    assert!(sharded.to_json().contains("\"per_shard\""));
    assert_eq!(sharded.without_shard_stats().to_json(), sequential.to_json());
}

#[test]
fn scenario_overrides_compose_like_the_cli_flags() {
    let mut scenario = Scenario::from_file(&scenario_dir().join("svgg11_fp16.toml")).unwrap();
    // What `spikestream run --batch 16 --shards 3` does to the scenario.
    scenario.config.batch = 16;
    scenario.shards = 3;
    let report = serve(&scenario);
    assert_eq!(report.batch, 16);
    assert_eq!(report.shards.expect("fleet stats").shards.len(), 3);
}
