//! Gateway serving semantics, pinned end to end.
//!
//! Four contracts from the serving-gateway design, each with its own
//! suite section:
//!
//! 1. **Byte-identity** — a request coalesced into a shared micro-batch
//!    produces a report bit-identical to running it alone on a bare
//!    [`Session`](spikestream::Session), and a full-batch gateway request
//!    reproduces the pre-redesign golden captures (`tests/golden/`)
//!    byte for byte.
//! 2. **Backpressure** — the bounded per-tenant queue rejects (and
//!    times out) deterministically when full, and drains cleanly.
//! 3. **Hot swap** — publishing a new plan version under live traffic
//!    drops nothing: in-flight batches complete on the old version,
//!    queued and later requests run on the new one, and every response
//!    names the version it ran under.
//! 4. **Panic containment** — a panicking batch poisons only its own
//!    tenant; other tenants keep serving, and a fresh publish revives
//!    the poisoned one.

use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use spikestream::{
    Compiler, ExecutionBackend, FiringProfile, FpFormat, InferenceConfig, KernelVariant,
    LayerSample, Network, Plan, Request, SampleContext, Scenario,
};
use spikestream_serve::{Gateway, GatewayConfig, ServeError, SubmitOptions};

fn repo_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf()
}

fn golden(name: &str) -> String {
    let path = repo_dir().join("tests/golden").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("golden capture {} must exist: {e}", path.display()))
        .trim_end()
        .to_string()
}

fn scenario(name: &str) -> Scenario {
    Scenario::from_file(&repo_dir().join("examples/scenarios").join(name)).expect("scenario parses")
}

/// A paced gateway: dispatch is held with `pause` while the driver
/// queues, so batch composition is exact, not timing-dependent.
fn paced_gateway(max_batch: usize) -> Gateway {
    Gateway::new(GatewayConfig { max_batch, linger_us: 0, queue_cap: 256 })
}

// ---------------------------------------------------------------------------
// 1. Byte-identity
// ---------------------------------------------------------------------------

#[test]
fn coalesced_requests_match_bare_session_runs_byte_for_byte() {
    let tiny = scenario("tiny.toml");
    let batch = tiny.config.batch;
    let gateway = paced_gateway(64);
    gateway.publish("tiny", tiny.compile().expect("compiles")).expect("publish");

    // Queue one single-sample request per batch sample — odd samples also
    // ask for a 2-shard fleet attribution (shard attribution is a pure
    // per-request fold, so mixed shard options share one batch).
    gateway.pause("tiny").expect("pause");
    let handles: Vec<_> = (0..batch)
        .map(|k| {
            let opts = if k % 2 == 1 {
                SubmitOptions::default().with_shards(2)
            } else {
                SubmitOptions::default()
            };
            gateway.submit_with("tiny", &[k], opts).expect("submit")
        })
        .collect();
    gateway.resume("tiny").expect("resume");

    let bare_plan = tiny.compile().expect("compiles");
    let mut bare = bare_plan.open_session();
    for (k, handle) in handles.into_iter().enumerate() {
        let response = handle.wait().expect("serve");
        assert_eq!(response.batch_requests(), batch, "all requests rode one micro-batch");
        assert_eq!(response.batch_samples(), batch);
        let mut request = Request::samples(k..k + 1);
        if k % 2 == 1 {
            request = request.with_shards(2);
        }
        assert_eq!(
            response.report().to_json(),
            bare.infer(&request).to_json(),
            "sample {k}: coalesced result must be bit-identical to a bare run"
        );
    }

    let stats = gateway.stats();
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.coalesced, batch as u64);
}

#[test]
fn full_batch_gateway_requests_reproduce_the_golden_captures() {
    let tiny = scenario("tiny.toml");
    let samples: Vec<usize> = (0..tiny.config.batch).collect();
    let gateway = paced_gateway(64);
    gateway.publish("tiny", tiny.compile().expect("compiles")).expect("publish");
    for shards in [1usize, 2, 4] {
        let handle = gateway
            .submit_with("tiny", &samples, SubmitOptions::default().with_shards(shards))
            .expect("submit");
        let report = handle.wait().expect("serve").report();
        assert_eq!(
            report.to_json(),
            golden(&format!("tiny_shards{shards}.json")),
            "tiny @ {shards} shards through the gateway"
        );
    }

    // The analytic S-VGG11 capture: `--batch 8 --shards 2`.
    let mut fp16 = scenario("svgg11_fp16.toml");
    fp16.config.batch = 8;
    gateway.publish("svgg11", fp16.compile().expect("compiles")).expect("publish");
    let handle = gateway
        .submit_with("svgg11", &[0, 1, 2, 3, 4, 5, 6, 7], SubmitOptions::default().with_shards(2))
        .expect("submit");
    assert_eq!(
        handle.wait().expect("serve").report().to_json(),
        golden("svgg11_analytic_shards2.json"),
        "svgg11 fp16 through the gateway"
    );

    // The temporal analytic capture: `--batch 4 --timesteps 3 --shards 2`.
    let mut temporal = scenario("svgg11_fp16.toml");
    temporal.config.batch = 4;
    temporal.config = temporal.config.temporal_steps(3);
    gateway.publish("svgg11-t3", temporal.compile().expect("compiles")).expect("publish");
    let handle = gateway
        .submit_with("svgg11-t3", &[0, 1, 2, 3], SubmitOptions::default().with_shards(2))
        .expect("submit");
    assert_eq!(
        handle.wait().expect("serve").report().to_json(),
        golden("svgg11_analytic_t3_shards2.json"),
        "svgg11 fp16 t3 through the gateway"
    );
}

// ---------------------------------------------------------------------------
// 2. Backpressure
// ---------------------------------------------------------------------------

#[test]
fn a_full_queue_rejects_deterministically_and_drains_cleanly() {
    let tiny = scenario("tiny.toml");
    let gateway = Gateway::new(GatewayConfig { max_batch: 8, linger_us: 0, queue_cap: 2 });
    gateway.publish("tiny", tiny.compile().expect("compiles")).expect("publish");
    gateway.pause("tiny").expect("pause");

    let first = gateway.submit("tiny", &[0]).expect("fits");
    let second = gateway.submit("tiny", &[1]).expect("fits");
    // Fail-fast path: the queue is at capacity.
    assert_eq!(
        gateway.submit("tiny", &[2]).err(),
        Some(ServeError::Full { tenant: "tiny".to_string(), cap: 2 })
    );
    // Timed path: a paused tenant never frees space, so the submitter
    // parks for the whole timeout and then reports it.
    assert_eq!(
        gateway
            .submit_timeout("tiny", &[2], SubmitOptions::default(), Duration::from_millis(20))
            .err(),
        Some(ServeError::Timeout { tenant: "tiny".to_string() })
    );
    let stats = gateway.stats();
    assert_eq!(stats.rejected_full, 2);
    assert_eq!(stats.tenants[0].queue_depth, 2);

    // Resume: the queue drains, and the freed capacity admits new work.
    gateway.resume("tiny").expect("resume");
    assert!(first.wait().is_ok());
    assert!(second.wait().is_ok());
    let third = gateway
        .submit_timeout("tiny", &[2], SubmitOptions::default(), Duration::from_secs(10))
        .expect("space after drain");
    assert!(third.wait().is_ok());
    let stats = gateway.stats();
    assert_eq!((stats.submitted, stats.completed), (3, 3));
    assert_eq!(stats.tenants[0].queue_depth, 0);
}

// ---------------------------------------------------------------------------
// 3. Hot swap under load
// ---------------------------------------------------------------------------

/// Tracks how many samples have *started* evaluating, so the driver can
/// publish a new plan while a batch is provably in flight.
#[derive(Debug, Default)]
struct StartGate {
    started: Mutex<u64>,
    changed: Condvar,
}

impl StartGate {
    fn mark(&self) {
        *self.started.lock().expect("gate poisoned") += 1;
        self.changed.notify_all();
    }

    fn wait_for(&self, count: u64) {
        let mut started = self.started.lock().expect("gate poisoned");
        while *started < count {
            started = self.changed.wait(started).expect("gate poisoned");
        }
    }
}

/// A deterministic synthetic backend that announces each sample start and
/// then holds the sample for `delay`, keeping batches in flight long
/// enough for a publish to land mid-run.
#[derive(Debug)]
struct SlowBackend {
    gate: Arc<StartGate>,
    delay: Duration,
}

impl ExecutionBackend for SlowBackend {
    fn name(&self) -> &'static str {
        "slow-gate"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        self.gate.mark();
        std::thread::sleep(self.delay);
        (0..ctx.network.len() * ctx.timesteps())
            .map(|unit| LayerSample {
                cycles: (sample * 1000 + unit + 1) as f64,
                ..LayerSample::default()
            })
            .collect()
    }
}

fn gated_plan(gate: &Arc<StartGate>, delay: Duration) -> Plan {
    Compiler::new(Network::svgg11(7), FiringProfile::paper_svgg11())
        .with_backend(Box::new(SlowBackend { gate: Arc::clone(gate), delay }))
        .compile(InferenceConfig {
            batch: 16,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        })
        .expect("compiles")
}

#[test]
fn a_hot_swap_under_live_traffic_drops_nothing_and_mixes_no_versions() {
    let gate = Arc::new(StartGate::default());
    let gateway = Gateway::new(GatewayConfig { max_batch: 4, linger_us: 0, queue_cap: 64 });
    gateway.publish("svgg11", gated_plan(&gate, Duration::from_millis(150))).expect("publish v1");

    // In-flight: the dispatcher has provably started evaluating r1.
    let r1 = gateway.submit("svgg11", &[0]).expect("submit r1");
    gate.wait_for(1);
    // Pause pins the ordering: r1's batch keeps running (it is era-bound
    // to v1 already), but nothing else can dispatch until resume — so the
    // publish below provably lands before r2 or r3 reach a session, even
    // if compiling the v2 plan outlasts r1's evaluation.
    gateway.pause("svgg11").expect("pause");
    let r2 = gateway.submit("svgg11", &[1]).expect("submit r2");
    let version = gateway.publish("svgg11", gated_plan(&gate, Duration::ZERO)).expect("publish v2");
    assert_eq!(version, 2);
    let r3 = gateway.submit("svgg11", &[2]).expect("submit r3");
    gateway.resume("svgg11").expect("resume");

    // Zero drops; the in-flight request finished on the version it was
    // dispatched under, everything queued or submitted after the publish
    // ran on the new one.
    let r1 = r1.wait().expect("r1 serves");
    let r2 = r2.wait().expect("r2 serves");
    let r3 = r3.wait().expect("r3 serves");
    assert_eq!(r1.plan_version(), 1, "in-flight batches complete on the old plan");
    assert_eq!(r2.plan_version(), 2, "queued requests follow the swap");
    assert_eq!(r3.plan_version(), 2, "post-publish requests run on the new plan");

    let stats = gateway.stats();
    assert_eq!(stats.hot_swaps, 1);
    assert_eq!((stats.submitted, stats.completed), (3, 3));
    assert_eq!(stats.tenants[0].version, 2);
    assert_eq!(stats.tenants[0].serving_version, 2);
}

// ---------------------------------------------------------------------------
// 4. Panic containment
// ---------------------------------------------------------------------------

/// A backend that panics on one poison sample and is deterministic
/// everywhere else.
#[derive(Debug)]
struct PanickingBackend {
    poison_sample: usize,
}

impl ExecutionBackend for PanickingBackend {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        assert_ne!(sample, self.poison_sample, "poison sample reached the backend");
        (0..ctx.network.len() * ctx.timesteps())
            .map(|unit| LayerSample { cycles: (unit + 1) as f64, ..LayerSample::default() })
            .collect()
    }
}

#[test]
fn a_poisoned_tenant_contains_its_panic_and_revives_on_publish() {
    let tiny = scenario("tiny.toml");
    let gateway = paced_gateway(8);
    gateway.publish("good", tiny.compile().expect("compiles")).expect("publish good");
    let bad_plan = || {
        Compiler::new(Network::svgg11(7), FiringProfile::paper_svgg11())
            .with_backend(Box::new(PanickingBackend { poison_sample: 13 }))
            .compile(InferenceConfig {
                batch: 16,
                ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
            })
            .expect("compiles")
    };
    gateway.publish("bad", bad_plan()).expect("publish bad");

    // Queue the poison batch plus an incompatible request behind it (a
    // different timestep override cannot coalesce), so both failure paths
    // run: the in-flight batch and the queued backlog.
    gateway.pause("bad").expect("pause");
    let poisoned = gateway.submit("bad", &[13]).expect("submit poison");
    let behind = gateway
        .submit_with("bad", &[0], SubmitOptions::default().with_timesteps(2))
        .expect("submit behind");
    gateway.resume("bad").expect("resume");

    let Err(ServeError::Poisoned(message)) = poisoned.wait() else {
        panic!("the poison batch must fail with ServeError::Poisoned");
    };
    assert!(message.contains("poison sample"), "panic payload is preserved: {message}");
    assert!(matches!(behind.wait(), Err(ServeError::Poisoned(_))), "the backlog fails too");
    assert!(
        matches!(gateway.submit("bad", &[0]), Err(ServeError::Poisoned(_))),
        "later submissions fail fast while poisoned"
    );

    // The other tenant is untouched.
    let good = gateway.submit("good", &[0]).expect("good tenant still accepts");
    assert!(good.wait().is_ok(), "good tenant still serves");
    let stats = gateway.stats();
    assert_eq!(stats.panics, 1);
    let bad_stats = stats.tenants.iter().find(|t| t.name == "bad").expect("bad tenant listed");
    assert!(bad_stats.poisoned);
    assert_eq!(bad_stats.queue_depth, 0, "the poisoned queue drained its backlog");

    // Publishing a fresh plan revives the tenant on a new dispatcher.
    gateway.publish("bad", bad_plan()).expect("republish bad");
    let revived = gateway.submit("bad", &[0]).expect("revived tenant accepts");
    let response = revived.wait().expect("revived tenant serves");
    assert_eq!(response.plan_version(), 2);
    assert!(!gateway.stats().tenants.iter().find(|t| t.name == "bad").expect("listed").poisoned);
}
