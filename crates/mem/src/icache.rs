//! Shared L1 instruction-cache model.
//!
//! The eight worker cores share a small (8 KiB) instruction cache. The
//! SpikeStream inner loops are tiny and fit comfortably, but the paper
//! notes that residual instruction-cache misses — together with bank
//! conflicts — account for the gap between the measured and the ideal
//! speedup. We model the cache at *region* granularity: a kernel region
//! (e.g. "baseline conv inner loop", "activation function", "scheduler")
//! has a code footprint in bytes; fetching a region that is not resident
//! charges one refill per line and may evict other regions in LRU order.

use std::collections::VecDeque;

use snitch_arch::ClusterConfig;

/// Instruction cache model working at kernel-region granularity.
#[derive(Debug, Clone)]
pub struct InstructionCache {
    capacity_bytes: u32,
    line_bytes: u32,
    refill_cycles_per_line: u64,
    /// Resident regions, most recently used at the back.
    resident: VecDeque<(u64, u32)>,
    miss_lines: u64,
    hits: u64,
    misses: u64,
}

impl InstructionCache {
    /// Create the cache model for a cluster configuration.
    pub fn new(config: &ClusterConfig, refill_cycles_per_line: u64) -> Self {
        InstructionCache {
            capacity_bytes: config.icache_bytes,
            line_bytes: config.icache_line_bytes,
            refill_cycles_per_line,
            resident: VecDeque::new(),
            miss_lines: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Record execution of the code region `region_id` with the given
    /// footprint and return the refill stall cycles it incurs.
    ///
    /// A resident region hits and costs nothing; a non-resident region is
    /// brought in line by line, evicting least-recently-used regions if the
    /// capacity is exceeded. Regions larger than the cache always miss.
    pub fn fetch_region(&mut self, region_id: u64, footprint_bytes: u32) -> u64 {
        if let Some(pos) = self.resident.iter().position(|&(id, _)| id == region_id) {
            // Move to MRU position.
            let entry = self.resident.remove(pos).expect("position is valid");
            self.resident.push_back(entry);
            self.hits += 1;
            return 0;
        }
        self.misses += 1;
        let lines = u64::from(footprint_bytes.div_ceil(self.line_bytes));
        self.miss_lines += lines;

        if footprint_bytes <= self.capacity_bytes {
            // Evict LRU regions until the new one fits.
            while self.resident_bytes() + footprint_bytes > self.capacity_bytes {
                self.resident.pop_front();
            }
            self.resident.push_back((region_id, footprint_bytes));
        }
        lines * self.refill_cycles_per_line
    }

    /// Bytes currently resident.
    pub fn resident_bytes(&self) -> u32 {
        self.resident.iter().map(|&(_, b)| b).sum()
    }

    /// Number of region fetches that hit.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of region fetches that missed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total lines refilled so far.
    pub fn miss_lines(&self) -> u64 {
        self.miss_lines
    }

    /// Flush the cache and statistics.
    pub fn reset(&mut self) {
        self.resident.clear();
        self.miss_lines = 0;
        self.hits = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache() -> InstructionCache {
        InstructionCache::new(&ClusterConfig::default(), 30)
    }

    #[test]
    fn first_fetch_misses_then_hits() {
        let mut c = cache();
        let stall = c.fetch_region(1, 256);
        assert_eq!(stall, 4 * 30, "256 B = 4 lines of 64 B");
        assert_eq!(c.fetch_region(1, 256), 0, "second fetch hits");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn capacity_pressure_evicts_lru() {
        let mut c = cache();
        // Three 3 KiB regions cannot all fit in 8 KiB.
        c.fetch_region(1, 3 * 1024);
        c.fetch_region(2, 3 * 1024);
        c.fetch_region(3, 3 * 1024); // evicts region 1
        assert!(c.fetch_region(1, 3 * 1024) > 0, "region 1 was evicted");
        assert_eq!(c.fetch_region(3, 3 * 1024), 0, "region 3 is still resident");
    }

    #[test]
    fn oversized_region_always_misses() {
        let mut c = cache();
        assert!(c.fetch_region(9, 32 * 1024) > 0);
        assert!(c.fetch_region(9, 32 * 1024) > 0);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = cache();
        c.fetch_region(1, 128);
        c.reset();
        assert_eq!(c.resident_bytes(), 0);
        assert_eq!(c.misses(), 0);
        assert!(c.fetch_region(1, 128) > 0);
    }
}
