//! Memory-subsystem model of the Snitch cluster.
//!
//! The cluster couples its worker cores to a 128 KiB, 32-bank scratchpad
//! (tightly coupled data memory, TCDM) through a single-cycle logarithmic
//! interconnect; large tiles are moved between the scratchpad and global
//! memory by a 512-bit DMA engine driven by a dedicated DMA core, and the
//! cores share an 8 KiB L1 instruction cache.
//!
//! This crate models the *timing-relevant* behaviour of that subsystem:
//!
//! * [`spm`] — bank mapping, conflict arbitration and a scratchpad buffer
//!   allocator used by the double-buffered kernels,
//! * [`dma`] — asynchronous 1D/2D DMA transfers with bandwidth limits,
//! * [`icache`] — a capacity/line model of the shared instruction cache.
//!
//! Data values themselves are owned by the SNN substrate (`spikestream-snn`);
//! the kernels compute functionally in Rust and only the *addresses* of
//! their accesses flow through this model.

pub mod dma;
pub mod icache;
pub mod spm;

pub use dma::{DmaEngine, DmaRequest, DmaTransfer};
pub use icache::InstructionCache;
pub use spm::{BankConflictModel, SpmAllocator, SpmBuffer, SpmLayout};
