//! DMA engine model.
//!
//! The Snitch cluster contains a ninth core without FPU or SSRs whose only
//! job is to program a 512-bit DMA engine that moves tiles between global
//! memory and the scratchpad. SpikeStream uses it to double-buffer weights
//! and compressed ifmaps (Section III-D) and to perform the on-the-fly
//! im2row reshaping of the first, dense spike-encoding layer (Section III-F)
//! through 2D transfers.
//!
//! The model is a bandwidth/latency model: a transfer costs a fixed setup
//! time plus one beat per `dma_width_bytes()` of payload, further limited by
//! the global-memory bandwidth. Transfers complete asynchronously so the
//! kernels can overlap them with computation.

use serde::{Deserialize, Serialize};

use snitch_arch::ClusterConfig;

/// Direction of a DMA transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DmaDirection {
    /// Global memory -> scratchpad (tile load).
    In,
    /// Scratchpad -> global memory (tile write-back).
    Out,
}

/// A DMA transfer request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaRequest {
    /// Transfer direction.
    pub direction: DmaDirection,
    /// Bytes of one contiguous row.
    pub row_bytes: u64,
    /// Number of rows (1 for a plain 1D transfer).
    pub rows: u64,
    /// Extra per-row setup overhead in cycles for strided (2D) transfers.
    pub row_stride_overhead: u64,
}

impl DmaRequest {
    /// A 1D contiguous transfer of `bytes`.
    pub fn contiguous(direction: DmaDirection, bytes: u64) -> Self {
        DmaRequest { direction, row_bytes: bytes, rows: 1, row_stride_overhead: 0 }
    }

    /// A 2D strided transfer of `rows` rows of `row_bytes` each — the
    /// shape used by the im2row reshaping of the first layer.
    pub fn strided_2d(direction: DmaDirection, row_bytes: u64, rows: u64) -> Self {
        DmaRequest { direction, row_bytes, rows, row_stride_overhead: 2 }
    }

    /// Total payload bytes of the request.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes * self.rows
    }
}

/// An in-flight or completed transfer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmaTransfer {
    /// The originating request.
    pub request: DmaRequest,
    /// Cycle at which the transfer was issued.
    pub issue_cycle: u64,
    /// Cycle at which the last beat lands.
    pub complete_cycle: u64,
}

impl DmaTransfer {
    /// Duration of the transfer in cycles.
    pub fn duration(&self) -> u64 {
        self.complete_cycle - self.issue_cycle
    }
}

/// The cluster DMA engine.
///
/// The engine serializes transfers: a request issued while a previous one is
/// still in flight starts only after that one completes (the real engine has
/// a small request queue which behaves the same way for back-to-back tile
/// transfers).
#[derive(Debug, Clone)]
pub struct DmaEngine {
    beat_bytes: u64,
    setup_cycles: u64,
    mem_bytes_per_cycle: f64,
    busy_until: u64,
    transfers: Vec<DmaTransfer>,
}

impl DmaEngine {
    /// Create a DMA engine for the given cluster configuration.
    pub fn new(config: &ClusterConfig) -> Self {
        DmaEngine {
            beat_bytes: config.dma_width_bytes() as u64,
            setup_cycles: config.dma_setup_cycles,
            mem_bytes_per_cycle: config.global_mem_bytes_per_cycle,
            busy_until: 0,
            transfers: Vec::new(),
        }
    }

    /// Cycles needed to move the payload of `request`, excluding queueing.
    pub fn transfer_cycles(&self, request: &DmaRequest) -> u64 {
        let payload = request.total_bytes();
        if payload == 0 {
            return 0;
        }
        let beats = payload.div_ceil(self.beat_bytes);
        let bw_limit = (payload as f64 / self.mem_bytes_per_cycle).ceil() as u64;
        self.setup_cycles
            + beats.max(bw_limit)
            + request.rows.saturating_sub(1) * request.row_stride_overhead
    }

    /// Issue a transfer at `now`; returns the completed transfer record.
    ///
    /// The transfer starts at `max(now, busy_until)` — i.e. after any
    /// transfer already in flight — and the engine stays busy until its
    /// completion cycle.
    pub fn issue(&mut self, request: DmaRequest, now: u64) -> DmaTransfer {
        let start = now.max(self.busy_until);
        let complete = start + self.transfer_cycles(&request);
        self.busy_until = complete;
        let t = DmaTransfer { request, issue_cycle: start, complete_cycle: complete };
        self.transfers.push(t.clone());
        t
    }

    /// Cycle until which the engine is busy.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Summed duration of every issued transfer — the engine's total busy
    /// time, as opposed to [`Self::busy_until`] which is the completion
    /// *cycle* of the last transfer. The difference between `busy_until`
    /// and a phase's compute time plus `busy_cycles` is what double
    /// buffering hides.
    pub fn busy_cycles(&self) -> u64 {
        self.transfers.iter().map(DmaTransfer::duration).sum()
    }

    /// All transfers issued so far, in issue order.
    pub fn transfers(&self) -> &[DmaTransfer] {
        &self.transfers
    }

    /// Total bytes moved in each direction `(in, out)`.
    pub fn bytes_moved(&self) -> (u64, u64) {
        let mut inward = 0;
        let mut outward = 0;
        for t in &self.transfers {
            match t.request.direction {
                DmaDirection::In => inward += t.request.total_bytes(),
                DmaDirection::Out => outward += t.request.total_bytes(),
            }
        }
        (inward, outward)
    }

    /// Forget all issued transfers and become idle (between layers).
    pub fn reset(&mut self) {
        self.busy_until = 0;
        self.transfers.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(&ClusterConfig::default())
    }

    #[test]
    fn contiguous_transfer_cost_scales_with_size() {
        let e = engine();
        let small = e.transfer_cycles(&DmaRequest::contiguous(DmaDirection::In, 64));
        let large = e.transfer_cycles(&DmaRequest::contiguous(DmaDirection::In, 64 * 1024));
        assert!(large > small);
        // 64 KiB over a 64 B/cycle path needs at least 1024 beats.
        assert!(large >= 1024);
    }

    #[test]
    fn empty_transfer_is_free() {
        let e = engine();
        assert_eq!(e.transfer_cycles(&DmaRequest::contiguous(DmaDirection::Out, 0)), 0);
    }

    #[test]
    fn strided_transfer_pays_per_row_overhead() {
        let e = engine();
        let flat = e.transfer_cycles(&DmaRequest::contiguous(DmaDirection::In, 4096));
        let strided = e.transfer_cycles(&DmaRequest::strided_2d(DmaDirection::In, 128, 32));
        assert!(strided > flat, "2D transfer of the same payload costs more");
    }

    #[test]
    fn transfers_serialize_on_the_engine() {
        let mut e = engine();
        let t1 = e.issue(DmaRequest::contiguous(DmaDirection::In, 8192), 0);
        let t2 = e.issue(DmaRequest::contiguous(DmaDirection::In, 8192), 10);
        assert_eq!(t2.issue_cycle, t1.complete_cycle, "second transfer waits for the first");
        assert_eq!(e.busy_until(), t2.complete_cycle);
    }

    #[test]
    fn transfer_issued_after_idle_starts_immediately() {
        let mut e = engine();
        let t1 = e.issue(DmaRequest::contiguous(DmaDirection::In, 64), 0);
        let t2 = e.issue(DmaRequest::contiguous(DmaDirection::Out, 64), t1.complete_cycle + 100);
        assert_eq!(t2.issue_cycle, t1.complete_cycle + 100);
    }

    #[test]
    fn bytes_moved_tracks_directions() {
        let mut e = engine();
        e.issue(DmaRequest::contiguous(DmaDirection::In, 1000), 0);
        e.issue(DmaRequest::contiguous(DmaDirection::Out, 500), 0);
        assert_eq!(e.bytes_moved(), (1000, 500));
        e.reset();
        assert_eq!(e.bytes_moved(), (0, 0));
    }
}
