//! Scratchpad (TCDM) bank model and buffer allocator.
//!
//! The Snitch scratchpad interleaves consecutive 64-bit words across its 32
//! banks. Every cycle, each bank can serve a single request; when several
//! requestors (integer cores, SSR data movers, the DMA engine) target the
//! same bank in the same cycle, the logarithmic interconnect serializes them
//! and all but one lose a cycle. The irregular gather addresses of the
//! indirect SpikeStream streams make such conflicts the main residual
//! non-ideality of the streamed kernels (Section IV-A of the paper).

use snitch_arch::ClusterConfig;

/// Maps addresses to banks and estimates arbitration conflicts.
#[derive(Debug, Clone)]
pub struct BankConflictModel {
    banks: u32,
    bank_width_bytes: u32,
}

impl BankConflictModel {
    /// Create a conflict model for the given cluster configuration.
    pub fn new(config: &ClusterConfig) -> Self {
        BankConflictModel { banks: config.spm_banks, bank_width_bytes: config.spm_bank_width_bytes }
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Bank index serving the given byte address.
    pub fn bank_of(&self, addr: u32) -> u32 {
        (addr / self.bank_width_bytes) % self.banks
    }

    /// Extra stall cycles caused by bank conflicts when the given address
    /// sequence is issued `concurrency` requests per cycle.
    ///
    /// Addresses are grouped into windows of `concurrency` accesses that
    /// contend in the same cycle; within a window, each bank serves one
    /// request and every additional request to the same bank costs one
    /// extra cycle. `concurrency` is clamped to at least 1.
    pub fn conflict_cycles(&self, addresses: &[u32], concurrency: usize) -> u64 {
        let concurrency = concurrency.max(1);
        let mut stalls = 0u64;
        let mut histogram = vec![0u32; self.banks as usize];
        for window in addresses.chunks(concurrency) {
            for slot in histogram.iter_mut() {
                *slot = 0;
            }
            for &addr in window {
                histogram[self.bank_of(addr) as usize] += 1;
            }
            stalls += histogram.iter().map(|&c| c.saturating_sub(1) as u64).sum::<u64>();
        }
        stalls
    }

    /// Conflict stalls of one indirect stream, computed without
    /// materializing the address vectors: element `k` fetches its index at
    /// `index_base + k * index_bytes` and gathers
    /// `data_base + indices[k] * elem_bytes`. Exactly equivalent to
    /// [`BankConflictModel::conflict_cycles_pairwise`] over the two
    /// expanded address sequences.
    pub fn conflict_cycles_indexed(
        &self,
        index_base: u32,
        index_bytes: u32,
        data_base: u32,
        elem_bytes: u32,
        indices: &[u32],
    ) -> u64 {
        let mut stalls = 0u64;
        for (k, &idx) in indices.iter().enumerate() {
            let index_addr = index_base + k as u32 * index_bytes;
            let gather = data_base.wrapping_add(idx * elem_bytes);
            if self.bank_of(index_addr) == self.bank_of(gather) {
                stalls += 1;
            }
        }
        stalls
    }

    /// Conflict stalls between two interleaved address streams (for example
    /// the index fetches and the gathered weight reads of an indirect SSR),
    /// assuming one element of each stream is issued per cycle.
    pub fn conflict_cycles_pairwise(&self, a: &[u32], b: &[u32]) -> u64 {
        let mut stalls = 0u64;
        for (&x, &y) in a.iter().zip(b.iter()) {
            if self.bank_of(x) == self.bank_of(y) {
                stalls += 1;
            }
        }
        stalls
    }
}

/// A buffer allocated inside the scratchpad.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmBuffer {
    /// Byte offset of the buffer within the scratchpad.
    pub base: u32,
    /// Size of the buffer in bytes.
    pub bytes: u32,
}

impl SpmBuffer {
    /// Address one past the end of the buffer.
    pub fn end(&self) -> u32 {
        self.base + self.bytes
    }

    /// Whether the buffer contains the byte address `addr`.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Bump allocator for scratchpad buffers.
///
/// The SpikeStream kernels allocate, per tile: the compressed ifmap
/// (`c_idcs` + `s_ptr`), the weight tile, the neuron-state tile, and the
/// worst-case-sized compressed ofmap buffers — each twice when
/// double-buffered. The allocator reproduces the capacity constraint of the
/// 128 KiB scratchpad, which drives the tiling decisions.
#[derive(Debug, Clone)]
pub struct SpmAllocator {
    capacity: u32,
    next: u32,
    allocations: Vec<SpmBuffer>,
}

impl SpmAllocator {
    /// Create an allocator covering the whole scratchpad of `config`.
    pub fn new(config: &ClusterConfig) -> Self {
        SpmAllocator { capacity: config.spm_bytes, next: 0, allocations: Vec::new() }
    }

    /// Create an allocator with an explicit capacity in bytes.
    pub fn with_capacity(capacity: u32) -> Self {
        SpmAllocator { capacity, next: 0, allocations: Vec::new() }
    }

    /// Allocate `bytes` (8-byte aligned).
    ///
    /// # Errors
    ///
    /// Returns [`SpmAllocError`] when the scratchpad does not have enough
    /// free space left.
    pub fn alloc(&mut self, bytes: u32) -> Result<SpmBuffer, SpmAllocError> {
        let aligned = bytes.div_ceil(8) * 8;
        if self.next + aligned > self.capacity {
            return Err(SpmAllocError {
                requested: aligned,
                free: self.capacity - self.next,
                capacity: self.capacity,
            });
        }
        let buffer = SpmBuffer { base: self.next, bytes: aligned };
        self.next += aligned;
        self.allocations.push(buffer);
        Ok(buffer)
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u32 {
        self.next
    }

    /// Bytes still available.
    pub fn free(&self) -> u32 {
        self.capacity - self.next
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// All granted allocations, in allocation order.
    pub fn allocations(&self) -> &[SpmBuffer] {
        &self.allocations
    }

    /// Release every allocation (used between layer phases).
    pub fn reset(&mut self) {
        self.next = 0;
        self.allocations.clear();
    }
}

/// Error returned when a scratchpad allocation does not fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpmAllocError {
    /// Bytes requested (after alignment).
    pub requested: u32,
    /// Bytes still free.
    pub free: u32,
    /// Total scratchpad capacity.
    pub capacity: u32,
}

impl std::fmt::Display for SpmAllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "scratchpad allocation of {} B does not fit ({} B free of {} B)",
            self.requested, self.free, self.capacity
        )
    }
}

impl std::error::Error for SpmAllocError {}

/// Named scratchpad layout of a double-buffered kernel phase.
///
/// Convenience wrapper bundling the buffers a conv/FC tile needs, so the
/// kernels and the tests can reason about scratchpad occupancy together.
#[derive(Debug, Clone)]
pub struct SpmLayout {
    /// Compressed ifmap index buffer (`c_idcs`), per buffer copy.
    pub ifmap_idcs: Vec<SpmBuffer>,
    /// Spatial pointer buffer (`s_ptr`), per buffer copy.
    pub ifmap_sptr: Vec<SpmBuffer>,
    /// Weight tile, per buffer copy.
    pub weights: Vec<SpmBuffer>,
    /// Neuron state (membrane potential) tile.
    pub neuron_state: SpmBuffer,
    /// Worst-case compressed ofmap buffer.
    pub ofmap: SpmBuffer,
}

impl SpmLayout {
    /// Total bytes occupied by the layout.
    pub fn total_bytes(&self) -> u32 {
        let sum = |v: &Vec<SpmBuffer>| v.iter().map(|b| b.bytes).sum::<u32>();
        sum(&self.ifmap_idcs)
            + sum(&self.ifmap_sptr)
            + sum(&self.weights)
            + self.neuron_state.bytes
            + self.ofmap.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> BankConflictModel {
        BankConflictModel::new(&ClusterConfig::default())
    }

    #[test]
    fn banks_interleave_by_word() {
        let m = model();
        assert_eq!(m.bank_of(0), 0);
        assert_eq!(m.bank_of(8), 1);
        assert_eq!(m.bank_of(8 * 31), 31);
        assert_eq!(m.bank_of(8 * 32), 0);
        // Sub-word addresses stay in the same bank.
        assert_eq!(m.bank_of(4), 0);
    }

    #[test]
    fn sequential_words_never_conflict() {
        let m = model();
        let addrs: Vec<u32> = (0..256).map(|i| i * 8).collect();
        assert_eq!(m.conflict_cycles(&addrs, 8), 0);
    }

    #[test]
    fn same_bank_accesses_serialize() {
        let m = model();
        // Four accesses to bank 0 in one cycle window: three lose arbitration.
        let addrs = vec![0, 256, 512, 768];
        assert_eq!(m.conflict_cycles(&addrs, 4), 3);
        // Issued one per cycle they never conflict.
        assert_eq!(m.conflict_cycles(&addrs, 1), 0);
    }

    #[test]
    fn pairwise_conflicts_count_same_bank_pairs() {
        let m = model();
        let idx = vec![0, 8, 16];
        let data = vec![256, 24, 16 + 256 * 3];
        // 0 vs 256 conflict (bank 0), 8 vs 24 do not, 16 vs 16+768 conflict.
        assert_eq!(m.conflict_cycles_pairwise(&idx, &data), 2);
    }

    #[test]
    fn allocator_respects_capacity() {
        let mut a = SpmAllocator::with_capacity(64);
        let b1 = a.alloc(10).expect("first allocation fits");
        assert_eq!(b1.base, 0);
        assert_eq!(b1.bytes, 16, "allocations are 8-byte aligned");
        let b2 = a.alloc(48).expect("second allocation fits");
        assert_eq!(b2.base, 16);
        assert!(a.alloc(8).is_err(), "scratchpad is full");
        assert_eq!(a.used(), 64);
        a.reset();
        assert_eq!(a.free(), 64);
    }

    #[test]
    fn allocator_matches_cluster_capacity() {
        let mut a = SpmAllocator::new(&ClusterConfig::default());
        assert_eq!(a.capacity(), 128 * 1024);
        assert!(a.alloc(128 * 1024).is_ok());
        assert!(a.alloc(8).is_err());
    }

    #[test]
    fn buffer_contains() {
        let b = SpmBuffer { base: 16, bytes: 32 };
        assert!(b.contains(16));
        assert!(b.contains(47));
        assert!(!b.contains(48));
        assert!(!b.contains(8));
    }
}
