//! Symbolic cost integration over a stream program.
//!
//! The [`CostIntegrator`] walks a [`StreamProgram`] and charges the same
//! per-operation costs the `snitch-sim` worker-core model charges when it
//! interprets the program: decoupled integer/FPU pipelines, FREP sequencer
//! back-pressure, stream startup and sustained delivery intervals, bank
//! conflicts (pairwise for resolved gather indices, an expected cross-core
//! term otherwise), instruction-cache refills, and the DMA engine's
//! serialization and double-buffer overlap. On an *exact* program the
//! integrator therefore reproduces the interpreter's instruction, FLOP,
//! stream-element and DMA-byte totals exactly, and its cycle counts to
//! within the distribution error of work stealing; on a *symbolic* program
//! (fractional repetition counts, expected-length streams) it degrades
//! gracefully into the closed-form expectation, evaluating replicated work
//! items twice and extrapolating the steady-state deltas instead of
//! unrolling every instance.
//!
//! On top of that linearization, [`CostIntegrator::integrate`] folds whole
//! replicated phases in closed form: cores whose pipeline state and
//! instance share are bitwise identical at the start of a replicated item
//! (the common case — every core but the first, which pays the I-cache
//! refill) are priced once and the result is broadcast, so a
//! cluster-width phase costs two representative evaluations instead of
//! one per core. The pre-folding per-core path survives as
//! [`CostIntegrator::integrate_reference`] and a property test pins the
//! two bit-for-bit.
//!
//! This replaces the per-kernel closed-form loop math the repository used
//! to carry in `spikestream-kernels/src/analytic.rs`: the loop structure
//! now lives in the emitters (once), and this module only knows how to
//! price IR operations.

use std::collections::VecDeque;

use snitch_arch::isa::FpOp;
use snitch_arch::{ClusterConfig, CostModel};
use snitch_mem::dma::DmaDirection;
use snitch_mem::{BankConflictModel, DmaEngine, InstructionCache};

use crate::program::{
    ComputePhase, IndexStream, KernelOp, Phase, StreamProgram, StreamSpec, WorkItem,
};

/// Maximum number of FREP regions the integer core may queue ahead of the
/// FPU before it stalls on the sequencer buffer (mirrors the simulator).
const MAX_OUTSTANDING_FREPS: usize = 2;

/// Integrated execution statistics of one program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramCost {
    /// Program runtime in cycles: slowest core or last DMA completion,
    /// never zero.
    pub cycles: u64,
    /// Compute-only duration (slowest worker core, including any prologue
    /// DMA wait), never zero.
    pub compute_cycles: u64,
    /// Cycle at which the DMA engine finishes its last transfer.
    pub dma_cycles: u64,
    /// Summed duration of all DMA transfers (overlap-free busy time).
    pub dma_busy_cycles: u64,
    /// Useful FPU issue slots summed over all cores.
    pub fpu_busy_cycles: f64,
    /// Average per-core FPU utilization (0..=1).
    pub fpu_utilization: f64,
    /// Average per-core instructions per cycle.
    pub ipc: f64,
    /// Integer instructions summed over all cores.
    pub int_instrs: f64,
    /// FP instructions summed over all cores.
    pub fp_instrs: f64,
    /// Scalar FLOPs summed over all cores.
    pub flops: f64,
    /// SSR configurations summed over all cores.
    pub ssr_configs: f64,
    /// Stream elements delivered, summed over all cores.
    pub stream_elements: f64,
    /// Bytes moved into the scratchpad.
    pub dma_bytes_in: u64,
    /// Bytes moved out of the scratchpad.
    pub dma_bytes_out: u64,
}

/// Numeric per-core pipeline state of the integration.
#[derive(Debug, Clone, Default)]
struct CoreState {
    int_time: f64,
    fpu_time: f64,
    fpu_last: f64,
    busy: f64,
    int_instrs: f64,
    fp_instrs: f64,
    flops: f64,
    ssr_configs: f64,
    elements: f64,
    conflict_carry: f64,
    freps: VecDeque<f64>,
}

impl CoreState {
    /// Phase time as seen by this core (mirrors `PerfCounters::total_cycles`).
    fn total(&self) -> f64 {
        self.int_time.max(self.fpu_last)
    }

    /// Steady-state delta between two successive snapshots.
    fn delta(&self, earlier: &CoreState) -> CoreState {
        CoreState {
            int_time: self.int_time - earlier.int_time,
            fpu_time: self.fpu_time - earlier.fpu_time,
            fpu_last: self.fpu_last - earlier.fpu_last,
            busy: self.busy - earlier.busy,
            int_instrs: self.int_instrs - earlier.int_instrs,
            fp_instrs: self.fp_instrs - earlier.fp_instrs,
            flops: self.flops - earlier.flops,
            ssr_configs: self.ssr_configs - earlier.ssr_configs,
            elements: self.elements - earlier.elements,
            conflict_carry: 0.0,
            freps: VecDeque::new(),
        }
    }

    /// Bitwise equality over every field, including the FREP queue.
    /// Deliberately stricter than `==` on `f64` (it distinguishes `-0.0`
    /// from `0.0` and matches NaNs with identical payloads): two states
    /// that compare equal here are interchangeable for any further
    /// integration, which is what makes the replicated-item fold exact.
    fn bits_eq(&self, other: &CoreState) -> bool {
        self.int_time.to_bits() == other.int_time.to_bits()
            && self.fpu_time.to_bits() == other.fpu_time.to_bits()
            && self.fpu_last.to_bits() == other.fpu_last.to_bits()
            && self.busy.to_bits() == other.busy.to_bits()
            && self.int_instrs.to_bits() == other.int_instrs.to_bits()
            && self.fp_instrs.to_bits() == other.fp_instrs.to_bits()
            && self.flops.to_bits() == other.flops.to_bits()
            && self.ssr_configs.to_bits() == other.ssr_configs.to_bits()
            && self.elements.to_bits() == other.elements.to_bits()
            && self.conflict_carry.to_bits() == other.conflict_carry.to_bits()
            && self.freps.len() == other.freps.len()
            && self.freps.iter().zip(&other.freps).all(|(a, b)| a.to_bits() == b.to_bits())
    }

    /// Extrapolate `factor` more steady-state iterations onto this state.
    fn extrapolate(&mut self, delta: &CoreState, factor: f64) {
        self.int_time += delta.int_time * factor;
        self.fpu_time += delta.fpu_time * factor;
        self.fpu_last += delta.fpu_last * factor;
        self.busy += delta.busy * factor;
        self.int_instrs += delta.int_instrs * factor;
        self.fp_instrs += delta.fp_instrs * factor;
        self.flops += delta.flops * factor;
        self.ssr_configs += delta.ssr_configs * factor;
        self.elements += delta.elements * factor;
    }
}

/// Integrates the architectural cost model over stream programs.
#[derive(Debug, Clone)]
pub struct CostIntegrator {
    config: ClusterConfig,
    cost: CostModel,
}

impl CostIntegrator {
    /// Create an integrator for the given cluster and cost model.
    pub fn new(config: ClusterConfig, cost: CostModel) -> Self {
        CostIntegrator { config, cost }
    }

    /// Integrator with the default Snitch cluster parameters.
    pub fn snitch() -> Self {
        Self::new(ClusterConfig::default(), CostModel::default())
    }

    /// The cluster configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Integrate one program into its predicted execution statistics.
    ///
    /// Replicated items are folded over core-equivalence classes: cores
    /// entering an item with bitwise-identical pipeline state and instance
    /// share are priced once and share the result. Bit-identical to
    /// [`CostIntegrator::integrate_reference`] by construction.
    pub fn integrate(&self, program: &StreamProgram) -> ProgramCost {
        self.integrate_impl(program, true)
    }

    /// Reference integration path: evaluates every replicated item on every
    /// core individually (the pre-folding exec-twice-and-extrapolate loop).
    /// Kept for differential testing of the folded fast path; production
    /// callers use [`CostIntegrator::integrate`].
    pub fn integrate_reference(&self, program: &StreamProgram) -> ProgramCost {
        self.integrate_impl(program, false)
    }

    fn integrate_impl(&self, program: &StreamProgram, fold: bool) -> ProgramCost {
        let cores = self.config.worker_cores;
        let mut states = vec![CoreState::default(); cores];
        let banks = BankConflictModel::new(&self.config);
        let mut icache = InstructionCache::new(&self.config, self.cost.icache_refill);
        let mut dma = DmaEngine::new(&self.config);
        let lanes = program.format.simd_lanes() as f64;
        let mut prologue_floor = 0.0f64;

        for phase in &program.phases {
            match phase {
                Phase::Dma(d) => {
                    let at = if d.direction == DmaDirection::Out && !d.double_buffered {
                        states.iter().map(CoreState::total).fold(0.0, f64::max).ceil() as u64
                    } else {
                        0
                    };
                    let t = dma.issue(d.request(), at);
                    if d.direction == DmaDirection::In && !d.double_buffered {
                        prologue_floor = prologue_floor.max(t.complete_cycle as f64);
                    }
                }
                Phase::Compute(c) => self.compute_phase(
                    c,
                    &mut states,
                    &banks,
                    &mut icache,
                    prologue_floor,
                    lanes,
                    fold,
                ),
            }
        }

        self.finish(&states, &dma, program)
    }

    #[allow(clippy::too_many_arguments)]
    fn compute_phase(
        &self,
        phase: &ComputePhase,
        states: &mut [CoreState],
        banks: &BankConflictModel,
        icache: &mut InstructionCache,
        floor: f64,
        lanes: f64,
        fold: bool,
    ) {
        // Every core waits for the prologue tile loads before computing.
        for core in states.iter_mut() {
            core.int_time = core.int_time.max(floor);
        }

        for item in &phase.items {
            // Single-instance items (the exact lowerings) replay precisely;
            // replicated items (the symbolic lowerings) are linearized so
            // integration stays O(program size) regardless of layer size.
            if item.instances == 1.0 {
                let j = argmin(states);
                for region in &phase.code {
                    let stall = icache.fetch_region(region.id, region.bytes);
                    states[j].int_time += stall as f64;
                }
                self.exec_item(&mut states[j], item, banks, lanes);
            } else {
                self.replicate_item(states, item, banks, icache, phase, lanes, fold);
            }
        }

        // Implicit end-of-phase barrier on every core.
        for core in states.iter_mut() {
            core.int_time = core.int_time.max(core.fpu_time);
            core.freps.clear();
        }
    }

    /// Distribute `item.instances` identical copies over the cores without
    /// unrolling them: evaluate the item twice per core and extrapolate the
    /// steady-state delta for the remaining instances.
    ///
    /// With `fold` the per-core loop collapses over equivalence classes:
    /// the item's exit state is a pure function of the core's entry state
    /// and its instance share `k`, so a core whose `(entry, k)` matches an
    /// already-priced core copies that core's exit state instead of
    /// re-evaluating. Entry states are compared bitwise (every `f64` field
    /// plus the FREP queue), which makes the fold exact: typically only
    /// core 0 — which pays the I-cache refill — and one representative of
    /// the remaining cores are evaluated.
    #[allow(clippy::too_many_arguments)]
    fn replicate_item(
        &self,
        states: &mut [CoreState],
        item: &WorkItem,
        banks: &BankConflictModel,
        icache: &mut InstructionCache,
        phase: &ComputePhase,
        lanes: f64,
        fold: bool,
    ) {
        let cores = states.len() as f64;
        let whole = (item.instances / cores).floor();
        let rem = item.instances - whole * cores;
        // (k bits, entry state, exit state) of each evaluated class.
        let mut classes: Vec<(u64, CoreState, CoreState)> = Vec::new();
        for (j, core) in states.iter_mut().enumerate() {
            // Round-robin split: the first `rem` cores take one extra copy.
            let k = whole + rem_share(rem, j);
            if k <= 0.0 {
                continue;
            }
            // The I-cache fetches run per core even when the cost folds:
            // they mutate the cache (LRU order, hit/miss residency), and the
            // resulting stall lands in `int_time` *before* the entry
            // snapshot, so the refill-paying core falls into its own class.
            for region in &phase.code {
                let stall = icache.fetch_region(region.id, region.bytes);
                core.int_time += stall as f64;
            }
            if fold {
                if let Some((_, _, exit)) =
                    classes.iter().find(|(kb, entry, _)| *kb == k.to_bits() && entry.bits_eq(core))
                {
                    *core = exit.clone();
                    continue;
                }
                let entry = core.clone();
                self.replicate_on_core(core, item, k, banks, lanes);
                classes.push((k.to_bits(), entry, core.clone()));
            } else {
                self.replicate_on_core(core, item, k, banks, lanes);
            }
        }
    }

    /// Charge `k` instances of `item` to one core: exec once (scaling down
    /// a fractional copy) or twice plus a steady-state extrapolation.
    fn replicate_on_core(
        &self,
        core: &mut CoreState,
        item: &WorkItem,
        k: f64,
        banks: &BankConflictModel,
        lanes: f64,
    ) {
        let s0 = core.clone();
        self.exec_item(core, item, banks, lanes);
        if k <= 1.0 {
            if k < 1.0 {
                // A fractional copy: scale the single-execution delta.
                let d = core.delta(&s0);
                let mut scaled = s0;
                scaled.extrapolate(&d, k);
                scaled.freps = core.freps.clone();
                scaled.conflict_carry = core.conflict_carry;
                *core = scaled;
            }
            return;
        }
        let s1 = core.clone();
        self.exec_item(core, item, banks, lanes);
        let d = core.delta(&s1);
        core.extrapolate(&d, k - 2.0);
    }

    fn exec_item(
        &self,
        core: &mut CoreState,
        item: &WorkItem,
        banks: &BankConflictModel,
        lanes: f64,
    ) {
        for op in &item.ops {
            self.exec_op(core, op, banks, lanes);
        }
    }

    fn exec_op(&self, core: &mut CoreState, op: &KernelOp, banks: &BankConflictModel, lanes: f64) {
        let c = &self.cost;
        match op {
            KernelOp::Int { op, reps, .. } => {
                core.int_time += c.int_cycles(*op) as f64 * reps;
                core.int_instrs += reps;
            }
            KernelOp::Fp { op, reps, .. } => {
                // Each issue hands the op to the FPU through the integer
                // core; dependent chaining advances the FPU serially.
                // Closed form of the per-issue recurrence, mirroring the
                // interpreter's `exec_fp_repeated`: the first iteration
                // starts at `max(int0 + 1, fpu)` and every later one is
                // FPU-bound (for any busy >= 1), adding exactly `busy`.
                // `busy` and `n` are integer-valued, so this is
                // bit-identical to issuing the op `n` times.
                let busy = c.fp_cycles(*op) as f64;
                let n = if reps.fract() == 0.0 { *reps } else { reps.ceil() };
                if n > 0.0 {
                    let int0 = core.int_time;
                    core.int_time += n;
                    core.fpu_time = if busy >= 1.0 {
                        (int0 + 1.0).max(core.fpu_time) + n * busy
                    } else {
                        // Zero-occupancy ops only drag the FPU clock up to
                        // the issue time of the last iteration.
                        core.fpu_time.max(core.int_time)
                    };
                }
                core.int_instrs += reps;
                core.fp_instrs += reps;
                if is_useful_fp(*op) {
                    core.busy += busy * reps;
                }
                core.flops += flops_of(*op, lanes) * reps;
                core.fpu_last = core.fpu_last.max(core.fpu_time);
            }
            KernelOp::Loop { body, reps } => {
                if is_straight_line(body) {
                    self.exec_straight_loop(core, body, *reps, lanes);
                } else {
                    for _ in 0..reps.round() as u64 {
                        for inner in body {
                            self.exec_op(core, inner, banks, lanes);
                        }
                    }
                }
            }
            KernelOp::Stream { ssrs, op } => self.exec_stream(core, ssrs, *op, banks, lanes),
            KernelOp::Barrier => {
                core.int_time = core.int_time.max(core.fpu_time);
                core.freps.clear();
            }
        }
    }

    /// Mirror of the simulator's straight-line repetition fast path: the FP
    /// work of such blocks is throttled by the integer core, so the FP
    /// subsystem finishes together with the integer pipeline.
    fn exec_straight_loop(&self, core: &mut CoreState, body: &[KernelOp], reps: f64, lanes: f64) {
        let c = &self.cost;
        let mut int_cycles = 0.0;
        let mut int_instrs = 0.0;
        let mut fp_busy = 0.0;
        let mut fp_instrs = 0.0;
        let mut flops = 0.0;
        for op in body {
            match op {
                KernelOp::Int { op, reps, .. } => {
                    int_cycles += c.int_cycles(*op) as f64 * reps;
                    int_instrs += reps;
                }
                KernelOp::Fp { op, reps, .. } => {
                    int_cycles += reps; // issue slot on the integer core
                    int_instrs += reps;
                    if is_useful_fp(*op) {
                        fp_busy += c.fp_cycles(*op) as f64 * reps;
                    }
                    fp_instrs += reps;
                    flops += flops_of(*op, lanes) * reps;
                }
                _ => unreachable!("straight-line body"),
            }
        }
        core.int_time += int_cycles * reps;
        core.int_instrs += int_instrs * reps;
        core.fpu_time = core.fpu_time.max(core.int_time);
        core.busy += fp_busy * reps;
        core.fp_instrs += fp_instrs * reps;
        core.flops += flops * reps;
        core.fpu_last = core.fpu_last.max(core.fpu_time);
    }

    fn exec_stream(
        &self,
        core: &mut CoreState,
        ssrs: &[(snitch_arch::SsrId, StreamSpec)],
        op: FpOp,
        banks: &BankConflictModel,
        lanes: f64,
    ) {
        let c = &self.cost;
        // SSR configuration writes occupy the integer pipeline; the shadow
        // registers mean no drain wait.
        let mut reps = 0.0f64;
        let mut interval = 1.0f64;
        let mut conflicts = 0.0f64;
        for (_, spec) in ssrs {
            let writes = match spec {
                StreamSpec::Affine { strides, .. } => 2.0 + 2.0 * strides.len() as f64,
                StreamSpec::Indirect { .. } => 4.0,
            };
            core.int_time += writes * c.ssr_config_write as f64;
            core.int_instrs += writes;
            core.ssr_configs += 1.0;

            let elements = spec.elements();
            reps = reps.max(elements);
            core.elements += elements;
            let accesses_per_element = match spec {
                StreamSpec::Affine { .. } => {
                    interval = interval.max(c.affine_stream_interval);
                    1.0
                }
                StreamSpec::Indirect {
                    index_base,
                    index_bytes,
                    data_base,
                    elem_bytes,
                    indices,
                } => {
                    interval = interval.max(c.indirect_stream_interval);
                    if let IndexStream::Exact(idcs) = indices {
                        // Walk the index words in place instead of
                        // materializing the two address vectors — exactly
                        // equivalent to `conflict_cycles_pairwise` over the
                        // expanded sequences (and identical to what the
                        // cycle-level interpreter charges).
                        conflicts += banks.conflict_cycles_indexed(
                            *index_base,
                            *index_bytes,
                            *data_base,
                            *elem_bytes,
                            idcs,
                        ) as f64;
                    }
                    2.0
                }
            };
            // Cross-core interference, accumulated fractionally so short
            // streams are not over-penalized (mirrors the core model).
            let expected =
                elements * accesses_per_element * c.cross_conflict_per_access + core.conflict_carry;
            let cross = expected.floor();
            core.conflict_carry = expected - cross;
            conflicts += cross;
        }

        // An empty stream configures its SSRs but never launches the FREP
        // (mirrors the interpreter, which skips the hardware loop when the
        // pattern delivers no elements).
        if reps == 0.0 {
            return;
        }

        // FREP launch plus sequencer back-pressure.
        core.int_time += c.frep_launch as f64;
        core.int_instrs += 1.0;
        while let Some(&t) = core.freps.front() {
            if t <= core.int_time {
                core.freps.pop_front();
            } else {
                break;
            }
        }
        if core.freps.len() >= MAX_OUTSTANDING_FREPS {
            let oldest = core.freps.pop_front().expect("non-empty");
            if oldest > core.int_time {
                core.int_time = oldest;
            }
        }

        let total_issue = c.fp_cycles(op) as f64 * reps;
        let occupancy = (total_issue * interval).ceil();
        let start = core.int_time.max(core.fpu_time);
        let busy_end =
            start + c.fpu_latency as f64 + c.stream_startup as f64 + occupancy + conflicts;
        core.fpu_time = busy_end;
        core.fpu_last = core.fpu_last.max(busy_end);
        core.busy += total_issue;
        core.fp_instrs += reps;
        core.flops += flops_of(op, lanes) * reps;
        core.freps.push_back(busy_end);
    }

    fn finish(
        &self,
        states: &[CoreState],
        dma: &DmaEngine,
        program: &StreamProgram,
    ) -> ProgramCost {
        let compute = states.iter().map(CoreState::total).fold(0.0, f64::max).ceil() as u64;
        let compute_cycles = compute.max(1);
        let dma_cycles = dma.busy_until();
        let cycles = compute_cycles.max(dma_cycles);

        let n = states.len().max(1) as f64;
        let mut util_sum = 0.0;
        let mut ipc_sum = 0.0;
        let mut totals = CoreState::default();
        for s in states {
            let total = s.total();
            if total > 0.0 {
                util_sum += s.busy / total;
                ipc_sum += (s.int_instrs + s.fp_instrs) / total;
            }
            totals.busy += s.busy;
            totals.int_instrs += s.int_instrs;
            totals.fp_instrs += s.fp_instrs;
            totals.flops += s.flops;
            totals.ssr_configs += s.ssr_configs;
            totals.elements += s.elements;
        }
        let (dma_bytes_in, dma_bytes_out) = program.dma_bytes();

        ProgramCost {
            cycles,
            compute_cycles,
            dma_cycles,
            dma_busy_cycles: dma.busy_cycles(),
            fpu_busy_cycles: totals.busy,
            fpu_utilization: util_sum / n,
            ipc: ipc_sum / n,
            int_instrs: totals.int_instrs,
            fp_instrs: totals.fp_instrs,
            flops: totals.flops,
            ssr_configs: totals.ssr_configs,
            stream_elements: totals.elements,
            dma_bytes_in,
            dma_bytes_out,
        }
    }
}

/// Round-robin remainder share of core `j` when `rem` instances are left
/// over after the whole division (handles fractional instance counts).
fn rem_share(rem: f64, j: usize) -> f64 {
    let j = j as f64;
    if j + 1.0 <= rem {
        1.0
    } else if j < rem {
        rem - j
    } else {
        0.0
    }
}

fn argmin(states: &[CoreState]) -> usize {
    let mut best = 0;
    let mut best_t = f64::INFINITY;
    for (j, s) in states.iter().enumerate() {
        let t = s.total();
        if t < best_t {
            best_t = t;
            best = j;
        }
    }
    best
}

fn is_straight_line(body: &[KernelOp]) -> bool {
    body.iter().all(|op| matches!(op, KernelOp::Int { .. } | KernelOp::Fp { .. }))
}

fn is_useful_fp(op: FpOp) -> bool {
    matches!(op, FpOp::Add | FpOp::Mul | FpOp::Fma | FpOp::Cmp | FpOp::Cvt)
}

fn flops_of(op: FpOp, lanes: f64) -> f64 {
    match op {
        FpOp::Add | FpOp::Mul | FpOp::Cmp => lanes,
        FpOp::Fma => 2.0 * lanes,
        FpOp::Cvt | FpOp::Move | FpOp::Load | FpOp::Store => 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{CodeRegion, ComputePhase, DmaPhase, Phase, WorkItem};
    use snitch_arch::fp::FpFormat;
    use snitch_arch::SsrId;

    fn integrator() -> CostIntegrator {
        CostIntegrator::snitch()
    }

    fn indirect(n: u32) -> StreamSpec {
        StreamSpec::Indirect {
            index_base: 0x100,
            index_bytes: 2,
            data_base: 0x1000,
            elem_bytes: 8,
            indices: IndexStream::Exact((0..n).collect()),
        }
    }

    fn stream_item(n: u32) -> WorkItem {
        WorkItem::new(vec![
            KernelOp::alu(),
            KernelOp::alu(),
            KernelOp::Stream { ssrs: vec![(SsrId::Ssr0, indirect(n))], op: FpOp::Add },
        ])
    }

    #[test]
    fn streamed_program_reaches_high_utilization() {
        let mut p = StreamProgram::new("stream", FpFormat::Fp16);
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: (0..64).map(|_| stream_item(256)).collect(),
        }));
        let cost = integrator().integrate(&p);
        assert!(cost.fpu_utilization > 0.5, "got {}", cost.fpu_utilization);
        assert_eq!(cost.stream_elements, 64.0 * 256.0);
        assert_eq!(cost.fp_instrs, 64.0 * 256.0);
    }

    #[test]
    fn scalar_program_is_integer_bound() {
        let block = vec![
            KernelOp::load(0x10),
            KernelOp::alu(),
            KernelOp::alu(),
            KernelOp::fp(FpOp::Load),
            KernelOp::alu(),
            KernelOp::alu(),
            KernelOp::fp(FpOp::Add),
            KernelOp::branch(),
        ];
        let mut p = StreamProgram::new("scalar", FpFormat::Fp16);
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::new(vec![KernelOp::Loop { body: block, reps: 100.0 }])],
        }));
        let cost = integrator().integrate(&p);
        // One useful FPU cycle against ~10 integer cycles per element.
        let util = cost.fpu_busy_cycles / cost.compute_cycles as f64;
        assert!(util > 0.05 && util < 0.20, "got {util}");
    }

    #[test]
    fn prologue_dma_delays_compute() {
        let mut with_dma = StreamProgram::new("dma", FpFormat::Fp16);
        with_dma.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 1 << 16, false)));
        with_dma.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::new(vec![KernelOp::alu().times(100.0)])],
        }));
        let cost = integrator().integrate(&with_dma);
        assert!(cost.compute_cycles > 1024, "prologue load gates compute: {:?}", cost);
        assert_eq!(cost.dma_bytes_in, 1 << 16);
    }

    #[test]
    fn double_buffered_dma_overlaps_compute() {
        let mut p = StreamProgram::new("db", FpFormat::Fp16);
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 1 << 16, true)));
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: (0..64).map(|_| stream_item(512)).collect(),
        }));
        let cost = integrator().integrate(&p);
        assert!(
            cost.cycles < cost.compute_cycles + cost.dma_busy_cycles,
            "transfer must hide behind compute: {:?}",
            cost
        );
    }

    #[test]
    fn replicated_items_match_unrolled_items_closely() {
        let make = |replicated: bool| {
            let mut p = StreamProgram::new("r", FpFormat::Fp16);
            let items = if replicated {
                vec![WorkItem::replicated(64.0, stream_item(64).ops)]
            } else {
                (0..64).map(|_| stream_item(64)).collect()
            };
            p.push(Phase::Compute(ComputePhase { code: vec![], items }));
            p
        };
        let a = integrator().integrate(&make(false));
        let b = integrator().integrate(&make(true));
        let rel =
            (a.compute_cycles as f64 - b.compute_cycles as f64).abs() / a.compute_cycles as f64;
        assert!(rel < 0.05, "linearized replication within 5%: {rel}");
        assert!((a.fp_instrs - b.fp_instrs).abs() < 1.0);
    }

    #[test]
    fn icache_refill_is_charged_once() {
        let mut p = StreamProgram::new("icache", FpFormat::Fp16);
        p.push(Phase::Compute(ComputePhase {
            code: vec![CodeRegion { id: 7, bytes: 1024 }],
            items: (0..4).map(|_| WorkItem::new(vec![KernelOp::alu()])).collect(),
        }));
        let cost = integrator().integrate(&p);
        let refill = CostModel::default().icache_refill * (1024 / 64);
        assert!(cost.compute_cycles as f64 >= refill as f64);
        assert!((cost.compute_cycles as f64) < 2.0 * refill as f64);
    }
}
