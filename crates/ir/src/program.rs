//! Stream-program IR types.
//!
//! The grammar (see ARCHITECTURE.md for the prose version):
//!
//! ```text
//! StreamProgram := { label, format, phases: [Phase] }
//! Phase        := Dma(DmaPhase) | Compute(ComputePhase)
//! DmaPhase     := { direction, row_bytes, rows, double_buffered }
//! ComputePhase := { code: [CodeRegion], items: [WorkItem] }
//! WorkItem     := { instances, ops: [KernelOp] }
//! KernelOp     := Int{op, addr?, reps} | Fp{op, addr?, reps}
//!               | Loop{body, reps} | Stream{ssrs: [(SsrId, StreamSpec)], op}
//!               | Barrier
//! ```
//!
//! Repetition counts are `f64` so the same emitter can lower either a
//! concrete input (integral counts, resolved gather indices) or an expected
//! firing rate (fractional counts, [`IndexStream::Expected`]). The
//! cycle-level interpreter only accepts the former; symbolic programs exist
//! for the analytic cost integration.

use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use snitch_arch::isa::{FpOp, IntOp, SsrId, StreamPattern};
use snitch_mem::dma::{DmaDirection, DmaRequest};

/// An instruction-cache code region fetched by every core executing a
/// compute phase (id must be unique per distinct kernel region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CodeRegion {
    /// Region identifier (stable across layers so kernels stay resident).
    pub id: u64,
    /// Code footprint in bytes.
    pub bytes: u32,
}

/// The index source of an indirect stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IndexStream {
    /// Resolved index values (exact lowering from a compressed input).
    /// Shared: the emitters reuse one index vector across every SIMD group
    /// gathering through it, so a materialized program holds each list
    /// once, not once per group.
    Exact(std::sync::Arc<[u32]>),
    /// Expected element count only (symbolic lowering from a firing rate).
    Expected(f64),
}

impl IndexStream {
    /// Exact indices from any iterable of index values.
    pub fn exact(indices: impl IntoIterator<Item = u32>) -> Self {
        IndexStream::Exact(indices.into_iter().collect())
    }
}

/// Address-generation pattern of one stream semantic register, in either
/// exact or symbolic form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamSpec {
    /// Affine stream: `addr = base + Σ idx_d * stride_d`. Affine patterns
    /// are structural (never data dependent), so they are always exact.
    Affine {
        /// Base byte address in the scratchpad.
        base: u32,
        /// Byte strides, innermost first.
        strides: Vec<i64>,
        /// Trip counts, innermost first.
        bounds: Vec<u32>,
        /// Element width in bytes.
        elem_bytes: u32,
    },
    /// Indirect (gather) stream: `addr = data_base + index[i] * elem_bytes`.
    Indirect {
        /// Byte address of the index array in the scratchpad.
        index_base: u32,
        /// Width of one index element in bytes.
        index_bytes: u32,
        /// Base byte address of the gathered data.
        data_base: u32,
        /// Element width of the gathered data in bytes.
        elem_bytes: u32,
        /// Resolved indices or an expected element count.
        indices: IndexStream,
    },
}

impl StreamSpec {
    /// Number of elements the stream delivers (possibly fractional for
    /// symbolic indirect streams).
    pub fn elements(&self) -> f64 {
        match self {
            StreamSpec::Affine { bounds, .. } => bounds.iter().map(|&b| b as f64).product::<f64>(),
            StreamSpec::Indirect { indices: IndexStream::Exact(v), .. } => v.len() as f64,
            StreamSpec::Indirect { indices: IndexStream::Expected(n), .. } => *n,
        }
    }

    /// Whether the stream is symbolic (expected-count indirect).
    pub fn is_symbolic(&self) -> bool {
        matches!(self, StreamSpec::Indirect { indices: IndexStream::Expected(_), .. })
    }

    /// Lower to the simulator's [`StreamPattern`].
    ///
    /// # Panics
    ///
    /// Panics on a symbolic stream — only exact programs are interpretable.
    pub fn to_pattern(&self) -> StreamPattern {
        match self {
            StreamSpec::Affine { base, strides, bounds, elem_bytes } => StreamPattern::Affine {
                base: *base,
                strides: strides.clone(),
                bounds: bounds.clone(),
                elem_bytes: *elem_bytes,
            },
            StreamSpec::Indirect {
                index_base,
                index_bytes,
                data_base,
                elem_bytes,
                indices: IndexStream::Exact(v),
            } => StreamPattern::Indirect {
                index_base: *index_base,
                index_bytes: *index_bytes,
                data_base: *data_base,
                elem_bytes: *elem_bytes,
                // Shared, not copied: the pattern holds the same
                // `Arc<[u32]>` gather list as the IR spec.
                indices: v.clone(),
            },
            StreamSpec::Indirect { indices: IndexStream::Expected(_), .. } => {
                panic!("symbolic streams cannot be interpreted, only integrated")
            }
        }
    }
}

/// One operation of a work item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KernelOp {
    /// An integer-pipeline operation executed `reps` times.
    Int {
        /// The operation kind.
        op: IntOp,
        /// Byte address of a load/store/AMO (bank-conflict accounting).
        addr: Option<u32>,
        /// Repetition count.
        reps: f64,
    },
    /// A non-streamed FP operation issued through the integer core `reps`
    /// times.
    Fp {
        /// The operation kind.
        op: FpOp,
        /// Byte address of a non-streamed FP load/store, if any.
        addr: Option<u32>,
        /// Repetition count.
        reps: f64,
    },
    /// A loop executing `body` `reps` times. Straight-line `Int`/`Fp` bodies
    /// (every leaf with `reps == 1`) take the simulator's fast repetition
    /// path; bodies containing streams are unrolled.
    Loop {
        /// Operations of one iteration.
        body: Vec<KernelOp>,
        /// Trip count.
        reps: f64,
    },
    /// Configure one or two SSRs (shadow registers, so setup overlaps the
    /// running stream) and drain them under an FREP hardware loop whose body
    /// is a single streamed FP operation.
    Stream {
        /// The streams feeding the FREP body, one entry per SSR.
        ssrs: Vec<(SsrId, StreamSpec)>,
        /// The streamed FP operation (one issue per delivered element).
        op: FpOp,
    },
    /// Join the integer pipeline with all outstanding FP/stream work.
    Barrier,
}

impl KernelOp {
    /// An ALU operation.
    pub fn alu() -> Self {
        KernelOp::Int { op: IntOp::Alu, addr: None, reps: 1.0 }
    }

    /// An integer load from `addr`.
    pub fn load(addr: u32) -> Self {
        KernelOp::Int { op: IntOp::Load, addr: Some(addr), reps: 1.0 }
    }

    /// An integer store to `addr`.
    pub fn store(addr: u32) -> Self {
        KernelOp::Int { op: IntOp::Store, addr: Some(addr), reps: 1.0 }
    }

    /// A taken branch.
    pub fn branch() -> Self {
        KernelOp::Int { op: IntOp::Branch, addr: None, reps: 1.0 }
    }

    /// An atomic read-modify-write on `addr`.
    pub fn amo(addr: u32) -> Self {
        KernelOp::Int { op: IntOp::Amo, addr: Some(addr), reps: 1.0 }
    }

    /// An int<->FP move.
    pub fn mov() -> Self {
        KernelOp::Int { op: IntOp::Move, addr: None, reps: 1.0 }
    }

    /// A non-streamed FP operation without memory access.
    pub fn fp(op: FpOp) -> Self {
        KernelOp::Fp { op, addr: None, reps: 1.0 }
    }

    /// A non-streamed FP load/store at `addr`.
    pub fn fp_at(op: FpOp, addr: u32) -> Self {
        KernelOp::Fp { op, addr: Some(addr), reps: 1.0 }
    }

    /// The same operation repeated `reps` times.
    ///
    /// # Panics
    ///
    /// Panics on `Stream` and `Barrier` operations, which carry no
    /// repetition count — wrap them in a [`KernelOp::Loop`] instead.
    pub fn times(self, reps: f64) -> Self {
        match self {
            KernelOp::Int { op, addr, .. } => KernelOp::Int { op, addr, reps },
            KernelOp::Fp { op, addr, .. } => KernelOp::Fp { op, addr, reps },
            KernelOp::Loop { body, .. } => KernelOp::Loop { body, reps },
            KernelOp::Stream { .. } | KernelOp::Barrier => {
                panic!("Stream/Barrier ops carry no repetition count; wrap them in a Loop")
            }
        }
    }

    /// Whether the operation (or anything below it) is symbolic: fractional
    /// repetition counts or expected-count streams.
    pub fn is_symbolic(&self) -> bool {
        match self {
            KernelOp::Int { reps, .. } | KernelOp::Fp { reps, .. } => reps.fract() != 0.0,
            KernelOp::Loop { body, reps } => {
                reps.fract() != 0.0 || body.iter().any(KernelOp::is_symbolic)
            }
            KernelOp::Stream { ssrs, .. } => ssrs.iter().any(|(_, s)| s.is_symbolic()),
            KernelOp::Barrier => false,
        }
    }
}

/// One DMA tile transfer of the program.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DmaPhase {
    /// Transfer direction.
    pub direction: DmaDirection,
    /// Bytes of one contiguous row.
    pub row_bytes: u64,
    /// Number of rows (1 for a plain 1D transfer).
    pub rows: u64,
    /// Extra per-row setup cycles for strided (2D) transfers.
    pub row_stride_overhead: u64,
    /// Double-buffered transfers overlap the surrounding compute phases.
    /// Non-double-buffered inbound transfers are prologue loads the compute
    /// stream waits for; non-double-buffered outbound transfers are epilogue
    /// write-backs issued after the compute stream drains.
    pub double_buffered: bool,
}

impl DmaPhase {
    /// A 1D contiguous transfer.
    pub fn contiguous(direction: DmaDirection, bytes: u64, double_buffered: bool) -> Self {
        DmaPhase { direction, row_bytes: bytes, rows: 1, row_stride_overhead: 0, double_buffered }
    }

    /// A 2D strided transfer (the im2row reshape shape).
    pub fn strided_2d(
        direction: DmaDirection,
        row_bytes: u64,
        rows: u64,
        double_buffered: bool,
    ) -> Self {
        DmaPhase { direction, row_bytes, rows, row_stride_overhead: 2, double_buffered }
    }

    /// Total payload bytes.
    pub fn total_bytes(&self) -> u64 {
        self.row_bytes * self.rows
    }

    /// The equivalent DMA-engine request.
    pub fn request(&self) -> DmaRequest {
        DmaRequest {
            direction: self.direction,
            row_bytes: self.row_bytes,
            rows: self.rows,
            row_stride_overhead: self.row_stride_overhead,
        }
    }
}

/// One work item, stolen as a unit by a worker core. `instances` identical
/// copies are distributed independently (symbolic lowerings use a single
/// representative item with `instances` set to the receptive-field count).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkItem {
    /// How many identical copies of this item the phase contains.
    pub instances: f64,
    /// The item's operation sequence (including its work-stealing claim).
    pub ops: Vec<KernelOp>,
}

impl WorkItem {
    /// A single-instance item.
    pub fn new(ops: Vec<KernelOp>) -> Self {
        WorkItem { instances: 1.0, ops }
    }

    /// An item standing for `instances` identical copies.
    pub fn replicated(instances: f64, ops: Vec<KernelOp>) -> Self {
        WorkItem { instances, ops }
    }
}

/// Work items distributed over the worker cores by workload stealing. Every
/// core joins its outstanding FP work in an implicit barrier when the phase
/// ends.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputePhase {
    /// Code regions each executing core fetches per item (shared I-cache).
    pub code: Vec<CodeRegion>,
    /// The phase's work items, claimed in order.
    pub items: Vec<WorkItem>,
}

/// One phase of a stream program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Phase {
    /// A DMA tile transfer.
    Dma(DmaPhase),
    /// A work-stolen compute phase.
    Compute(ComputePhase),
}

/// A lowered layer: the complete phase program one layer invocation executes
/// on the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamProgram {
    /// Program label (the layer name).
    pub label: String,
    /// Storage format of the kernel (determines SIMD lane counts).
    pub format: FpFormat,
    /// Phases in program order.
    pub phases: Vec<Phase>,
}

impl StreamProgram {
    /// Create an empty program.
    pub fn new(label: impl Into<String>, format: FpFormat) -> Self {
        StreamProgram { label: label.into(), format, phases: Vec::new() }
    }

    /// Append a phase.
    pub fn push(&mut self, phase: Phase) {
        self.phases.push(phase);
    }

    /// Whether any part of the program is symbolic (fractional counts or
    /// expected-length streams). Symbolic programs can only be integrated,
    /// not interpreted.
    pub fn is_symbolic(&self) -> bool {
        self.phases.iter().any(|p| match p {
            Phase::Dma(_) => false,
            Phase::Compute(c) => c
                .items
                .iter()
                .any(|i| i.instances.fract() != 0.0 || i.ops.iter().any(KernelOp::is_symbolic)),
        })
    }

    /// Total DMA payload bytes `(in, out)` of the program.
    pub fn dma_bytes(&self) -> (u64, u64) {
        let mut inward = 0;
        let mut outward = 0;
        for phase in &self.phases {
            if let Phase::Dma(d) = phase {
                match d.direction {
                    DmaDirection::In => inward += d.total_bytes(),
                    DmaDirection::Out => outward += d.total_bytes(),
                }
            }
        }
        (inward, outward)
    }

    /// Number of work items (instance-weighted) across all compute phases.
    pub fn work_items(&self) -> f64 {
        self.phases
            .iter()
            .map(|p| match p {
                Phase::Dma(_) => 0.0,
                Phase::Compute(c) => c.items.iter().map(|i| i.instances).sum(),
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_spec_elements_and_symbolism() {
        let affine =
            StreamSpec::Affine { base: 0, strides: vec![2, 64], bounds: vec![3, 4], elem_bytes: 2 };
        assert_eq!(affine.elements(), 12.0);
        assert!(!affine.is_symbolic());

        let exact = StreamSpec::Indirect {
            index_base: 0,
            index_bytes: 2,
            data_base: 0x100,
            elem_bytes: 8,
            indices: IndexStream::exact([1, 5, 9]),
        };
        assert_eq!(exact.elements(), 3.0);
        assert!(!exact.is_symbolic());

        let symbolic = StreamSpec::Indirect {
            index_base: 0,
            index_bytes: 2,
            data_base: 0x100,
            elem_bytes: 8,
            indices: IndexStream::Expected(3.7),
        };
        assert_eq!(symbolic.elements(), 3.7);
        assert!(symbolic.is_symbolic());
    }

    #[test]
    fn exact_spec_lowers_to_the_simulator_pattern() {
        let spec = StreamSpec::Indirect {
            index_base: 0x40,
            index_bytes: 2,
            data_base: 0x1000,
            elem_bytes: 8,
            indices: IndexStream::exact([3, 0]),
        };
        let pattern = spec.to_pattern();
        assert_eq!(pattern.length(), 2);
        assert_eq!(pattern.data_addresses(), vec![0x1018, 0x1000]);
    }

    #[test]
    #[should_panic(expected = "symbolic streams")]
    fn symbolic_spec_refuses_to_lower() {
        StreamSpec::Indirect {
            index_base: 0,
            index_bytes: 2,
            data_base: 0,
            elem_bytes: 8,
            indices: IndexStream::Expected(4.0),
        }
        .to_pattern();
    }

    #[test]
    fn program_symbolism_and_dma_totals() {
        let mut p = StreamProgram::new("test", FpFormat::Fp16);
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 1024, false)));
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::Out, 256, true)));
        p.push(Phase::Compute(ComputePhase {
            code: vec![CodeRegion { id: 1, bytes: 512 }],
            items: vec![WorkItem::new(vec![KernelOp::alu(), KernelOp::branch()])],
        }));
        assert!(!p.is_symbolic());
        assert_eq!(p.dma_bytes(), (1024, 256));
        assert_eq!(p.work_items(), 1.0);

        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::replicated(16.0, vec![KernelOp::alu().times(2.5)])],
        }));
        assert!(p.is_symbolic());
        assert_eq!(p.work_items(), 17.0);
    }

    #[test]
    fn op_constructors_cover_the_grammar() {
        assert!(matches!(KernelOp::amo(4), KernelOp::Int { op: IntOp::Amo, addr: Some(4), .. }));
        assert!(matches!(KernelOp::mov(), KernelOp::Int { op: IntOp::Move, .. }));
        let looped = KernelOp::Loop { body: vec![KernelOp::alu()], reps: 1.0 }.times(9.0);
        assert!(matches!(looped, KernelOp::Loop { reps, .. } if reps == 9.0));
        assert!(!KernelOp::fp(FpOp::Add).is_symbolic());
        assert!(KernelOp::fp(FpOp::Add).times(0.5).is_symbolic());
    }
}
