//! Unified SSR stream-program intermediate representation.
//!
//! SpikeStream's central claim is that sparse SNN kernels are best expressed
//! as *streams*: indirection-capable SSRs feed the FPU while the DMA engine
//! double-buffers tiles into the scratchpad. This crate makes that claim a
//! first-class artifact. A kernel *lowers* a layer (plus its compressed
//! spike input) into a [`StreamProgram`] — a small program of phases:
//!
//! * [`DmaPhase`] — one tile transfer, annotated with whether it is
//!   double-buffered (overlaps compute) or a prologue/epilogue transfer the
//!   compute stream must serialize against;
//! * [`ComputePhase`] — work items distributed over the worker cores by
//!   workload stealing, each a sequence of [`KernelOp`]s: scalar integer or
//!   FP operations (`Scalar{op, reps}` in the paper's terms), straight-line
//!   loops, and SSR-fed FREP stream operations
//!   (`Stream{pattern, ssr, op, format, reps}`).
//!
//! Both execution backends consume the *same* program:
//!
//! * the cycle-level backend interprets it on the `snitch-sim` cluster model
//!   (`snitch_sim::execute_program`), and
//! * the analytic backend integrates the [`CostModel`](snitch_arch::CostModel)
//!   over it with the [`CostIntegrator`],
//!
//! so the two backends agree by construction: instruction, FLOP and
//! DMA-byte totals are *exactly* equal on any concrete (non-symbolic)
//! program, and cycle counts agree within the small tolerance introduced by
//! the integrator's closed-form work-stealing distribution.
//!
//! Programs come in two flavours produced by the same emitters:
//!
//! * **exact** — lowered from a concrete compressed input: indirect streams
//!   carry their resolved index vectors and every repetition count is
//!   integral. Exact programs are interpretable and integrable.
//! * **symbolic** — lowered from expected firing rates: indirect streams
//!   carry an [`IndexStream::Expected`] element count and repetition counts
//!   may be fractional. Symbolic programs integrate in `O(program size)`
//!   independent of the layer's data, which is what keeps the analytic
//!   backend fast enough for full-batch figure sweeps.

//!
//! Serving builds on one more concept: symbolic programs are *cached and
//! re-bound* rather than re-emitted per sample. The [`cache`] module holds
//! the plan-owned [`ProgramCache`] (keyed by layer, kernel class, format
//! and [`SparsityBucket`]), and the [`rebind`] module implements the
//! `Expected`-count substitution that serves structurally identical
//! bindings without re-running an emitter.

pub mod cache;
pub mod cost;
pub mod program;
pub mod rebind;

pub use cache::{
    CacheCounters, CachedProgram, ProgramCache, ProgramKey, SparsityBucket, StructuralKey,
};
pub use cost::{CostIntegrator, ProgramCost};
pub use program::{
    CodeRegion, ComputePhase, DmaPhase, IndexStream, KernelOp, Phase, StreamProgram, StreamSpec,
    WorkItem,
};
