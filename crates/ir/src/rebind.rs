//! Re-binding symbolic programs to a new realized sparsity.
//!
//! A symbolic [`StreamProgram`] separates cleanly into a *discrete* part —
//! the tile plan, the DMA phases, the scratchpad base addresses and the op
//! skeleton, all selected by integral quantities such as the planner's
//! expected spike count — and a *continuous* part: the
//! [`IndexStream::Expected`] element counts of its indirect gather streams,
//! which are linear in the realized input firing rate. When two sparsity
//! bindings share the discrete part, the second program need not be
//! re-emitted: cloning the first and substituting the `Expected` counts
//! yields, bit for bit, the program the emitter would have produced. That
//! substitution is what [`StreamProgram::rebind_expected`] implements; the
//! plan cache (see [`crate::cache`]) uses it to serve cross-bucket misses
//! without re-running an emitter, and the kernels decide *when* it is
//! exact (their emitters know which scalars feed the planner).

use crate::program::{IndexStream, KernelOp, Phase, StreamProgram, StreamSpec};

impl StreamProgram {
    /// A copy of this program with every [`IndexStream::Expected`] element
    /// count mapped through `f` (in program order, recursing into loop
    /// bodies). Exact index vectors, affine streams, repetition counts, DMA
    /// phases and code regions are preserved untouched.
    pub fn rebind_expected(&self, mut f: impl FnMut(f64) -> f64) -> StreamProgram {
        let mut out = self.clone();
        for phase in &mut out.phases {
            if let Phase::Compute(c) = phase {
                for item in &mut c.items {
                    for op in &mut item.ops {
                        rebind_op(op, &mut f);
                    }
                }
            }
        }
        out
    }

    /// The `Expected` element counts of the program's symbolic gather
    /// streams, in program order (loop bodies included). Empty for exact
    /// programs.
    pub fn expected_counts(&self) -> Vec<f64> {
        let mut counts = Vec::new();
        for phase in &self.phases {
            if let Phase::Compute(c) = phase {
                for item in &c.items {
                    for op in &item.ops {
                        collect_expected(op, &mut counts);
                    }
                }
            }
        }
        counts
    }
}

fn rebind_op(op: &mut KernelOp, f: &mut impl FnMut(f64) -> f64) {
    match op {
        KernelOp::Stream { ssrs, .. } => {
            for (_, spec) in ssrs {
                if let StreamSpec::Indirect { indices: IndexStream::Expected(n), .. } = spec {
                    *n = f(*n);
                }
            }
        }
        KernelOp::Loop { body, .. } => {
            for inner in body {
                rebind_op(inner, f);
            }
        }
        KernelOp::Int { .. } | KernelOp::Fp { .. } | KernelOp::Barrier => {}
    }
}

fn collect_expected(op: &KernelOp, counts: &mut Vec<f64>) {
    match op {
        KernelOp::Stream { ssrs, .. } => {
            for (_, spec) in ssrs {
                if let StreamSpec::Indirect { indices: IndexStream::Expected(n), .. } = spec {
                    counts.push(*n);
                }
            }
        }
        KernelOp::Loop { body, .. } => {
            for inner in body {
                collect_expected(inner, counts);
            }
        }
        KernelOp::Int { .. } | KernelOp::Fp { .. } | KernelOp::Barrier => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ComputePhase, DmaPhase, WorkItem};
    use snitch_arch::fp::FpFormat;
    use snitch_arch::isa::{FpOp, SsrId};
    use snitch_mem::dma::DmaDirection;

    fn symbolic_program(expected: f64) -> StreamProgram {
        let mut p = StreamProgram::new("layer", FpFormat::Fp16);
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 256, false)));
        let stream = KernelOp::Stream {
            ssrs: vec![(
                SsrId::Ssr0,
                StreamSpec::Indirect {
                    index_base: 0x40,
                    index_bytes: 2,
                    data_base: 0x100,
                    elem_bytes: 8,
                    indices: IndexStream::Expected(expected),
                },
            )],
            op: FpOp::Add,
        };
        let looped = KernelOp::Loop { body: vec![KernelOp::alu(), stream], reps: 9.0 };
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::replicated(16.0, vec![looped])],
        }));
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::Out, 64, false)));
        p
    }

    #[test]
    fn rebind_replaces_expected_counts_and_nothing_else() {
        let a = symbolic_program(12.0);
        let b = a.rebind_expected(|n| n * 0.25);
        assert_eq!(b.expected_counts(), vec![3.0]);
        // Everything discrete is untouched: re-binding back restores the
        // original program bit for bit.
        assert_eq!(b.rebind_expected(|_| 12.0), a);
        assert_eq!(a.dma_bytes(), b.dma_bytes());
        assert_eq!(a.work_items(), b.work_items());
    }

    #[test]
    fn rebind_of_an_exact_program_is_the_identity() {
        let mut p = StreamProgram::new("exact", FpFormat::Fp16);
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::new(vec![KernelOp::Stream {
                ssrs: vec![(
                    SsrId::Ssr0,
                    StreamSpec::Indirect {
                        index_base: 0,
                        index_bytes: 2,
                        data_base: 0x80,
                        elem_bytes: 8,
                        indices: IndexStream::exact([1, 2, 3]),
                    },
                )],
                op: FpOp::Add,
            }])],
        }));
        assert!(p.expected_counts().is_empty());
        assert_eq!(p.rebind_expected(|_| panic!("no symbolic streams")), p);
    }
}
