//! The plan-owned symbolic program cache.
//!
//! Ahead-of-time compilation (`spikestream::Engine::compile`) lowers every
//! layer of a network into its symbolic [`StreamProgram`] once; the
//! per-sample serving hot path then only *looks programs up* instead of
//! re-emitting and re-integrating them. This module is the shared cache
//! behind that split:
//!
//! * a [`ProgramKey`] identifies one binding of one layer — kernel class,
//!   storage format and the [`SparsityBucket`] of realized firing rates;
//! * a [`CachedProgram`] carries the bound program together with its
//!   integrated [`ProgramCost`], so a cache hit skips both the emitter and
//!   the [`CostIntegrator`](crate::CostIntegrator);
//! * a [`StructuralKey`] names the *discrete* part of a binding (tile-plan
//!   footprint, activation-tail rate, zero-input degeneracy). Two buckets
//!   that share a structural key differ only in their `Expected`-count
//!   gather streams, so a miss can be served by
//!   [`StreamProgram::rebind_expected`](crate::StreamProgram::rebind_expected)
//!   from an already-cached sibling instead of a fresh emission — the
//!   emitters (in `spikestream-kernels`) decide when that substitution is
//!   exact and drive [`ProgramCache::bind_with`] accordingly.
//!
//! The cache is internally synchronized (`RwLock` + atomic counters), so a
//! `Plan` can share one instance across all the worker threads of its
//! sessions: lookups take a read lock, and only the cold bind path writes.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use snitch_arch::fp::FpFormat;

use crate::cost::ProgramCost;
use crate::program::StreamProgram;

/// The realized sparsity of one symbolic layer binding: the exact bit
/// patterns of the clamped input and output firing rates.
///
/// Buckets are keyed at full `f64` resolution — the cache must serve
/// bit-identical programs, so two bindings share a bucket exactly when
/// their realized rates are equal. Coarser bucketing would trade report
/// fidelity for hit rate; the serving steady state (repeated requests over
/// a fixed sample population) hits at full resolution already.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SparsityBucket {
    input_bits: u64,
    output_bits: u64,
}

impl SparsityBucket {
    /// The bucket of a `(input, output)` firing-rate pair. Rates are
    /// clamped to `0.0..=1.0` first, exactly like the emitters clamp them.
    pub fn of(input_rate: f64, output_rate: f64) -> Self {
        SparsityBucket {
            input_bits: input_rate.clamp(0.0, 1.0).to_bits(),
            output_bits: output_rate.clamp(0.0, 1.0).to_bits(),
        }
    }

    /// The clamped input firing rate this bucket stands for.
    pub fn input_rate(&self) -> f64 {
        f64::from_bits(self.input_bits)
    }

    /// The clamped output firing rate this bucket stands for.
    pub fn output_rate(&self) -> f64 {
        f64::from_bits(self.output_bits)
    }
}

/// Cache key of one bound program: which layer, which kernel class (the
/// emitting crate's variant discriminator), which storage format, which
/// sparsity bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProgramKey {
    /// Layer index within the network.
    pub layer: u32,
    /// Kernel-class discriminator assigned by the emitter crate (e.g. the
    /// code variant); this crate only requires it to be stable.
    pub class: u32,
    /// Storage format of the lowering.
    pub format: FpFormat,
    /// Realized sparsity of the binding.
    pub bucket: SparsityBucket,
}

/// The discrete part of a binding: everything that selects the program
/// *shape* — tile plan and DMA phases (via the planner `footprint`), the
/// activation tail (via the output-rate bits) and the zero-input
/// degeneracy (emitters omit the gather entirely for silent inputs).
/// Bindings that agree on a `StructuralKey` differ only in their
/// `Expected` gather counts and are therefore re-bindable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StructuralKey {
    /// Layer index within the network.
    pub layer: u32,
    /// Kernel-class discriminator (as in [`ProgramKey::class`]).
    pub class: u32,
    /// Storage format of the lowering.
    pub format: FpFormat,
    /// The discretized input count the emitter feeds its tiling planner
    /// (expected spikes for conv, active inputs for FC, 0 when the plan is
    /// input-independent).
    pub footprint: u64,
    /// Bit pattern of the clamped output rate (the activation tail).
    pub output_bits: u64,
    /// Whether the input side is exactly silent (rate 0.0).
    pub input_silent: bool,
}

/// One cached binding: the bound symbolic program and its integrated cost.
#[derive(Debug, Clone, PartialEq)]
pub struct CachedProgram {
    /// The bound stream program.
    pub program: StreamProgram,
    /// The program's integrated execution statistics.
    pub cost: ProgramCost,
}

/// Monotonic cache statistics (since construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Lookups served from an exact bucket entry.
    pub hits: u64,
    /// Misses served by re-binding a structurally identical entry.
    pub rebinds: u64,
    /// Misses that ran a full emitter lowering.
    pub emits: u64,
}

impl CacheCounters {
    /// Total lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.rebinds + self.emits
    }

    /// Lookups that did not hit an exact entry.
    pub fn misses(&self) -> u64 {
        self.rebinds + self.emits
    }
}

/// Thread-safe program cache owned by a compiled plan.
///
/// The cache is *bounded*: once [`ProgramCache::capacity`] entries are
/// resident, further cold bindings are computed and returned without
/// being inserted, so a plan serving an unbounded stream of fresh
/// sparsity buckets (e.g. ever-new sample indices under a jittered
/// profile) holds at most `capacity` programs — correctness is
/// unaffected, only those bindings stay cold.
#[derive(Debug)]
pub struct ProgramCache {
    bound: RwLock<HashMap<ProgramKey, Arc<CachedProgram>>>,
    structural: RwLock<HashMap<StructuralKey, ProgramKey>>,
    capacity: usize,
    hits: AtomicU64,
    rebinds: AtomicU64,
    emits: AtomicU64,
}

impl Default for ProgramCache {
    fn default() -> Self {
        Self::bounded(Self::DEFAULT_CAPACITY)
    }
}

impl ProgramCache {
    /// Default resident-program bound: generous for any realistic serving
    /// population (64Ki bindings ≈ thousands of samples × layers) while
    /// capping worst-case memory for ever-fresh request streams.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to at most `capacity` resident programs
    /// (clamped to at least 1).
    pub fn bounded(capacity: usize) -> Self {
        ProgramCache {
            bound: RwLock::new(HashMap::new()),
            structural: RwLock::new(HashMap::new()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            rebinds: AtomicU64::new(0),
            emits: AtomicU64::new(0),
        }
    }

    /// Maximum number of resident bound programs.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of bound programs currently cached.
    pub fn len(&self) -> usize {
        self.bound.read().expect("program cache poisoned").len()
    }

    /// Whether the cache holds no bound programs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/rebind/emit counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            hits: self.hits.load(Ordering::Relaxed),
            rebinds: self.rebinds.load(Ordering::Relaxed),
            emits: self.emits.load(Ordering::Relaxed),
        }
    }

    /// Peek at an exact entry without counting a lookup (used by tests and
    /// ahead-of-time warm-up probes).
    pub fn peek(&self, key: &ProgramKey) -> Option<Arc<CachedProgram>> {
        self.bound.read().expect("program cache poisoned").get(key).cloned()
    }

    /// Insert a binding produced ahead of time (compile-time warm-up). Does
    /// not touch the lookup counters; also registers the structural key as
    /// a re-bind donor if it has none yet.
    pub fn preload(&self, key: ProgramKey, structural: StructuralKey, entry: CachedProgram) {
        let entry = Arc::new(entry);
        self.bound.write().expect("program cache poisoned").insert(key, entry);
        self.structural.write().expect("program cache poisoned").entry(structural).or_insert(key);
    }

    /// The serving lookup: return the exact entry for `key` if present;
    /// otherwise, if a structurally identical sibling is cached and
    /// `rebind` can substitute its `Expected` counts (returns `Some`),
    /// cache and return the rebound program; otherwise run `emit`, cache
    /// and return its result. Counts one hit, rebind or emit respectively.
    pub fn bind_with(
        &self,
        key: ProgramKey,
        structural: StructuralKey,
        rebind: impl FnOnce(&CachedProgram) -> Option<CachedProgram>,
        emit: impl FnOnce() -> CachedProgram,
    ) -> Arc<CachedProgram> {
        if let Some(entry) = self.bound.read().expect("program cache poisoned").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.clone();
        }

        let donor = self
            .structural
            .read()
            .expect("program cache poisoned")
            .get(&structural)
            .and_then(|rep| self.peek(rep));
        let (entry, counter) = match donor.as_deref().and_then(rebind) {
            Some(rebound) => (Arc::new(rebound), &self.rebinds),
            None => (Arc::new(emit()), &self.emits),
        };
        counter.fetch_add(1, Ordering::Relaxed);

        let mut bound = self.bound.write().expect("program cache poisoned");
        if bound.len() < self.capacity {
            bound.insert(key, entry.clone());
            drop(bound);
            self.structural
                .write()
                .expect("program cache poisoned")
                .entry(structural)
                .or_insert(key);
        }
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_arch::fp::FpFormat;

    fn entry(label: &str) -> CachedProgram {
        CachedProgram {
            program: StreamProgram::new(label, FpFormat::Fp16),
            cost: crate::CostIntegrator::snitch()
                .integrate(&StreamProgram::new(label, FpFormat::Fp16)),
        }
    }

    fn key(layer: u32, rate: f64) -> ProgramKey {
        ProgramKey {
            layer,
            class: 1,
            format: FpFormat::Fp16,
            bucket: SparsityBucket::of(rate, 0.5),
        }
    }

    fn structural(layer: u32, footprint: u64) -> StructuralKey {
        StructuralKey {
            layer,
            class: 1,
            format: FpFormat::Fp16,
            footprint,
            output_bits: 0.5f64.to_bits(),
            input_silent: false,
        }
    }

    #[test]
    fn bucket_clamps_and_round_trips_rates() {
        let b = SparsityBucket::of(1.5, -0.25);
        assert_eq!(b.input_rate(), 1.0);
        assert_eq!(b.output_rate(), 0.0);
        assert_eq!(SparsityBucket::of(0.3, 0.7), SparsityBucket::of(0.3, 0.7));
        assert_ne!(SparsityBucket::of(0.3, 0.7), SparsityBucket::of(0.3000001, 0.7));
    }

    #[test]
    fn repeated_lookups_hit_after_the_first_emit() {
        let cache = ProgramCache::new();
        for _ in 0..3 {
            cache.bind_with(key(0, 0.25), structural(0, 40), |_| None, || entry("a"));
        }
        let c = cache.counters();
        assert_eq!((c.hits, c.rebinds, c.emits), (2, 0, 1));
        assert_eq!(c.lookups(), 3);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn structural_siblings_are_served_by_rebinding() {
        let cache = ProgramCache::new();
        cache.bind_with(key(0, 0.25), structural(0, 40), |_| None, || entry("a"));
        // Same structural key, different bucket: the donor is offered for
        // re-binding and no emit runs.
        cache.bind_with(
            key(0, 0.26),
            structural(0, 40),
            |donor| Some(donor.clone()),
            || panic!("must not emit"),
        );
        // Different structural key: no donor, the emitter runs.
        cache.bind_with(key(0, 0.5), structural(0, 80), |_| panic!("no donor"), || entry("b"));
        let c = cache.counters();
        assert_eq!((c.hits, c.rebinds, c.emits), (0, 1, 2));
        assert_eq!(c.misses(), 3);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn a_full_cache_serves_cold_bindings_without_inserting() {
        let cache = ProgramCache::bounded(2);
        assert_eq!(cache.capacity(), 2);
        for i in 0..5 {
            cache.bind_with(key(i, 0.25), structural(i, 40), |_| None, || entry("x"));
        }
        assert_eq!(cache.len(), 2, "growth stops at the bound");
        assert_eq!(cache.counters().emits, 5, "cold bindings still serve");
        // Resident entries keep hitting.
        cache.bind_with(key(0, 0.25), structural(0, 40), |_| None, || panic!("resident"));
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn preload_warms_the_cache_without_counting_lookups() {
        let cache = ProgramCache::new();
        cache.preload(key(2, 0.1), structural(2, 8), entry("warm"));
        assert_eq!(cache.counters().lookups(), 0);
        assert!(!cache.is_empty());
        cache.bind_with(key(2, 0.1), structural(2, 8), |_| None, || panic!("preloaded"));
        assert_eq!(cache.counters().hits, 1);
    }

    #[test]
    fn cache_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ProgramCache>();

        let cache = std::sync::Arc::new(ProgramCache::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let cache = cache.clone();
                s.spawn(move || {
                    for i in 0..16 {
                        cache.bind_with(
                            key(i % 4, 0.25),
                            structural(i % 4, 40),
                            |_| None,
                            || entry("t"),
                        );
                    }
                });
            }
        });
        let c = cache.counters();
        assert_eq!(c.lookups(), 64);
        assert_eq!(cache.len(), 4);
        assert!(c.hits >= 56, "at most one cold bind per key per racing thread");
    }
}
