//! Declarative scenario files for the `spikestream` CLI.
//!
//! A scenario is a small key/value file (a strict TOML subset — one
//! `[scenario]` table, `key = value` lines, `#` comments) that names
//! everything one batch-inference run needs: the network, the code
//! variant, the storage format, the timing model, the batch size, the
//! seed and the shard count. The CLI's `run`, `bench` and `compare`
//! subcommands all start from a scenario file, so every fleet experiment
//! is reproducible from a checked-in artifact.
//!
//! ```text
//! # examples/scenarios/svgg11_fp16.toml
//! [scenario]
//! name      = "svgg11-fp16"
//! network   = "svgg11"        # svgg11 | tiny-cnn | tiny-pool
//! variant   = "spikestream"   # baseline | spikestream
//! format    = "fp16"          # fp64 | fp32 | fp16 | fp8
//! timing    = "analytic"      # analytic | cycle-level
//! batch     = 128
//! seed      = 0xC1FA
//! shards    = 8
//! # Optional temporal-pipeline keys: setting either switches the run from
//! # the synthetic single-shot path to a real T-timestep inference.
//! timesteps = 4
//! encoding  = "rate"          # rate | direct
//!
//! # Optional neuron-model override applied to every layer of the network.
//! [neuron_model]
//! model       = "izhikevich"  # lif | izhikevich
//! a           = 0.02          # izhikevich: a b c d v_threshold
//! b           = 0.2           # lif:        alpha resistance v_threshold v_reset
//! c           = -65.0
//! d           = 8.0
//! v_threshold = 30.0
//!
//! # Optional serving-gateway policy for `spikestream serve-demo` (each
//! # key falls back to the gateway default when omitted).
//! [serve]
//! max_batch = 16
//! linger_us = 200
//! queue_cap = 256
//! ```
//!
//! The parser is hand-rolled (no external TOML dependency) and rejects
//! anything outside the subset with a line-numbered error; unknown keys
//! and sections additionally name the nearest valid spelling.
//!
//! # Example
//!
//! ```
//! use spikestream::Scenario;
//!
//! let scenario = Scenario::parse(
//!     "[scenario]\n\
//!      name = \"quick\"\n\
//!      batch = 4\n\
//!      shards = 2\n",
//! )
//! .unwrap();
//! assert_eq!(scenario.name, "quick");
//! let report = scenario.compile().unwrap().open_session().infer(&scenario.request());
//! assert_eq!(report.batch, 4);
//! assert_eq!(report.shards.as_ref().unwrap().shards.len(), 2);
//! ```

use snitch_arch::fp::FpFormat;
use spikestream_kernels::KernelVariant;
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::TensorShape;
use spikestream_snn::{
    ConvSpec, FiringProfile, IzhiParams, LinearSpec, Network, NetworkBuilder, NeuronModel,
    PoolSpec, TemporalEncoding, WorkloadMode,
};

use crate::engine::{Engine, InferenceConfig, TimingModel};
use crate::plan::{Compiler, Plan};
use crate::report::InferenceReport;
use crate::session::Request;

/// The networks a scenario can name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetworkChoice {
    /// The paper's S-VGG11 with its calibrated CIFAR-10 firing profile.
    Svgg11,
    /// A small two-conv-plus-FC network (8x8x3 input) that the cycle-level
    /// timing model can evaluate in test/smoke time budgets.
    TinyCnn,
    /// The tiny CNN with a standalone average-pooling layer between the
    /// conv stage and the classifier — exercises the `AvgPool` layer kind
    /// (and its single stream-program emitter) end to end.
    TinyPool,
}

impl NetworkChoice {
    /// Build the network and its firing profile for `seed`.
    pub fn build(self, seed: u64) -> (Network, FiringProfile) {
        match self {
            NetworkChoice::Svgg11 => (Network::svgg11(seed), FiringProfile::paper_svgg11()),
            NetworkChoice::TinyCnn => {
                let lif = LifParams::new(0.5, 0.3);
                let mut net = NetworkBuilder::new("tiny-cnn")
                    .conv(
                        "conv1",
                        ConvSpec {
                            input: TensorShape::new(8, 8, 3),
                            out_channels: 8,
                            kh: 3,
                            kw: 3,
                            stride: 1,
                            padding: 1,
                            pool: true,
                        },
                        lif,
                    )
                    .conv(
                        "conv2",
                        ConvSpec {
                            input: TensorShape::new(4, 4, 8),
                            out_channels: 16,
                            kh: 3,
                            kw: 3,
                            stride: 1,
                            padding: 1,
                            pool: false,
                        },
                        lif,
                    )
                    .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
                    .build_with_random_weights(seed, 0.1);
                net.layers_mut()[0].encodes_input = true;
                (net, FiringProfile::uniform(3, 0.25))
            }
            NetworkChoice::TinyPool => {
                let lif = LifParams::new(0.5, 0.3);
                let mut net = NetworkBuilder::new("tiny-pool")
                    .conv(
                        "conv1",
                        ConvSpec {
                            input: TensorShape::new(8, 8, 3),
                            out_channels: 8,
                            kh: 3,
                            kw: 3,
                            stride: 1,
                            padding: 1,
                            pool: false,
                        },
                        lif,
                    )
                    .avg_pool(
                        "pool2",
                        PoolSpec { input: TensorShape::new(8, 8, 8), window: 2 },
                        lif,
                    )
                    .linear("fc3", LinearSpec { in_features: 4 * 4 * 8, out_features: 10 }, lif)
                    .build_with_random_weights(seed, 0.1);
                net.layers_mut()[0].encodes_input = true;
                (net, FiringProfile::uniform(3, 0.25))
            }
        }
    }

    /// The scenario-file spelling of this choice.
    pub fn as_str(self) -> &'static str {
        match self {
            NetworkChoice::Svgg11 => "svgg11",
            NetworkChoice::TinyCnn => "tiny-cnn",
            NetworkChoice::TinyPool => "tiny-pool",
        }
    }
}

/// A parse/validation error with the 1-based line it occurred on (0 for
/// file-level problems).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// 1-based source line, 0 when no single line is at fault.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "scenario: {}", self.message)
        } else {
            write!(f, "scenario line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

fn err(line: usize, message: impl Into<String>) -> ScenarioError {
    ScenarioError { line, message: message.into() }
}

/// Serving-gateway policy from a scenario's optional `[serve]` table.
///
/// Each field overrides the corresponding gateway default when set. The
/// core crate does not depend on the serving crate, so these are plain
/// values; the CLI folds them into `spikestream-serve`'s `GatewayConfig`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeSettings {
    /// Close a micro-batch once it holds this many samples.
    pub max_batch: Option<usize>,
    /// Close a non-full micro-batch after this many microseconds.
    pub linger_us: Option<u64>,
    /// Bounded per-tenant queue capacity, in requests.
    pub queue_cap: Option<usize>,
}

/// One declarative batch-inference scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (used in output headers).
    pub name: String,
    /// Network to evaluate.
    pub network: NetworkChoice,
    /// Inference configuration (variant, format, timing, batch, seed).
    pub config: InferenceConfig,
    /// Number of simulated cluster shards the batch is spread over.
    pub shards: usize,
    /// Optional neuron-model override applied to every layer (from the
    /// `[neuron_model]` table); `None` keeps each network's built-in LIF
    /// parameters.
    pub neuron: Option<NeuronModel>,
    /// Optional serving-gateway policy (from the `[serve]` table); `None`
    /// leaves the gateway on its defaults.
    pub serve: Option<ServeSettings>,
}

impl Scenario {
    /// The defaults a scenario file overrides: S-VGG11, SpikeStream
    /// variant, FP16, analytic timing, the paper's batch of 128, one
    /// shard.
    pub fn defaults() -> Self {
        Scenario {
            name: "unnamed".to_string(),
            network: NetworkChoice::Svgg11,
            config: InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16),
            shards: 1,
            neuron: None,
            serve: None,
        }
    }

    /// Parse a scenario from the TOML-subset text format.
    ///
    /// # Errors
    ///
    /// Returns a line-numbered [`ScenarioError`] for anything outside the
    /// subset: unknown sections or keys, malformed values, missing
    /// `[scenario]` header.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        #[derive(PartialEq)]
        enum Section {
            None,
            Scenario,
            NeuronModel,
            Serve,
        }

        let mut scenario = Scenario::defaults();
        let mut section = Section::None;
        let mut saw_scenario = false;
        let mut saw_neuron = false;
        let mut serve = ServeSettings::default();
        let mut saw_serve = false;
        let mut timesteps: Option<usize> = None;
        let mut encoding: Option<TemporalEncoding> = None;
        // `[neuron_model]` keys, collected raw and assembled after the loop
        // so the `model` selector may appear anywhere in its table.
        let mut neuron_choice: Option<(usize, String)> = None;
        let mut neuron_params: Vec<(usize, String, f32)> = Vec::new();

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let name = header
                    .strip_suffix(']')
                    .ok_or_else(|| err(lineno, "unterminated section header"))?
                    .trim();
                section = match name {
                    "scenario" => {
                        saw_scenario = true;
                        Section::Scenario
                    }
                    "neuron_model" => {
                        saw_neuron = true;
                        Section::NeuronModel
                    }
                    "serve" => {
                        saw_serve = true;
                        Section::Serve
                    }
                    other => {
                        return Err(err(
                            lineno,
                            format!(
                                "unknown section `[{other}]` (did you mean `[{}]`?)",
                                nearest(other, SECTION_NAMES)
                            ),
                        ))
                    }
                };
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| err(lineno, format!("expected `key = value`, got `{line}`")))?;
            let key = key.trim();
            let value = value.trim();
            if section == Section::None {
                return Err(err(lineno, "keys must appear inside the `[scenario]` section"));
            }
            if section == Section::NeuronModel {
                match key {
                    "model" => neuron_choice = Some((lineno, parse_string(lineno, value)?)),
                    "alpha" | "resistance" | "v_reset" | "v_threshold" | "a" | "b" | "c" | "d" => {
                        neuron_params.push((lineno, key.to_string(), parse_f32(lineno, value)?))
                    }
                    other => {
                        return Err(err(
                            lineno,
                            format!(
                                "unknown key `{other}` in `[neuron_model]` (did you mean \
                                 `{}`?)",
                                nearest(other, NEURON_KEYS)
                            ),
                        ))
                    }
                }
                continue;
            }
            if section == Section::Serve {
                match key {
                    "max_batch" => {
                        let max_batch = parse_u64(lineno, value)? as usize;
                        if max_batch == 0 {
                            return Err(err(lineno, "max_batch must be at least 1"));
                        }
                        serve.max_batch = Some(max_batch);
                    }
                    "linger_us" => serve.linger_us = Some(parse_u64(lineno, value)?),
                    "queue_cap" => {
                        let queue_cap = parse_u64(lineno, value)? as usize;
                        if queue_cap == 0 {
                            return Err(err(lineno, "queue_cap must be at least 1"));
                        }
                        serve.queue_cap = Some(queue_cap);
                    }
                    other => {
                        return Err(err(
                            lineno,
                            format!(
                                "unknown key `{other}` in `[serve]` (did you mean `{}`?)",
                                nearest(other, SERVE_KEYS)
                            ),
                        ))
                    }
                }
                continue;
            }
            match key {
                "name" => scenario.name = parse_string(lineno, value)?,
                "network" => {
                    scenario.network = match parse_string(lineno, value)?.as_str() {
                        "svgg11" => NetworkChoice::Svgg11,
                        "tiny-cnn" | "tiny" => NetworkChoice::TinyCnn,
                        "tiny-pool" => NetworkChoice::TinyPool,
                        other => {
                            return Err(err(
                                lineno,
                                format!(
                                    "unknown network `{other}` (svgg11 | tiny-cnn | tiny-pool)"
                                ),
                            ))
                        }
                    }
                }
                "variant" => {
                    scenario.config.variant = match parse_string(lineno, value)?.as_str() {
                        "baseline" => KernelVariant::Baseline,
                        "spikestream" => KernelVariant::SpikeStream,
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown variant `{other}` (baseline | spikestream)"),
                            ))
                        }
                    }
                }
                "format" => {
                    scenario.config.format = match parse_string(lineno, value)?.as_str() {
                        "fp64" => FpFormat::Fp64,
                        "fp32" => FpFormat::Fp32,
                        "fp16" => FpFormat::Fp16,
                        "fp8" => FpFormat::Fp8,
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown format `{other}` (fp64 | fp32 | fp16 | fp8)"),
                            ))
                        }
                    }
                }
                "timing" => {
                    scenario.config.timing = match parse_string(lineno, value)?.as_str() {
                        "analytic" => TimingModel::Analytic,
                        "cycle-level" | "cycle" => TimingModel::CycleLevel,
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown timing `{other}` (analytic | cycle-level)"),
                            ))
                        }
                    }
                }
                "batch" => {
                    let batch = parse_u64(lineno, value)? as usize;
                    if batch == 0 {
                        return Err(err(lineno, "batch must be at least 1"));
                    }
                    scenario.config.batch = batch;
                }
                "seed" => scenario.config.seed = parse_u64(lineno, value)?,
                "timesteps" => {
                    let steps = parse_u64(lineno, value)? as usize;
                    if steps == 0 {
                        return Err(err(lineno, "timesteps must be at least 1"));
                    }
                    timesteps = Some(steps);
                }
                "encoding" => {
                    encoding = Some(match parse_string(lineno, value)?.as_str() {
                        "rate" => TemporalEncoding::Rate,
                        "direct" => TemporalEncoding::Direct,
                        other => {
                            return Err(err(
                                lineno,
                                format!("unknown encoding `{other}` (rate | direct)"),
                            ))
                        }
                    });
                }
                "shards" => {
                    let shards = parse_u64(lineno, value)? as usize;
                    if shards == 0 {
                        return Err(err(lineno, "shards must be at least 1"));
                    }
                    scenario.shards = shards;
                }
                other => {
                    return Err(err(
                        lineno,
                        format!(
                            "unknown key `{other}` (did you mean `{}`?)",
                            nearest(other, SCENARIO_KEYS)
                        ),
                    ))
                }
            }
        }

        if !saw_scenario {
            return Err(err(0, "missing `[scenario]` section"));
        }
        if saw_neuron {
            scenario.neuron = Some(assemble_neuron_model(neuron_choice, &neuron_params)?);
        }
        if saw_serve {
            scenario.serve = Some(serve);
        }
        // Either temporal key switches the run to the temporal pipeline;
        // unspecified halves fall back to T = 1 / direct coding.
        if timesteps.is_some() || encoding.is_some() {
            scenario.config.mode = WorkloadMode::Temporal {
                timesteps: timesteps.unwrap_or(1),
                encoding: encoding.unwrap_or(TemporalEncoding::Direct),
            };
        }
        Ok(scenario)
    }

    /// Read and parse a scenario file.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the file cannot be read or fails
    /// [`Scenario::parse`].
    pub fn from_file(path: &std::path::Path) -> Result<Self, ScenarioError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.display())))?;
        Self::parse(&text)
    }

    /// Build the engine this scenario describes. A `[neuron_model]`
    /// override replaces the built network's per-layer dynamics before the
    /// engine is assembled, so it reaches every compile and serving path.
    pub fn engine(&self) -> Engine {
        let (mut network, profile) = self.network.build(self.config.seed);
        if let Some(model) = self.neuron {
            network.set_neuron_model(model);
        }
        Engine::new(network, profile)
    }

    /// The [`Compiler`] for this scenario — the same construction path the
    /// engine and the CLI use, so no caller assembles backends by hand.
    pub fn compiler(&self) -> Compiler {
        self.engine().compiler()
    }

    /// Compile the scenario into a servable [`Plan`].
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] when the configuration fails plan
    /// compilation (e.g. a zero batch).
    pub fn compile(&self) -> Result<Plan, ScenarioError> {
        self.compiler().compile(self.config).map_err(|e| err(0, e.to_string()))
    }

    /// The full-batch serving request this scenario describes, fleet
    /// attribution included.
    pub fn request(&self) -> Request {
        Request::batch(self.config.batch).with_shards(self.shards)
    }

    /// Run the scenario through the sharded batch driver and return the
    /// report (with fleet statistics).
    #[deprecated(
        since = "0.2.0",
        note = "compile once and serve: `scenario.compile()?.open_session().infer(&scenario.request())`"
    )]
    pub fn run(&self) -> InferenceReport {
        // Historical tolerance: a zero batch ran as one sample.
        let mut legacy = self.clone();
        legacy.config.batch = legacy.config.batch.max(1);
        let plan = legacy.compile().expect("scenario must compile");
        plan.open_session().infer(&legacy.request())
    }

    /// Run the scenario through the single-threaded reference path (no
    /// fleet statistics); bit-identical in all aggregate fields to
    /// [`Scenario::run`].
    #[deprecated(
        since = "0.2.0",
        note = "serve a sequential request: `session.infer(&Request::batch(n).sequential())`"
    )]
    pub fn run_sequential(&self) -> InferenceReport {
        let mut legacy = self.clone();
        legacy.config.batch = legacy.config.batch.max(1);
        let plan = legacy.compile().expect("scenario must compile");
        plan.open_session().infer(&Request::batch(legacy.config.batch).sequential())
    }
}

/// Section headers the parser accepts.
const SECTION_NAMES: &[&str] = &["scenario", "neuron_model", "serve"];

/// Keys of the `[scenario]` table.
const SCENARIO_KEYS: &[&str] = &[
    "name",
    "network",
    "variant",
    "format",
    "timing",
    "batch",
    "seed",
    "timesteps",
    "encoding",
    "shards",
];

/// Keys of the `[neuron_model]` table (the union of both models' fields).
const NEURON_KEYS: &[&str] =
    &["model", "alpha", "resistance", "v_reset", "v_threshold", "a", "b", "c", "d"];

/// Keys of the `[serve]` table.
const SERVE_KEYS: &[&str] = &["max_batch", "linger_us", "queue_cap"];

/// The candidate with the smallest edit distance to `key` — what the
/// "did you mean" half of an unknown-key error names.
fn nearest<'a>(key: &str, candidates: &[&'a str]) -> &'a str {
    candidates
        .iter()
        .copied()
        .min_by_key(|c| edit_distance(key, c))
        .expect("candidate lists are non-empty")
}

/// Levenshtein distance over bytes, small-string sized.
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = if ca == cb { diag } else { diag + 1 };
            diag = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(diag + 1);
        }
    }
    row[b.len()]
}

/// Turn the collected `[neuron_model]` keys into a [`NeuronModel`],
/// starting each model from its canonical defaults and rejecting keys
/// that belong to the other model with a line-numbered error.
fn assemble_neuron_model(
    choice: Option<(usize, String)>,
    params: &[(usize, String, f32)],
) -> Result<NeuronModel, ScenarioError> {
    let model = match &choice {
        None => "lif".to_string(),
        Some((line, name)) => match name.as_str() {
            "lif" | "izhikevich" => name.clone(),
            other => return Err(err(*line, format!("unknown model `{other}` (lif | izhikevich)"))),
        },
    };
    if model == "lif" {
        let mut p = LifParams::default();
        for (line, key, value) in params {
            match key.as_str() {
                "alpha" => p.alpha = *value,
                "resistance" => p.resistance = *value,
                "v_threshold" => p.v_threshold = *value,
                "v_reset" => p.v_reset = *value,
                other => {
                    return Err(err(
                        *line,
                        format!(
                            "key `{other}` does not apply to the lif model \
                             (alpha | resistance | v_threshold | v_reset)"
                        ),
                    ))
                }
            }
        }
        Ok(NeuronModel::Lif(p))
    } else {
        let mut p = IzhiParams::regular_spiking();
        for (line, key, value) in params {
            match key.as_str() {
                "a" => p.a = *value,
                "b" => p.b = *value,
                "c" => p.c = *value,
                "d" => p.d = *value,
                "v_threshold" => p.v_threshold = *value,
                other => {
                    return Err(err(
                        *line,
                        format!(
                            "key `{other}` does not apply to the izhikevich model \
                             (a | b | c | d | v_threshold)"
                        ),
                    ))
                }
            }
        }
        Ok(NeuronModel::Izhikevich(p))
    }
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse a double-quoted string value.
fn parse_string(line: usize, value: &str) -> Result<String, ScenarioError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| err(line, format!("expected a quoted string, got `{value}`")))?;
    if inner.contains('"') {
        return Err(err(line, "embedded quotes are not supported"));
    }
    Ok(inner.to_string())
}

/// Parse an unsigned integer (decimal, or hex with an `0x` prefix;
/// underscores allowed as digit separators).
fn parse_u64(line: usize, value: &str) -> Result<u64, ScenarioError> {
    let cleaned = value.replace('_', "");
    let parsed = match cleaned.strip_prefix("0x").or_else(|| cleaned.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => cleaned.parse(),
    };
    parsed.map_err(|_| err(line, format!("expected an unsigned integer, got `{value}`")))
}

/// Parse a finite float (negative values allowed; underscores allowed as
/// digit separators).
fn parse_f32(line: usize, value: &str) -> Result<f32, ScenarioError> {
    let cleaned = value.replace('_', "");
    match cleaned.parse::<f32>() {
        Ok(v) if v.is_finite() => Ok(v),
        _ => Err(err(line, format!("expected a finite number, got `{value}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = r#"
# A fully-specified scenario.
[scenario]
name    = "full"          # trailing comment
network = "tiny-cnn"
variant = "baseline"
format  = "fp8"
timing  = "cycle-level"
batch   = 3
seed    = 0xBEEF
shards  = 4
"#;

    #[test]
    fn full_scenario_round_trips_every_key() {
        let s = Scenario::parse(FULL).unwrap();
        assert_eq!(s.name, "full");
        assert_eq!(s.network, NetworkChoice::TinyCnn);
        assert_eq!(s.config.variant, KernelVariant::Baseline);
        assert_eq!(s.config.format, FpFormat::Fp8);
        assert_eq!(s.config.timing, TimingModel::CycleLevel);
        assert_eq!(s.config.batch, 3);
        assert_eq!(s.config.seed, 0xBEEF);
        assert_eq!(s.shards, 4);
    }

    #[test]
    fn omitted_keys_fall_back_to_the_paper_defaults() {
        let s = Scenario::parse("[scenario]\nname = \"d\"\n").unwrap();
        assert_eq!(s.network, NetworkChoice::Svgg11);
        assert_eq!(s.config, InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16));
        assert_eq!(s.shards, 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("[fleet]\n", 1, "unknown section"),
            ("[scenario]\nbogus = 1\n", 2, "unknown key"),
            ("[scenario]\nbatch = \"x\"\n", 2, "unsigned integer"),
            ("[scenario]\nbatch = 0\n", 2, "at least 1"),
            ("[scenario]\nshards = 0\n", 2, "at least 1"),
            ("[scenario]\nnetwork = \"resnet\"\n", 2, "unknown network"),
            ("[scenario]\nname = unquoted\n", 2, "quoted string"),
            ("[scenario]\nnonsense\n", 2, "key = value"),
            ("name = \"early\"\n", 1, "inside the `[scenario]` section"),
            ("", 0, "missing `[scenario]`"),
        ];
        for (text, line, needle) in cases {
            let e = Scenario::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn temporal_keys_switch_the_workload_mode() {
        let s = Scenario::parse(
            "[scenario]\nname = \"t\"\nnetwork = \"tiny-cnn\"\ntimesteps = 4\nencoding = \"rate\"\n",
        )
        .unwrap();
        assert_eq!(
            s.config.mode,
            WorkloadMode::Temporal { timesteps: 4, encoding: TemporalEncoding::Rate }
        );
        // Either key alone is enough; the other falls back to its default.
        let only_steps = Scenario::parse("[scenario]\ntimesteps = 2\n").unwrap();
        assert_eq!(
            only_steps.config.mode,
            WorkloadMode::Temporal { timesteps: 2, encoding: TemporalEncoding::Direct }
        );
        let only_encoding = Scenario::parse("[scenario]\nencoding = \"direct\"\n").unwrap();
        assert_eq!(
            only_encoding.config.mode,
            WorkloadMode::Temporal { timesteps: 1, encoding: TemporalEncoding::Direct }
        );
        // No temporal keys: the synthetic single-shot path.
        let plain = Scenario::parse("[scenario]\nname = \"p\"\n").unwrap();
        assert_eq!(plain.config.mode, WorkloadMode::Synthetic);
    }

    #[test]
    fn temporal_key_errors_carry_line_numbers() {
        let cases = [
            ("[scenario]\ntimesteps = 0\n", 2, "at least 1"),
            ("[scenario]\ntimesteps = \"x\"\n", 2, "unsigned integer"),
            ("[scenario]\nencoding = \"poisson2\"\n", 2, "unknown encoding"),
            ("[scenario]\nencoding = rate\n", 2, "quoted string"),
        ];
        for (text, line, needle) in cases {
            let e = Scenario::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn temporal_scenario_runs_with_fleet_statistics() {
        let s = Scenario::parse(
            "[scenario]\nname = \"tt\"\nnetwork = \"tiny-cnn\"\ntiming = \"cycle-level\"\n\
             batch = 3\nshards = 2\ntimesteps = 2\nencoding = \"rate\"\n",
        )
        .unwrap();
        let plan = s.compile().unwrap();
        let mut session = plan.open_session();
        let report = session.infer(&s.request());
        assert_eq!(report.timesteps.as_ref().unwrap().len(), 2);
        assert_eq!(report.shards.as_ref().unwrap().shards.len(), 2);
        let sequential = session.infer(&Request::batch(s.config.batch).sequential());
        assert_eq!(report.without_shard_stats(), sequential);
    }

    #[test]
    fn unknown_keys_and_sections_name_the_nearest_valid_spelling() {
        let e = Scenario::parse("[scenario]\nbatchh = 3\n").unwrap_err();
        assert!(e.message.contains("unknown key `batchh`"), "{e}");
        assert!(e.message.contains("did you mean `batch`"), "{e}");
        let e = Scenario::parse("[scenario]\nshard = 2\n").unwrap_err();
        assert!(e.message.contains("did you mean `shards`"), "{e}");
        let e = Scenario::parse("[neuron-model]\n").unwrap_err();
        assert!(e.message.contains("unknown section `[neuron-model]`"), "{e}");
        assert!(e.message.contains("did you mean `[neuron_model]`"), "{e}");
        let e = Scenario::parse("[scenario]\n[neuron_model]\nalhpa = 0.5\n").unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("unknown key `alhpa` in `[neuron_model]`"), "{e}");
        assert!(e.message.contains("did you mean `alpha`"), "{e}");
    }

    #[test]
    fn neuron_model_table_selects_izhikevich_dynamics() {
        let s = Scenario::parse(
            "[scenario]\nname = \"iz\"\nnetwork = \"tiny-cnn\"\n\
             [neuron_model]\nmodel = \"izhikevich\"\na = 0.1\nc = -60.0\n",
        )
        .unwrap();
        let expected = IzhiParams { a: 0.1, c: -60.0, ..IzhiParams::regular_spiking() };
        assert_eq!(s.neuron, Some(NeuronModel::Izhikevich(expected)));
        // The override reaches the compiled network's layers.
        let plan = s.compile().unwrap();
        for layer in plan.network().layers() {
            assert_eq!(layer.neuron, NeuronModel::Izhikevich(expected));
        }
    }

    #[test]
    fn neuron_model_table_tunes_lif_parameters() {
        // `model` defaults to lif; the selector may also trail its params.
        let s = Scenario::parse(
            "[scenario]\nname = \"l\"\n[neuron_model]\nalpha = 0.75\nv_threshold = 2.0\n",
        )
        .unwrap();
        let expected =
            LifParams { alpha: 0.75, v_threshold: 2.0, v_reset: 1.0, ..LifParams::default() };
        assert_eq!(s.neuron, Some(NeuronModel::Lif(expected)));
        let trailing = Scenario::parse(
            "[scenario]\nname = \"l\"\n[neuron_model]\nalpha = 0.75\n\
             v_threshold = 2.0\nmodel = \"lif\"\n",
        )
        .unwrap();
        assert_eq!(trailing.neuron, s.neuron);
        // No table at all: the networks keep their built-in parameters.
        let plain = Scenario::parse("[scenario]\nname = \"p\"\n").unwrap();
        assert_eq!(plain.neuron, None);
    }

    #[test]
    fn neuron_model_errors_carry_line_numbers() {
        let cases = [
            ("[scenario]\n[neuron_model]\nmodel = \"hodgkin\"\n", 3, "unknown model"),
            ("[scenario]\n[neuron_model]\na = \"x\"\n", 3, "finite number"),
            ("[scenario]\n[neuron_model]\nc = nan\n", 3, "finite number"),
            ("[scenario]\n[neuron_model]\nmodel = lif\n", 3, "quoted string"),
            (
                "[scenario]\n[neuron_model]\nmodel = \"lif\"\nd = 8.0\n",
                4,
                "does not apply to the lif model",
            ),
            (
                "[scenario]\n[neuron_model]\nmodel = \"izhikevich\"\nalpha = 0.5\n",
                4,
                "does not apply to the izhikevich model",
            ),
        ];
        for (text, line, needle) in cases {
            let e = Scenario::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
    }

    #[test]
    fn invalid_neuron_parameters_fail_at_compile_with_a_named_layer() {
        let s = Scenario::parse(
            "[scenario]\nname = \"bad\"\nnetwork = \"tiny-cnn\"\n\
             [neuron_model]\nmodel = \"izhikevich\"\nv_threshold = -80.0\n",
        )
        .unwrap();
        let e = s.compile().unwrap_err();
        assert!(e.message.contains("invalid izhikevich parameters"), "{e}");
        assert!(e.message.contains("conv1"), "{e}");
    }

    #[test]
    fn serve_table_collects_gateway_policy() {
        let s = Scenario::parse(
            "[scenario]\nname = \"sv\"\n[serve]\nmax_batch = 16\nlinger_us = 50\nqueue_cap = 8\n",
        )
        .unwrap();
        assert_eq!(
            s.serve,
            Some(ServeSettings { max_batch: Some(16), linger_us: Some(50), queue_cap: Some(8) })
        );
        // A partial table leaves the omitted knobs unset.
        let partial = Scenario::parse("[scenario]\n[serve]\nmax_batch = 4\n").unwrap();
        assert_eq!(
            partial.serve,
            Some(ServeSettings { max_batch: Some(4), linger_us: None, queue_cap: None })
        );
        // No table at all: `None`, the gateway keeps its defaults.
        let plain = Scenario::parse("[scenario]\nname = \"p\"\n").unwrap();
        assert_eq!(plain.serve, None);
    }

    #[test]
    fn serve_table_errors_carry_line_numbers_and_spellings() {
        let cases = [
            ("[scenario]\n[serve]\nmax_batch = 0\n", 3, "at least 1"),
            ("[scenario]\n[serve]\nqueue_cap = 0\n", 3, "at least 1"),
            ("[scenario]\n[serve]\nlinger_us = \"x\"\n", 3, "unsigned integer"),
        ];
        for (text, line, needle) in cases {
            let e = Scenario::parse(text).unwrap_err();
            assert_eq!(e.line, line, "{text:?}: {e}");
            assert!(e.message.contains(needle), "{text:?}: {e}");
        }
        let e = Scenario::parse("[scenario]\n[serve]\nmax_bath = 4\n").unwrap_err();
        assert_eq!(e.line, 3, "{e}");
        assert!(e.message.contains("unknown key `max_bath` in `[serve]`"), "{e}");
        assert!(e.message.contains("did you mean `max_batch`"), "{e}");
        let e = Scenario::parse("[sevre]\n").unwrap_err();
        assert!(e.message.contains("did you mean `[serve]`"), "{e}");
    }

    #[test]
    fn comments_do_not_break_quoted_values() {
        let s = Scenario::parse("[scenario]\nname = \"has # hash\"\n").unwrap();
        assert_eq!(s.name, "has # hash");
    }

    #[test]
    fn tiny_network_builds_and_validates() {
        let (net, profile) = NetworkChoice::TinyCnn.build(7);
        assert!(net.validate().is_ok());
        assert_eq!(net.len(), 3);
        assert_eq!(profile.rates.len(), 3);
        assert!(net.layers()[0].encodes_input);
    }

    #[test]
    fn scenario_run_matches_its_sequential_reference() {
        let s = Scenario::parse(
            "[scenario]\nname = \"eq\"\nnetwork = \"tiny-cnn\"\nbatch = 6\nshards = 3\n",
        )
        .unwrap();
        let plan = s.compile().unwrap();
        let mut session = plan.open_session();
        let sharded = session.infer(&s.request());
        let sequential = session.infer(&Request::batch(s.config.batch).sequential());
        assert_eq!(sharded.shards.as_ref().unwrap().shards.len(), 3);
        assert_eq!(sharded.without_shard_stats(), sequential);
    }
}
