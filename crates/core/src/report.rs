//! Inference reports: per-layer and end-to-end statistics.
//!
//! Since the serving redesign the monolithic [`InferenceReport`] is a
//! *fold* over the per-sample result stream a
//! [`Session`](crate::Session) emits: the crate-internal
//! `InferenceReport::fold_batch` collapses the flat sample-major
//! measurement buffer into batch-averaged
//! layer (and, for temporal runs, per-timestep) statistics. Every
//! execution path — streaming sinks, one-shot sessions, the deprecated
//! `Engine::run*` wrappers — funnels through this one fold, which is what
//! keeps their reports bit-identical.

use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use spikestream_kernels::KernelVariant;
use spikestream_snn::Network;

use crate::backend::LayerSample;
use crate::engine::InferenceConfig;

/// Statistics of one network layer, averaged over the evaluated batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name (e.g. `conv3`).
    pub name: String,
    /// Mean runtime in cycles.
    pub cycles: f64,
    /// Standard deviation of the runtime across the batch.
    pub cycles_std: f64,
    /// Mean runtime in seconds at the cluster clock.
    pub seconds: f64,
    /// Mean FPU utilization (0..=1).
    pub fpu_utilization: f64,
    /// Mean instructions per cycle per core.
    pub ipc: f64,
    /// Mean firing rate of the layer's input.
    pub input_firing_rate: f64,
    /// Mean input spike count (dense pixels for the encoding layer).
    pub input_spikes: f64,
    /// Mean synaptic operations executed.
    pub synops: f64,
    /// Mean energy in joules.
    pub energy_j: f64,
    /// Mean power in watts.
    pub power_w: f64,
    /// Mean compressed (CSR-derived) ifmap footprint in bytes.
    pub csr_footprint_bytes: f64,
    /// Mean AER ifmap footprint in bytes.
    pub aer_footprint_bytes: f64,
}

/// Batch-averaged statistics of one timestep of a temporal run: the
/// emergent per-step activity the synthetic single-shot path cannot show.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimestepReport {
    /// Timestep index (0-based).
    pub step: usize,
    /// Cycles this step cost, totalled across all layers and averaged over
    /// the batch.
    pub cycles: f64,
    /// DMA payload bytes (in + out) this step moved — including the
    /// per-step membrane load/store traffic — totalled across all layers
    /// and averaged over the batch.
    pub dma_bytes: f64,
    /// Energy in joules this step consumed, totalled across all layers and
    /// averaged over the batch.
    pub energy_j: f64,
    /// Mean input firing rate of each layer at this step, in layer order.
    pub firing_rates: Vec<f64>,
}

/// Occupancy statistics of one cluster shard in a sharded batch run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardUtilization {
    /// Shard id (position in the fleet).
    pub shard: usize,
    /// Number of batch samples this shard executed.
    pub samples: u64,
    /// Simulated cycles this shard spent busy.
    pub busy_cycles: f64,
    /// Fraction of the batch makespan this shard spent busy (0..=1).
    pub utilization: f64,
}

/// Fleet-level statistics of a sharded batch run
/// ([`Engine::run_sharded`](crate::Engine::run_sharded)).
///
/// The shard assignment is a deterministic function of the per-sample
/// cycle counts (least-loaded stealing in simulated time), so these
/// statistics are as reproducible as the aggregate report itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSummary {
    /// Per-shard occupancy, indexed by shard id.
    pub shards: Vec<ShardUtilization>,
    /// Simulated wall time of the batch: the busiest shard's cycles.
    pub makespan_cycles: f64,
    /// Load imbalance: busiest shard over the mean (1.0 = perfectly
    /// balanced).
    pub imbalance: f64,
    /// Effective parallel speedup over a single shard running the whole
    /// stream (total busy cycles / makespan).
    pub batch_speedup: f64,
}

/// End-to-end inference report for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Network name.
    pub network: String,
    /// Code variant that produced the report.
    pub variant: KernelVariant,
    /// Storage format that produced the report.
    pub format: FpFormat,
    /// Number of batch samples averaged.
    pub batch: usize,
    /// Per-layer statistics in execution order. In temporal runs each
    /// layer's extensive quantities (cycles, energy, spikes, synops) cover
    /// the whole T-step inference of a sample.
    pub layers: Vec<LayerReport>,
    /// Per-timestep breakdown of a temporal run (firing-rate trajectory,
    /// per-step cycles, DMA and energy); `None` for synthetic single-shot
    /// runs, whose reports therefore stay bit-identical to the historical
    /// format.
    pub timesteps: Option<Vec<TimestepReport>>,
    /// Per-shard fleet statistics; `None` for unsharded (sequential or
    /// plain parallel) runs. The aggregate layer statistics above are
    /// independent of the sharding, so stripping this field from a sharded
    /// report yields the bit-identical sequential report.
    pub shards: Option<ShardSummary>,
}

impl InferenceReport {
    /// Total mean runtime in cycles over all layers.
    pub fn total_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total mean runtime in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.seconds).sum()
    }

    /// Total mean energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_j).sum()
    }

    /// Runtime-weighted average FPU utilization.
    pub fn average_utilization(&self) -> f64 {
        let total: f64 = self.total_cycles();
        if total == 0.0 {
            return 0.0;
        }
        self.layers.iter().map(|l| l.fpu_utilization * l.cycles).sum::<f64>() / total
    }

    /// Average power over the full inference.
    pub fn average_power_w(&self) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// End-to-end speedup of this report relative to `other`.
    pub fn speedup_over(&self, other: &InferenceReport) -> f64 {
        other.total_cycles() / self.total_cycles().max(1.0)
    }

    /// End-to-end energy-efficiency gain of this report relative to `other`.
    pub fn energy_gain_over(&self, other: &InferenceReport) -> f64 {
        other.total_energy_j() / self.total_energy_j().max(f64::MIN_POSITIVE)
    }

    /// Look up a layer report by name.
    pub fn layer(&self, name: &str) -> Option<&LayerReport> {
        self.layers.iter().find(|l| l.name == name)
    }

    /// Deterministic JSON rendering of the report.
    ///
    /// Field order is fixed and floats use Rust's shortest round-trip
    /// formatting, so two equal reports always produce byte-identical JSON
    /// — the property the engine's parallel-vs-sequential tests assert.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.layers.len() * 384);
        out.push_str("{\"network\":");
        json_string(&mut out, &self.network);
        out.push_str(",\"variant\":");
        json_string(&mut out, &self.variant.to_string());
        out.push_str(",\"format\":");
        json_string(&mut out, &self.format.to_string());
        out.push_str(&format!(",\"batch\":{}", self.batch));
        out.push_str(",\"layers\":[");
        for (i, layer) in self.layers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            layer.write_json(&mut out);
        }
        out.push(']');
        if let Some(steps) = &self.timesteps {
            out.push_str(",\"timesteps\":[");
            for (i, step) in steps.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                step.write_json(&mut out);
            }
            out.push(']');
        }
        if let Some(shards) = &self.shards {
            out.push_str(",\"shards\":");
            shards.write_json(&mut out);
        }
        out.push('}');
        out
    }

    /// The same report without the fleet statistics. A sharded report
    /// stripped this way is bit-identical (including
    /// [`to_json`](InferenceReport::to_json)) to the sequential report of
    /// the same scenario.
    pub fn without_shard_stats(mut self) -> Self {
        self.shards = None;
        self
    }

    /// Fold a batch of per-sample measurements into the averaged report.
    /// `flat` holds sample-major measurements; within one sample the
    /// layout is step-major (timestep `t`, layer `l` at
    /// `t * layer_count + l` — one step for synthetic runs). This is the
    /// layout shared by sequential sessions, the parallel worker fan-out
    /// and the sharded scheduler, so the fold is independent of how the
    /// stream was produced.
    ///
    /// Synthetic runs take the historical path untouched, so their reports
    /// stay bit-identical. Temporal runs first fold each sample's `T x L`
    /// block into per-layer totals (cycles/energy/spikes/synops summed
    /// over steps, rates and footprints averaged, utilization/IPC
    /// cycle-weighted) and additionally derive the per-timestep breakdown.
    ///
    /// # Panics
    ///
    /// Panics unless `flat` holds exactly one [`LayerSample`] per layer
    /// per timestep per sample.
    pub(crate) fn fold_batch(
        network: &Network,
        clock_hz: f64,
        config: &InferenceConfig,
        flat: &[LayerSample],
        batch: usize,
    ) -> InferenceReport {
        let layer_count = network.len();
        let timesteps = config.timesteps();
        let stride = layer_count * timesteps;
        assert_eq!(
            flat.len(),
            batch * stride,
            "backend must return exactly one LayerSample per layer per timestep per sample"
        );

        let (per_layer, timestep_reports): (std::borrow::Cow<'_, [LayerSample]>, _) =
            if config.mode.is_temporal() {
                let folded = fold_temporal_samples(flat, batch, timesteps, layer_count);
                let steps = summarize_timesteps(flat, batch, timesteps, layer_count);
                (folded.into(), Some(steps))
            } else {
                // The synthetic path stays zero-copy: one step per sample
                // means the flat buffer already is the per-layer view.
                (flat.into(), None)
            };

        let layers = network
            .layers()
            .iter()
            .enumerate()
            .map(|(idx, layer)| {
                // An empty batch (a manually built empty sample range)
                // folds to all-zero rows rather than slicing out of range.
                let samples: Vec<LayerSample> = per_layer
                    .get(idx..)
                    .unwrap_or(&[])
                    .iter()
                    .step_by(layer_count)
                    .copied()
                    .collect();
                summarize_layer(layer.name.clone(), clock_hz, &samples)
            })
            .collect();

        InferenceReport {
            network: network.name.clone(),
            variant: config.variant,
            format: config.format,
            batch,
            layers,
            timesteps: timestep_reports,
            shards: None,
        }
    }
}

/// Average one layer's per-sample measurements into its report row.
fn summarize_layer(name: String, clock_hz: f64, samples: &[LayerSample]) -> LayerReport {
    let n = samples.len().max(1) as f64;
    let mean = |f: fn(&LayerSample) -> f64| samples.iter().map(f).sum::<f64>() / n;
    let cycles_mean = mean(|s| s.cycles);
    let cycles_var = samples.iter().map(|s| (s.cycles - cycles_mean).powi(2)).sum::<f64>() / n;
    let seconds = cycles_mean / clock_hz;
    let energy = mean(|s| s.energy_j);
    LayerReport {
        name,
        cycles: cycles_mean,
        cycles_std: cycles_var.sqrt(),
        seconds,
        fpu_utilization: mean(|s| s.fpu_utilization),
        ipc: mean(|s| s.ipc),
        input_firing_rate: mean(|s| s.input_firing_rate),
        input_spikes: mean(|s| s.input_spikes),
        synops: mean(|s| s.synops),
        energy_j: energy,
        power_w: if seconds > 0.0 { energy / seconds } else { 0.0 },
        csr_footprint_bytes: mean(|s| s.csr_footprint_bytes),
        aer_footprint_bytes: mean(|s| s.aer_footprint_bytes),
    }
}

/// Fold each sample's `T x L` temporal block into one [`LayerSample`] per
/// layer: extensive quantities (cycles, energy, spikes, synops, DMA) sum
/// over the steps, rates and footprints average, and utilization/IPC are
/// cycle-weighted means — so a layer's folded sample describes the whole
/// T-step inference of that sample.
fn fold_temporal_samples(
    flat: &[LayerSample],
    batch: usize,
    timesteps: usize,
    layer_count: usize,
) -> Vec<LayerSample> {
    let stride = timesteps * layer_count;
    let mut folded = Vec::with_capacity(batch * layer_count);
    for sample in 0..batch {
        for layer in 0..layer_count {
            let mut acc = LayerSample::default();
            for step in 0..timesteps {
                let s = &flat[sample * stride + step * layer_count + layer];
                acc.cycles += s.cycles;
                acc.energy_j += s.energy_j;
                acc.input_spikes += s.input_spikes;
                acc.synops += s.synops;
                acc.dma_bytes += s.dma_bytes;
                acc.fpu_utilization += s.fpu_utilization * s.cycles;
                acc.ipc += s.ipc * s.cycles;
                acc.input_firing_rate += s.input_firing_rate;
                acc.csr_footprint_bytes += s.csr_footprint_bytes;
                acc.aer_footprint_bytes += s.aer_footprint_bytes;
            }
            let t = timesteps as f64;
            if acc.cycles > 0.0 {
                acc.fpu_utilization /= acc.cycles;
                acc.ipc /= acc.cycles;
            }
            acc.input_firing_rate /= t;
            acc.csr_footprint_bytes /= t;
            acc.aer_footprint_bytes /= t;
            folded.push(acc);
        }
    }
    folded
}

/// Batch-averaged per-timestep breakdown of a temporal run: for every step,
/// the total cycles and DMA bytes of that step plus the per-layer input
/// firing rates — the emergent sparsity trajectory Fig. 3a only shows in
/// steady state.
fn summarize_timesteps(
    flat: &[LayerSample],
    batch: usize,
    timesteps: usize,
    layer_count: usize,
) -> Vec<TimestepReport> {
    let stride = timesteps * layer_count;
    let n = batch.max(1) as f64;
    (0..timesteps)
        .map(|step| {
            let mut cycles = 0.0;
            let mut dma_bytes = 0.0;
            let mut energy_j = 0.0;
            let mut firing_rates = vec![0.0f64; layer_count];
            for sample in 0..batch {
                for layer in 0..layer_count {
                    let s = &flat[sample * stride + step * layer_count + layer];
                    cycles += s.cycles;
                    dma_bytes += s.dma_bytes;
                    energy_j += s.energy_j;
                    firing_rates[layer] += s.input_firing_rate;
                }
            }
            firing_rates.iter_mut().for_each(|r| *r /= n);
            TimestepReport {
                step,
                cycles: cycles / n,
                dma_bytes: dma_bytes / n,
                energy_j: energy_j / n,
                firing_rates,
            }
        })
        .collect()
}

impl TimestepReport {
    fn write_json(&self, out: &mut String) {
        out.push_str(&format!("{{\"step\":{}", self.step));
        out.push_str(",\"cycles\":");
        json_f64(out, self.cycles);
        out.push_str(",\"dma_bytes\":");
        json_f64(out, self.dma_bytes);
        out.push_str(",\"energy_j\":");
        json_f64(out, self.energy_j);
        out.push_str(",\"firing_rates\":[");
        for (i, rate) in self.firing_rates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_f64(out, *rate);
        }
        out.push_str("]}");
    }
}

impl ShardSummary {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"makespan_cycles\":");
        json_f64(out, self.makespan_cycles);
        out.push_str(",\"imbalance\":");
        json_f64(out, self.imbalance);
        out.push_str(",\"batch_speedup\":");
        json_f64(out, self.batch_speedup);
        out.push_str(",\"per_shard\":[");
        for (i, shard) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"shard\":{},\"samples\":{}", shard.shard, shard.samples));
            out.push_str(",\"busy_cycles\":");
            json_f64(out, shard.busy_cycles);
            out.push_str(",\"utilization\":");
            json_f64(out, shard.utilization);
            out.push('}');
        }
        out.push_str("]}");
    }
}

impl LayerReport {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json_string(out, &self.name);
        let fields: [(&str, f64); 12] = [
            ("cycles", self.cycles),
            ("cycles_std", self.cycles_std),
            ("seconds", self.seconds),
            ("fpu_utilization", self.fpu_utilization),
            ("ipc", self.ipc),
            ("input_firing_rate", self.input_firing_rate),
            ("input_spikes", self.input_spikes),
            ("synops", self.synops),
            ("energy_j", self.energy_j),
            ("power_w", self.power_w),
            ("csr_footprint_bytes", self.csr_footprint_bytes),
            ("aer_footprint_bytes", self.aer_footprint_bytes),
        ];
        for (name, value) in fields {
            out.push_str(&format!(",\"{name}\":"));
            json_f64(out, value);
        }
        out.push('}');
    }
}

/// Append a JSON string literal with the escapes JSON requires.
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Append a finite `f64` as JSON (non-finite values become `null`).
fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let formatted = format!("{v}");
        out.push_str(&formatted);
        // `{}` omits the decimal point for integral floats; keep every value
        // unambiguously a float so the JSON round-trips type-stably.
        if !formatted.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, cycles: f64, util: f64, energy: f64) -> LayerReport {
        LayerReport {
            name: name.into(),
            cycles,
            cycles_std: 0.0,
            seconds: cycles / 1e9,
            fpu_utilization: util,
            ipc: 1.0,
            input_firing_rate: 0.2,
            input_spikes: 500.0,
            synops: 1000.0,
            energy_j: energy,
            power_w: energy / (cycles / 1e9),
            csr_footprint_bytes: 100.0,
            aer_footprint_bytes: 300.0,
        }
    }

    fn report(cycles: f64, energy: f64) -> InferenceReport {
        InferenceReport {
            network: "test".into(),
            variant: KernelVariant::Baseline,
            format: FpFormat::Fp16,
            batch: 1,
            layers: vec![layer("a", cycles, 0.1, energy), layer("b", cycles, 0.5, energy)],
            timesteps: None,
            shards: None,
        }
    }

    #[test]
    fn totals_sum_over_layers() {
        let r = report(1000.0, 1e-6);
        assert_eq!(r.total_cycles(), 2000.0);
        assert!((r.total_energy_j() - 2e-6).abs() < 1e-12);
        assert!((r.average_utilization() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_energy_gain_are_relative() {
        let slow = report(10_000.0, 1e-5);
        let fast = report(2_000.0, 4e-6);
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-9);
        assert!((fast.energy_gain_over(&slow) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn layer_lookup_by_name() {
        let r = report(1.0, 1.0);
        assert!(r.layer("a").is_some());
        assert!(r.layer("zzz").is_none());
    }

    #[test]
    fn json_is_deterministic_and_well_formed() {
        let r = report(1000.0, 1e-6);
        let json = r.to_json();
        assert_eq!(json, r.clone().to_json());
        assert!(json.starts_with("{\"network\":\"test\""));
        assert!(json.contains("\"variant\":\"Baseline\""));
        assert!(json.contains("\"batch\":1"));
        assert!(json.contains("\"cycles\":1000.0"));
        assert!(json.contains("\"input_spikes\":500.0"));
        assert_eq!(json.matches("{\"name\":").count(), 2);
        // Balanced braces/brackets (flat sanity check, no parser available).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn shard_summary_renders_and_strips_deterministically() {
        let plain = report(1000.0, 1e-6);
        let mut sharded = plain.clone();
        sharded.shards = Some(ShardSummary {
            shards: vec![
                ShardUtilization { shard: 0, samples: 3, busy_cycles: 3000.0, utilization: 1.0 },
                ShardUtilization {
                    shard: 1,
                    samples: 2,
                    busy_cycles: 2000.0,
                    utilization: 2.0 / 3.0,
                },
            ],
            makespan_cycles: 3000.0,
            imbalance: 1.2,
            batch_speedup: 5.0 / 3.0,
        });
        let json = sharded.to_json();
        assert!(json.contains("\"shards\":{\"makespan_cycles\":3000.0"));
        assert!(json.contains("\"per_shard\":[{\"shard\":0,\"samples\":3"));
        assert!(json.contains("\"imbalance\":1.2"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // Stripping the fleet stats restores the unsharded report exactly.
        assert_eq!(sharded.clone().without_shard_stats(), plain);
        assert_eq!(sharded.without_shard_stats().to_json(), plain.to_json());
        assert!(!plain.to_json().contains("shards"));
    }

    #[test]
    fn timestep_breakdown_renders_only_for_temporal_reports() {
        let plain = report(1000.0, 1e-6);
        assert!(!plain.to_json().contains("timesteps"));

        let mut temporal = plain.clone();
        temporal.timesteps = Some(vec![
            TimestepReport {
                step: 0,
                cycles: 400.0,
                dma_bytes: 128.0,
                energy_j: 4e-7,
                firing_rates: vec![1.0, 0.1],
            },
            TimestepReport {
                step: 1,
                cycles: 600.0,
                dma_bytes: 160.0,
                energy_j: 6e-7,
                firing_rates: vec![1.0, 0.2],
            },
        ]);
        let json = temporal.to_json();
        assert!(json.contains("\"timesteps\":[{\"step\":0,\"cycles\":400.0"));
        assert!(json.contains("\"firing_rates\":[1.0,0.2]"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn json_escapes_strings_and_integral_floats() {
        let mut r = report(2.0, 1.0);
        r.network = "a\"b\\c\nd".into();
        let json = r.to_json();
        assert!(json.contains("\"network\":\"a\\\"b\\\\c\\nd\""));
        // 2.0 formats as "2" via `{}`; the serializer restores the ".0".
        assert!(json.contains("\"cycles\":2.0"));
    }
}
