//! Inference reports: per-layer and end-to-end statistics.

use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use spikestream_kernels::KernelVariant;

/// Statistics of one network layer, averaged over the evaluated batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerReport {
    /// Layer name (e.g. `conv3`).
    pub name: String,
    /// Mean runtime in cycles.
    pub cycles: f64,
    /// Standard deviation of the runtime across the batch.
    pub cycles_std: f64,
    /// Mean runtime in seconds at the cluster clock.
    pub seconds: f64,
    /// Mean FPU utilization (0..=1).
    pub fpu_utilization: f64,
    /// Mean instructions per cycle per core.
    pub ipc: f64,
    /// Mean firing rate of the layer's input.
    pub input_firing_rate: f64,
    /// Mean synaptic operations executed.
    pub synops: f64,
    /// Mean energy in joules.
    pub energy_j: f64,
    /// Mean power in watts.
    pub power_w: f64,
    /// Mean compressed (CSR-derived) ifmap footprint in bytes.
    pub csr_footprint_bytes: f64,
    /// Mean AER ifmap footprint in bytes.
    pub aer_footprint_bytes: f64,
}

/// End-to-end inference report for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceReport {
    /// Network name.
    pub network: String,
    /// Code variant that produced the report.
    pub variant: KernelVariant,
    /// Storage format that produced the report.
    pub format: FpFormat,
    /// Number of batch samples averaged.
    pub batch: usize,
    /// Per-layer statistics in execution order.
    pub layers: Vec<LayerReport>,
}

impl InferenceReport {
    /// Total mean runtime in cycles over all layers.
    pub fn total_cycles(&self) -> f64 {
        self.layers.iter().map(|l| l.cycles).sum()
    }

    /// Total mean runtime in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.layers.iter().map(|l| l.seconds).sum()
    }

    /// Total mean energy in joules.
    pub fn total_energy_j(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_j).sum()
    }

    /// Runtime-weighted average FPU utilization.
    pub fn average_utilization(&self) -> f64 {
        let total: f64 = self.total_cycles();
        if total == 0.0 {
            return 0.0;
        }
        self.layers.iter().map(|l| l.fpu_utilization * l.cycles).sum::<f64>() / total
    }

    /// Average power over the full inference.
    pub fn average_power_w(&self) -> f64 {
        let t = self.total_seconds();
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// End-to-end speedup of this report relative to `other`.
    pub fn speedup_over(&self, other: &InferenceReport) -> f64 {
        other.total_cycles() / self.total_cycles().max(1.0)
    }

    /// End-to-end energy-efficiency gain of this report relative to `other`.
    pub fn energy_gain_over(&self, other: &InferenceReport) -> f64 {
        other.total_energy_j() / self.total_energy_j().max(f64::MIN_POSITIVE)
    }

    /// Look up a layer report by name.
    pub fn layer(&self, name: &str) -> Option<&LayerReport> {
        self.layers.iter().find(|l| l.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer(name: &str, cycles: f64, util: f64, energy: f64) -> LayerReport {
        LayerReport {
            name: name.into(),
            cycles,
            cycles_std: 0.0,
            seconds: cycles / 1e9,
            fpu_utilization: util,
            ipc: 1.0,
            input_firing_rate: 0.2,
            synops: 1000.0,
            energy_j: energy,
            power_w: energy / (cycles / 1e9),
            csr_footprint_bytes: 100.0,
            aer_footprint_bytes: 300.0,
        }
    }

    fn report(cycles: f64, energy: f64) -> InferenceReport {
        InferenceReport {
            network: "test".into(),
            variant: KernelVariant::Baseline,
            format: FpFormat::Fp16,
            batch: 1,
            layers: vec![layer("a", cycles, 0.1, energy), layer("b", cycles, 0.5, energy)],
        }
    }

    #[test]
    fn totals_sum_over_layers() {
        let r = report(1000.0, 1e-6);
        assert_eq!(r.total_cycles(), 2000.0);
        assert!((r.total_energy_j() - 2e-6).abs() < 1e-12);
        assert!((r.average_utilization() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_energy_gain_are_relative() {
        let slow = report(10_000.0, 1e-5);
        let fast = report(2_000.0, 4e-6);
        assert!((fast.speedup_over(&slow) - 5.0).abs() < 1e-9);
        assert!((fast.energy_gain_over(&slow) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn layer_lookup_by_name() {
        let r = report(1.0, 1.0);
        assert!(r.layer("a").is_some());
        assert!(r.layer("zzz").is_none());
    }
}
