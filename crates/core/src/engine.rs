//! The inference engine: model container and compile-once entry point.
//!
//! [`Engine`] binds a network, a firing profile and the hardware and
//! energy models. Since the serving redesign it has exactly one execution
//! entry point: [`Engine::compile`] produces a [`Plan`] (validated config,
//! plan-owned backend, ahead-of-time lowered program cache), and the
//! plan's [`Session`](crate::Session)s serve requests. The historical
//! per-call entry points — [`Engine::run`], [`Engine::run_with_backend`],
//! [`Engine::run_sharded`], [`Engine::run_sequential`] — survive as thin
//! deprecated wrappers over a one-shot session and produce bit-identical
//! reports (the golden-JSON suite in `tests/serving_equivalence.rs` pins
//! that against pre-redesign captures).

use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use snitch_arch::{ClusterConfig, CostModel};
use spikestream_energy::EnergyModel;
use spikestream_ir::CostIntegrator;
use spikestream_kernels::{KernelVariant, LayerExecutor};
use spikestream_snn::{FiringProfile, Network, TemporalEncoding, WorkloadMode};

use crate::backend::{ExecutionBackend, SampleContext};
use crate::plan::{Compiler, Plan};
use crate::report::InferenceReport;
use crate::session::Request;

/// Which timing model the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingModel {
    /// Closed-form layer model (fast; used for full-batch figure runs).
    Analytic,
    /// Trace-driven cycle-level simulation of the kernels (slower; used for
    /// validation and small batches).
    CycleLevel,
}

/// One inference configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Code variant to run.
    pub variant: KernelVariant,
    /// Storage format of weights and activations.
    pub format: FpFormat,
    /// Timing model.
    pub timing: TimingModel,
    /// Number of batch samples to average over (the paper uses 128).
    pub batch: usize,
    /// Seed controlling the synthetic workload.
    pub seed: u64,
    /// How each sample is evaluated: the paper's profile-driven single-shot
    /// path ([`WorkloadMode::Synthetic`]) or the T-timestep temporal
    /// pipeline with real spike propagation and persistent membranes.
    pub mode: WorkloadMode,
}

impl InferenceConfig {
    /// The paper's default evaluation configuration for a given variant and
    /// format: analytic timing over a batch of 128 frames, synthetic
    /// single-shot workloads.
    pub fn paper(variant: KernelVariant, format: FpFormat) -> Self {
        InferenceConfig {
            variant,
            format,
            timing: TimingModel::Analytic,
            batch: 128,
            seed: 0xC1FA,
            mode: WorkloadMode::Synthetic,
        }
    }

    /// The same configuration switched to a `timesteps`-step temporal run.
    pub fn temporal(mut self, timesteps: usize, encoding: TemporalEncoding) -> Self {
        self.mode = WorkloadMode::Temporal { timesteps: timesteps.max(1), encoding };
        self
    }

    /// The same configuration with the temporal step count replaced,
    /// keeping the existing encoding (or direct coding when switching a
    /// synthetic configuration to the temporal pipeline) — the semantics
    /// of the CLI's `--timesteps` flag and of
    /// [`Request::timesteps`](crate::Request::timesteps).
    pub fn temporal_steps(self, timesteps: usize) -> Self {
        let encoding = match self.mode {
            WorkloadMode::Temporal { encoding, .. } => encoding,
            WorkloadMode::Synthetic => TemporalEncoding::Direct,
        };
        self.temporal(timesteps, encoding)
    }

    /// Timesteps one sample evaluates (1 for synthetic runs).
    pub fn timesteps(&self) -> usize {
        self.mode.timesteps()
    }
}

/// Inference engine binding a network, a firing profile and the hardware
/// and energy models.
#[derive(Debug, Clone)]
pub struct Engine {
    network: Network,
    profile: FiringProfile,
    cluster: ClusterConfig,
    cost: CostModel,
    energy: EnergyModel,
    /// Shared cost integrator over `cluster` + `cost`, rebuilt whenever
    /// either model is replaced; bare [`Engine::sample_context`]s borrow it
    /// so even plan-less evaluation never clones the models per sample.
    integrator: CostIntegrator,
}

impl Engine {
    /// Create an engine from a network and firing profile with default
    /// cluster, cost and energy models.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover every layer of the network —
    /// [`FiringProfile::rate`] no longer papers over a short profile with a
    /// silent default, so the mismatch is rejected up front instead of
    /// skewing a whole evaluation.
    pub fn new(network: Network, profile: FiringProfile) -> Self {
        assert!(
            profile.len() >= network.len(),
            "firing profile covers {} layers but network `{}` has {}",
            profile.len(),
            network.name,
            network.len()
        );
        Engine {
            network,
            profile,
            cluster: ClusterConfig::default(),
            cost: CostModel::default(),
            energy: EnergyModel::calibrated(),
            integrator: CostIntegrator::new(ClusterConfig::default(), CostModel::default()),
        }
    }

    /// Engine for the paper's S-VGG11 evaluation.
    pub fn svgg11(seed: u64) -> Self {
        Self::new(Network::svgg11(seed), FiringProfile::paper_svgg11())
    }

    /// The network being evaluated.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The firing profile used for workload generation.
    pub fn profile(&self) -> &FiringProfile {
        &self.profile
    }

    /// The cluster configuration.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Replace the cost model (used by the ablation experiments).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self.integrator = CostIntegrator::new(self.cluster.clone(), self.cost.clone());
        self
    }

    /// Replace the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// A [`Compiler`] seeded with this engine's models — the single
    /// construction path behind every execution entry point (the CLI and
    /// `Scenario` route through the same type).
    pub fn compiler(&self) -> Compiler {
        Compiler::new(self.network.clone(), self.profile.clone())
            .with_cluster(self.cluster.clone())
            .with_cost_model(self.cost.clone())
            .with_energy_model(self.energy.clone())
    }

    /// Compile `config` into a servable [`Plan`]: validation, backend
    /// binding and the ahead-of-time lowering of every layer's stream
    /// program happen here, once — sessions opened on the plan only
    /// interpret cached programs.
    ///
    /// # Panics
    ///
    /// Panics if compilation fails validation; [`Engine::new`] already
    /// guarantees the profile invariant, so this only fires for zero-sized
    /// batches. Use [`Compiler::compile`] for a fallible variant.
    pub fn compile(&self, config: &InferenceConfig) -> Plan {
        self.compiler().compile(*config).expect("engine configuration must compile")
    }

    /// The shared per-sample evaluation context for `config` (outside any
    /// plan: no program cache is attached).
    pub fn sample_context<'a>(&'a self, config: &'a InferenceConfig) -> SampleContext<'a> {
        SampleContext {
            network: &self.network,
            profile: &self.profile,
            cluster: &self.cluster,
            cost: &self.cost,
            energy: &self.energy,
            config,
            programs: None,
            integrator: &self.integrator,
            executor: LayerExecutor::new(config.variant, config.format),
        }
    }

    /// The historical entry points tolerated `batch: 0` by clamping it to
    /// one sample; the strict [`Engine::compile`] rejects it. The wrappers
    /// keep the old behavior so their reports stay bit-identical.
    fn legacy_config(config: &InferenceConfig) -> InferenceConfig {
        InferenceConfig { batch: config.batch.max(1), ..*config }
    }

    /// Run the network under `config` and return the averaged report.
    #[deprecated(
        since = "0.2.0",
        note = "compile once and serve: `engine.compile(config).run()` (or open a Session)"
    )]
    pub fn run(&self, config: &InferenceConfig) -> InferenceReport {
        self.compile(&Self::legacy_config(config)).run()
    }

    /// Run the network through an explicit, caller-borrowed backend.
    #[deprecated(
        since = "0.2.0",
        note = "bind the backend into a plan (`Compiler::with_backend`) or use \
                `Session::infer_with_backend`"
    )]
    pub fn run_with_backend(
        &self,
        backend: &dyn ExecutionBackend,
        config: &InferenceConfig,
    ) -> InferenceReport {
        self.compile(&Self::legacy_config(config))
            .open_session()
            .infer_with_backend(backend, &Request::batch(config.batch))
    }

    /// Run the network on a fleet of `shards` simulated clusters.
    #[deprecated(
        since = "0.2.0",
        note = "serve a sharded request: `session.infer(&Request::batch(n).with_shards(s))`"
    )]
    pub fn run_sharded(
        &self,
        backend: &dyn ExecutionBackend,
        config: &InferenceConfig,
        shards: usize,
    ) -> InferenceReport {
        self.compile(&Self::legacy_config(config))
            .open_session()
            .infer_with_backend(backend, &Request::batch(config.batch).with_shards(shards))
    }

    /// Single-threaded reference run; bit-identical to the parallel paths.
    #[deprecated(
        since = "0.2.0",
        note = "serve a sequential request: `session.infer(&Request::batch(n).sequential())`"
    )]
    pub fn run_sequential(
        &self,
        backend: &dyn ExecutionBackend,
        config: &InferenceConfig,
    ) -> InferenceReport {
        self.compile(&Self::legacy_config(config))
            .open_session()
            .infer_with_backend(backend, &Request::batch(config.batch).sequential())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AnalyticBackend, CycleLevelBackend};
    use crate::session::Request;

    fn analytic(variant: KernelVariant, format: FpFormat) -> InferenceReport {
        let engine = Engine::svgg11(1);
        engine
            .compile(&InferenceConfig {
                variant,
                format,
                timing: TimingModel::Analytic,
                batch: 8,
                seed: 3,
                mode: WorkloadMode::Synthetic,
            })
            .run()
    }

    #[test]
    fn analytic_report_covers_every_layer() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        assert_eq!(r.layers.len(), 8);
        assert!(r.total_cycles() > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert!(r.layers.iter().all(|l| l.fpu_utilization > 0.0 && l.fpu_utilization <= 1.0));
    }

    #[test]
    fn spikestream_beats_baseline_end_to_end() {
        let base = analytic(KernelVariant::Baseline, FpFormat::Fp16);
        let fast = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        let speedup = fast.speedup_over(&base);
        assert!(speedup > 3.0 && speedup < 9.0, "end-to-end speedup {speedup:.2}");
        assert!(fast.average_utilization() > 3.0 * base.average_utilization());
        assert!(fast.energy_gain_over(&base) > 1.5);
    }

    #[test]
    fn fp8_improves_over_fp16() {
        let fp16 = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        let fp8 = analytic(KernelVariant::SpikeStream, FpFormat::Fp8);
        let speedup = fp8.speedup_over(&fp16);
        assert!(speedup > 1.4 && speedup < 2.1, "FP8/FP16 speedup {speedup:.2}");
        assert!(fp8.total_energy_j() < fp16.total_energy_j());
    }

    #[test]
    fn batch_statistics_have_nonzero_spread() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        // Dynamic sparsity across the batch produces per-layer std-devs.
        assert!(r.layers.iter().skip(1).any(|l| l.cycles_std > 0.0));
    }

    #[test]
    fn parallel_session_is_bit_identical_to_sequential() {
        let engine = Engine::svgg11(9);
        let plan = engine.compile(&InferenceConfig {
            variant: KernelVariant::SpikeStream,
            format: FpFormat::Fp16,
            timing: TimingModel::Analytic,
            batch: 32,
            seed: 0xBEEF,
            mode: WorkloadMode::Synthetic,
        });
        let mut session = plan.open_session();
        let parallel = session.infer(&Request::batch(32));
        let sequential = session.infer(&Request::batch(32).sequential());
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.to_json(), sequential.to_json());
    }

    #[test]
    fn explicit_backend_matches_timing_model_dispatch() {
        let engine = Engine::svgg11(2);
        let config = InferenceConfig {
            variant: KernelVariant::Baseline,
            format: FpFormat::Fp16,
            timing: TimingModel::Analytic,
            batch: 4,
            seed: 5,
            mode: WorkloadMode::Synthetic,
        };
        let plan = engine.compile(&config);
        let implicit = plan.run();
        let explicit =
            plan.open_session().infer_with_backend(&AnalyticBackend, &Request::batch(config.batch));
        assert_eq!(implicit, explicit);
    }

    #[test]
    #[should_panic(expected = "firing profile covers 3 layers")]
    fn short_firing_profile_is_rejected_at_engine_construction() {
        let _ = Engine::new(Network::svgg11(1), FiringProfile::uniform(3, 0.2));
    }

    #[test]
    fn temporal_steps_override_keeps_the_encoding() {
        let base = InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16);
        let temporal = base.temporal(4, TemporalEncoding::Rate).temporal_steps(2);
        assert_eq!(
            temporal.mode,
            WorkloadMode::Temporal { timesteps: 2, encoding: TemporalEncoding::Rate }
        );
        let switched = base.temporal_steps(3);
        assert_eq!(
            switched.mode,
            WorkloadMode::Temporal { timesteps: 3, encoding: TemporalEncoding::Direct }
        );
    }

    #[test]
    fn temporal_analytic_run_reports_per_step_breakdowns() {
        let engine = Engine::svgg11(4);
        let config = InferenceConfig {
            batch: 6,
            seed: 0xABC,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        }
        .temporal(4, TemporalEncoding::Direct);
        let plan = engine.compile(&config);
        let mut session = plan.open_session();
        let report = session.infer(&Request::batch(6));
        assert_eq!(report.layers.len(), 8, "layer reports still cover the network");
        let steps = report.timesteps.as_ref().expect("temporal runs carry per-step stats");
        assert_eq!(steps.len(), 4);
        for (t, step) in steps.iter().enumerate() {
            assert_eq!(step.step, t);
            assert!(step.cycles > 0.0);
            assert!(step.dma_bytes > 0.0, "per-step membrane load/store DMA");
            assert_eq!(step.firing_rates.len(), 8);
        }
        // The warm-up ramp: spiking layers fire less at step 0 than at the
        // final step, while the dense encoding layer is step-invariant.
        assert!(steps[0].firing_rates[2] < steps[3].firing_rates[2]);
        assert_eq!(steps[0].firing_rates[0], steps[3].firing_rates[0]);
        // Per-step firing rates appear in the JSON rendering.
        assert!(report.to_json().contains("\"timesteps\":[{\"step\":0"));
        // The parallel fan-out stays bit-identical to the sequential loop.
        let sequential = session.infer(&Request::batch(6).sequential());
        assert_eq!(report.to_json(), sequential.to_json());
    }

    #[test]
    fn temporal_totals_scale_with_the_timestep_count() {
        let engine = Engine::svgg11(4);
        let base = InferenceConfig {
            batch: 2,
            seed: 1,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        };
        let t2 = engine.compile(&base.temporal(2, TemporalEncoding::Direct)).run();
        let t6 = engine.compile(&base.temporal(6, TemporalEncoding::Direct)).run();
        // More steps, more total work — and the per-layer cycles cover the
        // whole T-step inference.
        assert!(t6.total_cycles() > 2.0 * t2.total_cycles());
        assert_eq!(t2.timesteps.as_ref().unwrap().len(), 2);
        assert_eq!(t6.timesteps.as_ref().unwrap().len(), 6);
        // A per-request timestep override serves the same breakdown from
        // one compiled plan.
        let overridden = engine
            .compile(&base.temporal(2, TemporalEncoding::Direct))
            .open_session()
            .infer(&Request::batch(2).with_timesteps(6));
        assert_eq!(overridden.to_json(), t6.to_json());
    }

    #[test]
    fn synthetic_reports_carry_no_timestep_breakdown() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        assert!(r.timesteps.is_none());
        assert!(!r.to_json().contains("timesteps"));
    }

    #[test]
    fn cycle_level_engine_runs_a_small_network() {
        use spikestream_snn::neuron::LifParams;
        use spikestream_snn::tensor::TensorShape;
        use spikestream_snn::{ConvSpec, LinearSpec, NetworkBuilder};

        let lif = LifParams::new(0.5, 0.3);
        let net = NetworkBuilder::new("tiny")
            .conv(
                "conv1",
                ConvSpec {
                    input: TensorShape::new(8, 8, 3),
                    out_channels: 8,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: true,
                },
                lif,
            )
            .conv(
                "conv2",
                ConvSpec {
                    input: TensorShape::new(4, 4, 8),
                    out_channels: 16,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
            .build_with_random_weights(5, 0.1);
        let mut net = net;
        net.layers_mut()[0].encodes_input = true;
        assert!(net.validate().is_ok());

        let engine = Engine::new(net, FiringProfile::uniform(3, 0.25));
        let cfg = |variant| InferenceConfig {
            variant,
            format: FpFormat::Fp16,
            timing: TimingModel::CycleLevel,
            batch: 1,
            seed: 11,
            mode: WorkloadMode::Synthetic,
        };
        let base = engine.compile(&cfg(KernelVariant::Baseline)).run();
        let fast = engine.compile(&cfg(KernelVariant::SpikeStream)).run();
        assert_eq!(base.layers.len(), 3);
        assert!(fast.total_cycles() < base.total_cycles());

        // The cycle-level backend is deterministic through the session path
        // as well.
        let again = engine
            .compile(&cfg(KernelVariant::Baseline))
            .open_session()
            .infer_with_backend(&CycleLevelBackend, &Request::batch(1).sequential());
        assert_eq!(base, again);
    }

    #[test]
    fn analytic_and_cycle_level_agree_on_ordering() {
        // On the full S-VGG11 the cycle-level model is too slow for a test,
        // but both models must at least agree that SpikeStream wins and by
        // a broadly similar factor on a small layer-2-like network.
        use spikestream_snn::neuron::LifParams;
        use spikestream_snn::tensor::TensorShape;
        use spikestream_snn::{ConvSpec, NetworkBuilder};

        let lif = LifParams::new(0.5, 0.3);
        let mut net = NetworkBuilder::new("layer2-like")
            .conv(
                "conv",
                ConvSpec {
                    input: TensorShape::new(10, 10, 64),
                    out_channels: 32,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .build_with_random_weights(2, 0.05);
        // Not an encoding layer: it consumes spikes.
        net.layers_mut()[0].encodes_input = false;
        let engine = Engine::new(net, FiringProfile::uniform(1, 0.3));

        let run = |timing, variant| {
            engine
                .compile(&InferenceConfig {
                    variant,
                    format: FpFormat::Fp16,
                    timing,
                    batch: 1,
                    seed: 2,
                    mode: WorkloadMode::Synthetic,
                })
                .run()
                .total_cycles()
        };
        // The workload generator only produces spike inputs for layers >= 1,
        // so prepend a dummy? Instead: cycle-level path requires layer 0 to
        // encode input. Use analytic for both variants here and cycle-level
        // indirectly through the kernel tests.
        let a_base = run(TimingModel::Analytic, KernelVariant::Baseline);
        let a_fast = run(TimingModel::Analytic, KernelVariant::SpikeStream);
        assert!(a_fast < a_base);
        let ratio = a_base / a_fast;
        assert!(ratio > 3.0 && ratio < 9.0, "analytic speedup {ratio:.2}");
    }
}
