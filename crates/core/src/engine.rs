//! The inference engine: runs a network on the modelled cluster.
//!
//! The engine is backend-agnostic: per-sample evaluation lives behind the
//! [`ExecutionBackend`] trait (see [`crate::backend`]), and [`Engine::run`]
//! fans the batch out over worker threads. Every sample derives its
//! randomness from `(config.seed, sample)` alone, so the parallel result
//! is bit-identical to a sequential run — [`Engine::run_sequential`] exists
//! to assert exactly that.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use snitch_arch::{ClusterConfig, CostModel};
use spikestream_energy::EnergyModel;
use spikestream_kernels::KernelVariant;
use spikestream_snn::{FiringProfile, Network, TemporalEncoding, WorkloadMode};

use crate::backend::{self, ExecutionBackend, LayerSample, SampleContext};
use crate::report::{InferenceReport, LayerReport, TimestepReport};
use crate::sharding::BatchScheduler;

/// Which timing model the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingModel {
    /// Closed-form layer model (fast; used for full-batch figure runs).
    Analytic,
    /// Trace-driven cycle-level simulation of the kernels (slower; used for
    /// validation and small batches).
    CycleLevel,
}

/// One inference configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Code variant to run.
    pub variant: KernelVariant,
    /// Storage format of weights and activations.
    pub format: FpFormat,
    /// Timing model.
    pub timing: TimingModel,
    /// Number of batch samples to average over (the paper uses 128).
    pub batch: usize,
    /// Seed controlling the synthetic workload.
    pub seed: u64,
    /// How each sample is evaluated: the paper's profile-driven single-shot
    /// path ([`WorkloadMode::Synthetic`]) or the T-timestep temporal
    /// pipeline with real spike propagation and persistent membranes.
    pub mode: WorkloadMode,
}

impl InferenceConfig {
    /// The paper's default evaluation configuration for a given variant and
    /// format: analytic timing over a batch of 128 frames, synthetic
    /// single-shot workloads.
    pub fn paper(variant: KernelVariant, format: FpFormat) -> Self {
        InferenceConfig {
            variant,
            format,
            timing: TimingModel::Analytic,
            batch: 128,
            seed: 0xC1FA,
            mode: WorkloadMode::Synthetic,
        }
    }

    /// The same configuration switched to a `timesteps`-step temporal run.
    pub fn temporal(mut self, timesteps: usize, encoding: TemporalEncoding) -> Self {
        self.mode = WorkloadMode::Temporal { timesteps: timesteps.max(1), encoding };
        self
    }

    /// Timesteps one sample evaluates (1 for synthetic runs).
    pub fn timesteps(&self) -> usize {
        self.mode.timesteps()
    }
}

/// Inference engine binding a network, a firing profile and the hardware
/// and energy models.
#[derive(Debug, Clone)]
pub struct Engine {
    network: Network,
    profile: FiringProfile,
    cluster: ClusterConfig,
    cost: CostModel,
    energy: EnergyModel,
}

impl Engine {
    /// Create an engine from a network and firing profile with default
    /// cluster, cost and energy models.
    ///
    /// # Panics
    ///
    /// Panics if the profile does not cover every layer of the network —
    /// [`FiringProfile::rate`] no longer papers over a short profile with a
    /// silent default, so the mismatch is rejected up front instead of
    /// skewing a whole evaluation.
    pub fn new(network: Network, profile: FiringProfile) -> Self {
        assert!(
            profile.len() >= network.len(),
            "firing profile covers {} layers but network `{}` has {}",
            profile.len(),
            network.name,
            network.len()
        );
        Engine {
            network,
            profile,
            cluster: ClusterConfig::default(),
            cost: CostModel::default(),
            energy: EnergyModel::calibrated(),
        }
    }

    /// Engine for the paper's S-VGG11 evaluation.
    pub fn svgg11(seed: u64) -> Self {
        Self::new(Network::svgg11(seed), FiringProfile::paper_svgg11())
    }

    /// The network being evaluated.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The firing profile used for workload generation.
    pub fn profile(&self) -> &FiringProfile {
        &self.profile
    }

    /// The cluster configuration.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Replace the cost model (used by the ablation experiments).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The shared per-sample evaluation context for `config`.
    pub fn sample_context<'a>(&'a self, config: &'a InferenceConfig) -> SampleContext<'a> {
        SampleContext {
            network: &self.network,
            profile: &self.profile,
            cluster: &self.cluster,
            cost: &self.cost,
            energy: &self.energy,
            config,
        }
    }

    /// Run the network under `config` and return the averaged report.
    ///
    /// Batch samples execute in parallel; the built-in backend matching
    /// `config.timing` evaluates each sample.
    pub fn run(&self, config: &InferenceConfig) -> InferenceReport {
        self.run_with_backend(backend::for_timing(config.timing), config)
    }

    /// Work units one batch sample contributes to the flat result buffer:
    /// one [`LayerSample`] per layer per timestep. Synthetic runs evaluate
    /// a single (synthetic) timestep; temporal runs evaluate `T` real ones.
    fn units_per_sample(&self, config: &InferenceConfig) -> usize {
        self.network.len() * config.timesteps()
    }

    /// Run the network through an explicit [`ExecutionBackend`], fanning
    /// batch samples out over worker threads.
    ///
    /// Samples are independently seeded, so the report is bit-identical to
    /// [`Engine::run_sequential`] with the same backend and config. In
    /// temporal mode a sample's timesteps stay together on one worker (the
    /// membrane state lives in that worker's scratch), so parallelism is
    /// across samples only — exactly like the sequential reference.
    pub fn run_with_backend(
        &self,
        backend: &dyn ExecutionBackend,
        config: &InferenceConfig,
    ) -> InferenceReport {
        let ctx = self.sample_context(config);
        let batch = config.batch.max(1);
        let per_sample: Vec<Vec<LayerSample>> =
            (0..batch).into_par_iter().map(|sample| backend.run_sample(&ctx, sample)).collect();
        let flat: Vec<LayerSample> = per_sample.into_iter().flatten().collect();
        self.summarize_batch(&flat, config, batch)
    }

    /// Run the network under `config` on a fleet of `shards` simulated
    /// clusters through the work-stealing [`BatchScheduler`].
    ///
    /// The aggregate layer statistics are bit-identical to
    /// [`Engine::run_sequential`] with the same backend and config — only
    /// the [`shards`](InferenceReport::shards) fleet statistics
    /// (utilization, imbalance, makespan) are added on top.
    pub fn run_sharded(
        &self,
        backend: &dyn ExecutionBackend,
        config: &InferenceConfig,
        shards: usize,
    ) -> InferenceReport {
        let ctx = self.sample_context(config);
        let batch = config.batch.max(1);
        let sharded =
            BatchScheduler::new(shards).run(backend, &ctx, batch, self.units_per_sample(config));
        let mut report = self.summarize_batch(sharded.samples(), config, batch);
        report.shards = Some(sharded.summary());
        report
    }

    /// Single-threaded reference of [`Engine::run_with_backend`]; exists so
    /// tests can assert the parallel and sharded paths are bit-identical.
    pub fn run_sequential(
        &self,
        backend: &dyn ExecutionBackend,
        config: &InferenceConfig,
    ) -> InferenceReport {
        let ctx = self.sample_context(config);
        let batch = config.batch.max(1);
        let mut flat: Vec<LayerSample> = Vec::with_capacity(batch * self.units_per_sample(config));
        for sample in 0..batch {
            backend.run_sample_into(&ctx, sample, &mut flat);
        }
        self.summarize_batch(&flat, config, batch)
    }

    /// Average per-sample measurements into the final report. `flat` holds
    /// sample-major measurements; within one sample the layout is
    /// step-major (timestep `t`, layer `l` at `t * layer_count + l` — one
    /// step for synthetic runs). This is the layout shared by the
    /// sequential loop, the parallel fan-out and the sharded scheduler.
    ///
    /// Synthetic runs take the historical path untouched, so their reports
    /// stay bit-identical. Temporal runs first fold each sample's `T x L`
    /// block into per-layer totals (cycles/energy/spikes/synops summed over
    /// steps, rates and footprints averaged, utilization/IPC cycle-weighted)
    /// and additionally derive the per-timestep breakdown.
    fn summarize_batch(
        &self,
        flat: &[LayerSample],
        config: &InferenceConfig,
        batch: usize,
    ) -> InferenceReport {
        let layer_count = self.network.len();
        let timesteps = config.timesteps();
        let stride = self.units_per_sample(config);
        assert_eq!(
            flat.len(),
            batch * stride,
            "backend must return exactly one LayerSample per layer per timestep per sample"
        );

        let (per_layer, timestep_reports): (std::borrow::Cow<'_, [LayerSample]>, _) =
            if config.mode.is_temporal() {
                let folded = fold_temporal_samples(flat, batch, timesteps, layer_count);
                let steps = summarize_timesteps(flat, batch, timesteps, layer_count);
                (folded.into(), Some(steps))
            } else {
                // The synthetic path stays zero-copy: one step per sample
                // means the flat buffer already is the per-layer view.
                (flat.into(), None)
            };

        let layers = self
            .network
            .layers()
            .iter()
            .enumerate()
            .map(|(idx, layer)| {
                let samples: Vec<LayerSample> =
                    per_layer[idx..].iter().step_by(layer_count).copied().collect();
                self.summarize(layer.name.clone(), &samples)
            })
            .collect();

        InferenceReport {
            network: self.network.name.clone(),
            variant: config.variant,
            format: config.format,
            batch,
            layers,
            timesteps: timestep_reports,
            shards: None,
        }
    }

    fn summarize(&self, name: String, samples: &[LayerSample]) -> LayerReport {
        let n = samples.len().max(1) as f64;
        let mean = |f: fn(&LayerSample) -> f64| samples.iter().map(f).sum::<f64>() / n;
        let cycles_mean = mean(|s| s.cycles);
        let cycles_var = samples.iter().map(|s| (s.cycles - cycles_mean).powi(2)).sum::<f64>() / n;
        let seconds = cycles_mean / self.cluster.clock_hz;
        let energy = mean(|s| s.energy_j);
        LayerReport {
            name,
            cycles: cycles_mean,
            cycles_std: cycles_var.sqrt(),
            seconds,
            fpu_utilization: mean(|s| s.fpu_utilization),
            ipc: mean(|s| s.ipc),
            input_firing_rate: mean(|s| s.input_firing_rate),
            input_spikes: mean(|s| s.input_spikes),
            synops: mean(|s| s.synops),
            energy_j: energy,
            power_w: if seconds > 0.0 { energy / seconds } else { 0.0 },
            csr_footprint_bytes: mean(|s| s.csr_footprint_bytes),
            aer_footprint_bytes: mean(|s| s.aer_footprint_bytes),
        }
    }
}

/// Fold each sample's `T x L` temporal block into one [`LayerSample`] per
/// layer: extensive quantities (cycles, energy, spikes, synops, DMA) sum
/// over the steps, rates and footprints average, and utilization/IPC are
/// cycle-weighted means — so a layer's folded sample describes the whole
/// T-step inference of that sample.
fn fold_temporal_samples(
    flat: &[LayerSample],
    batch: usize,
    timesteps: usize,
    layer_count: usize,
) -> Vec<LayerSample> {
    let stride = timesteps * layer_count;
    let mut folded = Vec::with_capacity(batch * layer_count);
    for sample in 0..batch {
        for layer in 0..layer_count {
            let mut acc = LayerSample::default();
            for step in 0..timesteps {
                let s = &flat[sample * stride + step * layer_count + layer];
                acc.cycles += s.cycles;
                acc.energy_j += s.energy_j;
                acc.input_spikes += s.input_spikes;
                acc.synops += s.synops;
                acc.dma_bytes += s.dma_bytes;
                acc.fpu_utilization += s.fpu_utilization * s.cycles;
                acc.ipc += s.ipc * s.cycles;
                acc.input_firing_rate += s.input_firing_rate;
                acc.csr_footprint_bytes += s.csr_footprint_bytes;
                acc.aer_footprint_bytes += s.aer_footprint_bytes;
            }
            let t = timesteps as f64;
            if acc.cycles > 0.0 {
                acc.fpu_utilization /= acc.cycles;
                acc.ipc /= acc.cycles;
            }
            acc.input_firing_rate /= t;
            acc.csr_footprint_bytes /= t;
            acc.aer_footprint_bytes /= t;
            folded.push(acc);
        }
    }
    folded
}

/// Batch-averaged per-timestep breakdown of a temporal run: for every step,
/// the total cycles and DMA bytes of that step plus the per-layer input
/// firing rates — the emergent sparsity trajectory Fig. 3a only shows in
/// steady state.
fn summarize_timesteps(
    flat: &[LayerSample],
    batch: usize,
    timesteps: usize,
    layer_count: usize,
) -> Vec<TimestepReport> {
    let stride = timesteps * layer_count;
    let n = batch.max(1) as f64;
    (0..timesteps)
        .map(|step| {
            let mut cycles = 0.0;
            let mut dma_bytes = 0.0;
            let mut energy_j = 0.0;
            let mut firing_rates = vec![0.0f64; layer_count];
            for sample in 0..batch {
                for layer in 0..layer_count {
                    let s = &flat[sample * stride + step * layer_count + layer];
                    cycles += s.cycles;
                    dma_bytes += s.dma_bytes;
                    energy_j += s.energy_j;
                    firing_rates[layer] += s.input_firing_rate;
                }
            }
            firing_rates.iter_mut().for_each(|r| *r /= n);
            TimestepReport {
                step,
                cycles: cycles / n,
                dma_bytes: dma_bytes / n,
                energy_j: energy_j / n,
                firing_rates,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{AnalyticBackend, CycleLevelBackend};

    fn analytic(variant: KernelVariant, format: FpFormat) -> InferenceReport {
        let engine = Engine::svgg11(1);
        engine.run(&InferenceConfig {
            variant,
            format,
            timing: TimingModel::Analytic,
            batch: 8,
            seed: 3,
            mode: WorkloadMode::Synthetic,
        })
    }

    #[test]
    fn analytic_report_covers_every_layer() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        assert_eq!(r.layers.len(), 8);
        assert!(r.total_cycles() > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert!(r.layers.iter().all(|l| l.fpu_utilization > 0.0 && l.fpu_utilization <= 1.0));
    }

    #[test]
    fn spikestream_beats_baseline_end_to_end() {
        let base = analytic(KernelVariant::Baseline, FpFormat::Fp16);
        let fast = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        let speedup = fast.speedup_over(&base);
        assert!(speedup > 3.0 && speedup < 9.0, "end-to-end speedup {speedup:.2}");
        assert!(fast.average_utilization() > 3.0 * base.average_utilization());
        assert!(fast.energy_gain_over(&base) > 1.5);
    }

    #[test]
    fn fp8_improves_over_fp16() {
        let fp16 = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        let fp8 = analytic(KernelVariant::SpikeStream, FpFormat::Fp8);
        let speedup = fp8.speedup_over(&fp16);
        assert!(speedup > 1.4 && speedup < 2.1, "FP8/FP16 speedup {speedup:.2}");
        assert!(fp8.total_energy_j() < fp16.total_energy_j());
    }

    #[test]
    fn batch_statistics_have_nonzero_spread() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        // Dynamic sparsity across the batch produces per-layer std-devs.
        assert!(r.layers.iter().skip(1).any(|l| l.cycles_std > 0.0));
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let engine = Engine::svgg11(9);
        let config = InferenceConfig {
            variant: KernelVariant::SpikeStream,
            format: FpFormat::Fp16,
            timing: TimingModel::Analytic,
            batch: 32,
            seed: 0xBEEF,
            mode: WorkloadMode::Synthetic,
        };
        let parallel = engine.run(&config);
        let sequential = engine.run_sequential(&AnalyticBackend, &config);
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.to_json(), sequential.to_json());
    }

    #[test]
    fn explicit_backend_matches_timing_model_dispatch() {
        let engine = Engine::svgg11(2);
        let config = InferenceConfig {
            variant: KernelVariant::Baseline,
            format: FpFormat::Fp16,
            timing: TimingModel::Analytic,
            batch: 4,
            seed: 5,
            mode: WorkloadMode::Synthetic,
        };
        assert_eq!(engine.run(&config), engine.run_with_backend(&AnalyticBackend, &config));
    }

    #[test]
    #[should_panic(expected = "firing profile covers 3 layers")]
    fn short_firing_profile_is_rejected_at_engine_construction() {
        let _ = Engine::new(Network::svgg11(1), FiringProfile::uniform(3, 0.2));
    }

    #[test]
    fn temporal_analytic_run_reports_per_step_breakdowns() {
        let engine = Engine::svgg11(4);
        let config = InferenceConfig {
            batch: 6,
            seed: 0xABC,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        }
        .temporal(4, TemporalEncoding::Direct);
        let report = engine.run(&config);
        assert_eq!(report.layers.len(), 8, "layer reports still cover the network");
        let steps = report.timesteps.as_ref().expect("temporal runs carry per-step stats");
        assert_eq!(steps.len(), 4);
        for (t, step) in steps.iter().enumerate() {
            assert_eq!(step.step, t);
            assert!(step.cycles > 0.0);
            assert!(step.dma_bytes > 0.0, "per-step membrane load/store DMA");
            assert_eq!(step.firing_rates.len(), 8);
        }
        // The warm-up ramp: spiking layers fire less at step 0 than at the
        // final step, while the dense encoding layer is step-invariant.
        assert!(steps[0].firing_rates[2] < steps[3].firing_rates[2]);
        assert_eq!(steps[0].firing_rates[0], steps[3].firing_rates[0]);
        // Per-step firing rates appear in the JSON rendering.
        assert!(report.to_json().contains("\"timesteps\":[{\"step\":0"));
        // The parallel fan-out stays bit-identical to the sequential loop.
        let sequential = engine.run_sequential(&AnalyticBackend, &config);
        assert_eq!(report.to_json(), sequential.to_json());
    }

    #[test]
    fn temporal_totals_scale_with_the_timestep_count() {
        let engine = Engine::svgg11(4);
        let base = InferenceConfig {
            batch: 2,
            seed: 1,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        };
        let t2 = engine.run(&base.temporal(2, TemporalEncoding::Direct));
        let t6 = engine.run(&base.temporal(6, TemporalEncoding::Direct));
        // More steps, more total work — and the per-layer cycles cover the
        // whole T-step inference.
        assert!(t6.total_cycles() > 2.0 * t2.total_cycles());
        assert_eq!(t2.timesteps.as_ref().unwrap().len(), 2);
        assert_eq!(t6.timesteps.as_ref().unwrap().len(), 6);
    }

    #[test]
    fn synthetic_reports_carry_no_timestep_breakdown() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        assert!(r.timesteps.is_none());
        assert!(!r.to_json().contains("timesteps"));
    }

    #[test]
    fn cycle_level_engine_runs_a_small_network() {
        use spikestream_snn::neuron::LifParams;
        use spikestream_snn::tensor::TensorShape;
        use spikestream_snn::{ConvSpec, LinearSpec, NetworkBuilder};

        let lif = LifParams::new(0.5, 0.3);
        let net = NetworkBuilder::new("tiny")
            .conv(
                "conv1",
                ConvSpec {
                    input: TensorShape::new(8, 8, 3),
                    out_channels: 8,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: true,
                },
                lif,
            )
            .conv(
                "conv2",
                ConvSpec {
                    input: TensorShape::new(4, 4, 8),
                    out_channels: 16,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
            .build_with_random_weights(5, 0.1);
        let mut net = net;
        net.layers_mut()[0].encodes_input = true;
        assert!(net.validate().is_ok());

        let engine = Engine::new(net, FiringProfile::uniform(3, 0.25));
        let cfg = |variant| InferenceConfig {
            variant,
            format: FpFormat::Fp16,
            timing: TimingModel::CycleLevel,
            batch: 1,
            seed: 11,
            mode: WorkloadMode::Synthetic,
        };
        let base = engine.run(&cfg(KernelVariant::Baseline));
        let fast = engine.run(&cfg(KernelVariant::SpikeStream));
        assert_eq!(base.layers.len(), 3);
        assert!(fast.total_cycles() < base.total_cycles());

        // The cycle-level backend is deterministic through the parallel path
        // as well.
        let again = engine.run_sequential(&CycleLevelBackend, &cfg(KernelVariant::Baseline));
        assert_eq!(base, again);
    }

    #[test]
    fn analytic_and_cycle_level_agree_on_ordering() {
        // On the full S-VGG11 the cycle-level model is too slow for a test,
        // but both models must at least agree that SpikeStream wins and by
        // a broadly similar factor on a small layer-2-like network.
        use spikestream_snn::neuron::LifParams;
        use spikestream_snn::tensor::TensorShape;
        use spikestream_snn::{ConvSpec, NetworkBuilder};

        let lif = LifParams::new(0.5, 0.3);
        let mut net = NetworkBuilder::new("layer2-like")
            .conv(
                "conv",
                ConvSpec {
                    input: TensorShape::new(10, 10, 64),
                    out_channels: 32,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .build_with_random_weights(2, 0.05);
        // Not an encoding layer: it consumes spikes.
        net.layers_mut()[0].encodes_input = false;
        let engine = Engine::new(net, FiringProfile::uniform(1, 0.3));

        let run = |timing, variant| {
            engine
                .run(&InferenceConfig {
                    variant,
                    format: FpFormat::Fp16,
                    timing,
                    batch: 1,
                    seed: 2,
                    mode: WorkloadMode::Synthetic,
                })
                .total_cycles()
        };
        // The workload generator only produces spike inputs for layers >= 1,
        // so prepend a dummy? Instead: cycle-level path requires layer 0 to
        // encode input. Use analytic for both variants here and cycle-level
        // indirectly through the kernel tests.
        let a_base = run(TimingModel::Analytic, KernelVariant::Baseline);
        let a_fast = run(TimingModel::Analytic, KernelVariant::SpikeStream);
        assert!(a_fast < a_base);
        let ratio = a_base / a_fast;
        assert!(ratio > 3.0 && ratio < 9.0, "analytic speedup {ratio:.2}");
    }
}
