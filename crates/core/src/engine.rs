//! The inference engine: runs a network on the modelled cluster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use snitch_arch::{ClusterConfig, CostModel};
use snitch_sim::ClusterModel;
use spikestream_energy::{Activity, EnergyModel};
use spikestream_kernels::{
    AnalyticLayerModel, ConvKernel, DenseEncodingKernel, FcKernel, KernelVariant, LayerTiming,
};
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::{
    AerEvent, CompressedFcInput, CompressedIfmap, FiringProfile, LayerKind, LifState, Network,
    WorkloadGenerator,
};

use crate::report::{InferenceReport, LayerReport};

/// Which timing model the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimingModel {
    /// Closed-form layer model (fast; used for full-batch figure runs).
    Analytic,
    /// Trace-driven cycle-level simulation of the kernels (slower; used for
    /// validation and small batches).
    CycleLevel,
}

/// One inference configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceConfig {
    /// Code variant to run.
    pub variant: KernelVariant,
    /// Storage format of weights and activations.
    pub format: FpFormat,
    /// Timing model.
    pub timing: TimingModel,
    /// Number of batch samples to average over (the paper uses 128).
    pub batch: usize,
    /// Seed controlling the synthetic workload.
    pub seed: u64,
}

impl InferenceConfig {
    /// The paper's default evaluation configuration for a given variant and
    /// format: analytic timing over a batch of 128 frames.
    pub fn paper(variant: KernelVariant, format: FpFormat) -> Self {
        InferenceConfig { variant, format, timing: TimingModel::Analytic, batch: 128, seed: 0xC1FA }
    }
}

/// Inference engine binding a network, a firing profile and the hardware
/// and energy models.
#[derive(Debug, Clone)]
pub struct Engine {
    network: Network,
    profile: FiringProfile,
    cluster: ClusterConfig,
    cost: CostModel,
    energy: EnergyModel,
}

impl Engine {
    /// Create an engine from a network and firing profile with default
    /// cluster, cost and energy models.
    pub fn new(network: Network, profile: FiringProfile) -> Self {
        Engine {
            network,
            profile,
            cluster: ClusterConfig::default(),
            cost: CostModel::default(),
            energy: EnergyModel::calibrated(),
        }
    }

    /// Engine for the paper's S-VGG11 evaluation.
    pub fn svgg11(seed: u64) -> Self {
        Self::new(Network::svgg11(seed), FiringProfile::paper_svgg11())
    }

    /// The network being evaluated.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The firing profile used for workload generation.
    pub fn profile(&self) -> &FiringProfile {
        &self.profile
    }

    /// The cluster configuration.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// Replace the cost model (used by the ablation experiments).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Run the network under `config` and return the averaged report.
    pub fn run(&self, config: &InferenceConfig) -> InferenceReport {
        let batch = config.batch.max(1);
        let mut accum: Vec<Vec<LayerSample>> = vec![Vec::new(); self.network.len()];
        for sample in 0..batch {
            let samples = match config.timing {
                TimingModel::Analytic => self.run_analytic_sample(config, sample),
                TimingModel::CycleLevel => self.run_cycle_sample(config, sample),
            };
            for (i, s) in samples.into_iter().enumerate() {
                accum[i].push(s);
            }
        }

        let layers = self
            .network
            .layers()
            .iter()
            .zip(accum.iter())
            .map(|(layer, samples)| self.summarize(layer.name.clone(), samples, config))
            .collect();

        InferenceReport {
            network: self.network.name.clone(),
            variant: config.variant,
            format: config.format,
            batch,
            layers,
        }
    }

    /// Jittered firing rate of layer `idx` for a batch sample.
    fn sample_rate(&self, idx: usize, seed: u64, sample: usize) -> f64 {
        let base = self.profile.rate(idx);
        if idx == 0 {
            return base;
        }
        let mut rng =
            StdRng::seed_from_u64(seed ^ ((sample as u64) << 20) ^ ((idx as u64) << 4));
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (base * (1.0 + self.profile.relative_std * gauss)).clamp(0.0, 1.0)
    }

    fn run_analytic_sample(&self, config: &InferenceConfig, sample: usize) -> Vec<LayerSample> {
        let model = AnalyticLayerModel::new(self.cluster.clone(), self.cost.clone());
        let n = self.network.len();
        let mut out = Vec::with_capacity(n);
        for (idx, layer) in self.network.layers().iter().enumerate() {
            let input_rate = self.sample_rate(idx, config.seed, sample);
            let output_rate = self.sample_rate((idx + 1).min(n - 1), config.seed, sample);
            let timing = model.layer(
                &layer.kind,
                layer.encodes_input,
                config.variant,
                config.format,
                input_rate,
                output_rate,
            );
            out.push(self.sample_from_timing(&layer.kind, idx, input_rate, &timing, config));
        }
        out
    }

    fn sample_from_timing(
        &self,
        kind: &LayerKind,
        idx: usize,
        input_rate: f64,
        timing: &LayerTiming,
        config: &InferenceConfig,
    ) -> LayerSample {
        let cores = self.cluster.worker_cores as u64;
        let activity = Activity {
            cycles: timing.cycles,
            int_instrs: timing.int_instrs * cores,
            flops: timing.flops,
            dma_bytes: timing.dma_bytes_in + timing.dma_bytes_out,
            format: config.format,
        };
        let energy_j = self.energy.energy_j(&activity);
        let (csr, aer) = self.analytic_footprints(kind, idx, input_rate);
        LayerSample {
            cycles: timing.cycles as f64,
            fpu_utilization: timing.fpu_utilization,
            ipc: timing.ipc,
            input_firing_rate: input_rate,
            synops: timing.synops as f64,
            energy_j,
            csr_footprint_bytes: csr,
            aer_footprint_bytes: aer,
        }
    }

    fn analytic_footprints(&self, kind: &LayerKind, idx: usize, rate: f64) -> (f64, f64) {
        let rate = if idx == 0 { 1.0 } else { rate };
        match kind {
            LayerKind::Conv(spec) => {
                let padded = spec.padded_input();
                let spikes = padded.len() as f64 * rate;
                let csr =
                    spikes * INDEX_BYTES as f64 + ((padded.h * padded.w + 1) * INDEX_BYTES) as f64;
                let aer = spikes * AerEvent::BYTES as f64;
                (csr, aer)
            }
            LayerKind::Linear(spec) => {
                let spikes = spec.in_features as f64 * rate;
                (spikes * INDEX_BYTES as f64 + 4.0, spikes * AerEvent::BYTES as f64)
            }
        }
    }

    fn run_cycle_sample(&self, config: &InferenceConfig, sample: usize) -> Vec<LayerSample> {
        let generator = WorkloadGenerator::new(self.profile.clone(), config.seed);
        let workload = generator.generate(&self.network, sample);
        let mut out = Vec::with_capacity(self.network.len());

        for (idx, layer) in self.network.layers().iter().enumerate() {
            let mut cluster = ClusterModel::new(self.cluster.clone(), self.cost.clone());
            let (stats, synops, rate, csr, aer) = match &layer.kind {
                LayerKind::Conv(spec) => {
                    let mut state = LifState::new(spec.conv_output().len());
                    if layer.encodes_input {
                        let kernel = DenseEncodingKernel::new(config.variant, config.format);
                        kernel.run(&mut cluster, layer, &workload.image, &mut state);
                        let stats = cluster.finish_phase(&layer.name);
                        let synops = spec.dense_synops() as f64;
                        let padded = spec.padded_input();
                        (stats, synops, 1.0, (padded.len() * 4) as f64, (padded.len() * 4) as f64)
                    } else {
                        let spikes = workload.spikes_for_layer(idx);
                        let compressed = CompressedIfmap::from_spike_map(spikes);
                        let kernel = ConvKernel::new(config.variant, config.format);
                        kernel.run(&mut cluster, layer, &compressed, &mut state);
                        let stats = cluster.finish_phase(&layer.name);
                        let rate = compressed.firing_rate();
                        let synops = spec.dense_synops() as f64 * rate;
                        let csr = compressed.footprint_bytes() as f64;
                        let aer = compressed.spike_count() as f64 * AerEvent::BYTES as f64;
                        (stats, synops, rate, csr, aer)
                    }
                }
                LayerKind::Linear(spec) => {
                    let spikes = workload.spikes_for_layer(idx);
                    let flat: Vec<bool> = spikes.data().to_vec();
                    let compressed = CompressedFcInput::from_spikes(&flat);
                    let mut state = LifState::new(spec.out_features);
                    let kernel = FcKernel::new(config.variant, config.format);
                    kernel.run(&mut cluster, layer, &compressed, &mut state);
                    let stats = cluster.finish_phase(&layer.name);
                    let rate = compressed.spike_count() as f64 / spec.in_features as f64;
                    let synops = spec.dense_synops() as f64 * rate;
                    let csr = compressed.footprint_bytes() as f64;
                    let aer = compressed.spike_count() as f64 * AerEvent::BYTES as f64;
                    (stats, synops, rate, csr, aer)
                }
            };

            let activity = Activity {
                cycles: stats.compute_cycles.max(1),
                int_instrs: stats.totals.int_instrs,
                flops: stats.totals.flops,
                dma_bytes: stats.dma_bytes_in + stats.dma_bytes_out,
                format: config.format,
            };
            out.push(LayerSample {
                cycles: stats.compute_cycles.max(1) as f64,
                fpu_utilization: stats.fpu_utilization,
                ipc: stats.ipc,
                input_firing_rate: rate,
                synops,
                energy_j: self.energy.energy_j(&activity),
                csr_footprint_bytes: csr,
                aer_footprint_bytes: aer,
            });
        }
        out
    }

    fn summarize(
        &self,
        name: String,
        samples: &[LayerSample],
        _config: &InferenceConfig,
    ) -> LayerReport {
        let n = samples.len().max(1) as f64;
        let mean = |f: fn(&LayerSample) -> f64| samples.iter().map(f).sum::<f64>() / n;
        let cycles_mean = mean(|s| s.cycles);
        let cycles_var =
            samples.iter().map(|s| (s.cycles - cycles_mean).powi(2)).sum::<f64>() / n;
        let seconds = cycles_mean / self.cluster.clock_hz;
        let energy = mean(|s| s.energy_j);
        LayerReport {
            name,
            cycles: cycles_mean,
            cycles_std: cycles_var.sqrt(),
            seconds,
            fpu_utilization: mean(|s| s.fpu_utilization),
            ipc: mean(|s| s.ipc),
            input_firing_rate: mean(|s| s.input_firing_rate),
            synops: mean(|s| s.synops),
            energy_j: energy,
            power_w: if seconds > 0.0 { energy / seconds } else { 0.0 },
            csr_footprint_bytes: mean(|s| s.csr_footprint_bytes),
            aer_footprint_bytes: mean(|s| s.aer_footprint_bytes),
        }
    }
}

/// Per-sample, per-layer measurement before averaging.
#[derive(Debug, Clone, Copy)]
struct LayerSample {
    cycles: f64,
    fpu_utilization: f64,
    ipc: f64,
    input_firing_rate: f64,
    synops: f64,
    energy_j: f64,
    csr_footprint_bytes: f64,
    aer_footprint_bytes: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytic(variant: KernelVariant, format: FpFormat) -> InferenceReport {
        let engine = Engine::svgg11(1);
        engine.run(&InferenceConfig { variant, format, timing: TimingModel::Analytic, batch: 8, seed: 3 })
    }

    #[test]
    fn analytic_report_covers_every_layer() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        assert_eq!(r.layers.len(), 8);
        assert!(r.total_cycles() > 0.0);
        assert!(r.total_energy_j() > 0.0);
        assert!(r.layers.iter().all(|l| l.fpu_utilization > 0.0 && l.fpu_utilization <= 1.0));
    }

    #[test]
    fn spikestream_beats_baseline_end_to_end() {
        let base = analytic(KernelVariant::Baseline, FpFormat::Fp16);
        let fast = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        let speedup = fast.speedup_over(&base);
        assert!(speedup > 3.0 && speedup < 9.0, "end-to-end speedup {speedup:.2}");
        assert!(fast.average_utilization() > 3.0 * base.average_utilization());
        assert!(fast.energy_gain_over(&base) > 1.5);
    }

    #[test]
    fn fp8_improves_over_fp16() {
        let fp16 = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        let fp8 = analytic(KernelVariant::SpikeStream, FpFormat::Fp8);
        let speedup = fp8.speedup_over(&fp16);
        assert!(speedup > 1.4 && speedup < 2.1, "FP8/FP16 speedup {speedup:.2}");
        assert!(fp8.total_energy_j() < fp16.total_energy_j());
    }

    #[test]
    fn batch_statistics_have_nonzero_spread() {
        let r = analytic(KernelVariant::SpikeStream, FpFormat::Fp16);
        // Dynamic sparsity across the batch produces per-layer std-devs.
        assert!(r.layers.iter().skip(1).any(|l| l.cycles_std > 0.0));
    }

    #[test]
    fn cycle_level_engine_runs_a_small_network() {
        use spikestream_snn::{ConvSpec, LinearSpec, NetworkBuilder};
        use spikestream_snn::neuron::LifParams;
        use spikestream_snn::tensor::TensorShape;

        let lif = LifParams::new(0.5, 0.3);
        let net = NetworkBuilder::new("tiny")
            .conv(
                "conv1",
                ConvSpec {
                    input: TensorShape::new(8, 8, 3),
                    out_channels: 8,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: true,
                },
                lif,
            )
            .conv(
                "conv2",
                ConvSpec {
                    input: TensorShape::new(4, 4, 8),
                    out_channels: 16,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .linear("fc3", LinearSpec { in_features: 4 * 4 * 16, out_features: 10 }, lif)
            .build_with_random_weights(5, 0.1);
        let mut net = net;
        net.layers_mut()[0].encodes_input = true;
        assert!(net.validate().is_ok());

        let engine = Engine::new(net, FiringProfile::uniform(3, 0.25));
        let cfg = |variant| InferenceConfig {
            variant,
            format: FpFormat::Fp16,
            timing: TimingModel::CycleLevel,
            batch: 1,
            seed: 11,
        };
        let base = engine.run(&cfg(KernelVariant::Baseline));
        let fast = engine.run(&cfg(KernelVariant::SpikeStream));
        assert_eq!(base.layers.len(), 3);
        assert!(fast.total_cycles() < base.total_cycles());
    }

    #[test]
    fn analytic_and_cycle_level_agree_on_ordering() {
        // On the full S-VGG11 the cycle-level model is too slow for a test,
        // but both models must at least agree that SpikeStream wins and by
        // a broadly similar factor on a small layer-2-like network.
        use spikestream_snn::{ConvSpec, NetworkBuilder};
        use spikestream_snn::neuron::LifParams;
        use spikestream_snn::tensor::TensorShape;

        let lif = LifParams::new(0.5, 0.3);
        let mut net = NetworkBuilder::new("layer2-like")
            .conv(
                "conv",
                ConvSpec {
                    input: TensorShape::new(10, 10, 64),
                    out_channels: 32,
                    kh: 3,
                    kw: 3,
                    stride: 1,
                    padding: 1,
                    pool: false,
                },
                lif,
            )
            .build_with_random_weights(2, 0.05);
        // Not an encoding layer: it consumes spikes.
        net.layers_mut()[0].encodes_input = false;
        let engine = Engine::new(net, FiringProfile::uniform(1, 0.3));

        let run = |timing, variant| {
            engine
                .run(&InferenceConfig {
                    variant,
                    format: FpFormat::Fp16,
                    timing,
                    batch: 1,
                    seed: 2,
                })
                .total_cycles()
        };
        // The workload generator only produces spike inputs for layers >= 1,
        // so prepend a dummy? Instead: cycle-level path requires layer 0 to
        // encode input. Use analytic for both variants here and cycle-level
        // indirectly through the kernel tests.
        let a_base = run(TimingModel::Analytic, KernelVariant::Baseline);
        let a_fast = run(TimingModel::Analytic, KernelVariant::SpikeStream);
        assert!(a_fast < a_base);
        let ratio = a_base / a_fast;
        assert!(ratio > 3.0 && ratio < 9.0, "analytic speedup {ratio:.2}");
    }
}
