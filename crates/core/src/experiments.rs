//! Experiment drivers that regenerate every figure of the paper.
//!
//! Each function returns plain data rows so that the benchmark harness, the
//! `figures` binary and the integration tests can all consume the same
//! results. The mapping to the paper is documented per function; how the
//! experiments flow through the execution-backend layer is described in
//! ARCHITECTURE.md. Every driver runs through [`Engine::run`], i.e. batch
//! samples execute in parallel on the analytic backend.

use serde::{Deserialize, Serialize};

use neuro_accel_models::AcceleratorSpec;
use snitch_arch::fp::FpFormat;
use snitch_arch::CostModel;
use spikestream_kernels::KernelVariant;

use crate::engine::{Engine, InferenceConfig};
use crate::report::InferenceReport;

/// Default batch size of the paper's evaluation.
pub const PAPER_BATCH: usize = 128;

/// One row of Fig. 3a: per-layer ifmap memory footprint and firing rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FootprintRow {
    /// Layer name.
    pub layer: String,
    /// Average input firing rate.
    pub firing_rate: f64,
    /// AER footprint in bytes.
    pub aer_bytes: f64,
    /// CSR-derived footprint in bytes.
    pub csr_bytes: f64,
}

impl FootprintRow {
    /// Footprint reduction of the CSR-derived format over AER.
    pub fn reduction(&self) -> f64 {
        if self.csr_bytes == 0.0 {
            0.0
        } else {
            self.aer_bytes / self.csr_bytes
        }
    }
}

/// One row of Fig. 3b: per-layer FPU utilization and IPC for both variants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UtilizationRow {
    /// Layer name.
    pub layer: String,
    /// Baseline FPU utilization.
    pub util_baseline: f64,
    /// SpikeStream FPU utilization.
    pub util_spikestream: f64,
    /// Baseline per-core IPC.
    pub ipc_baseline: f64,
    /// SpikeStream per-core IPC.
    pub ipc_spikestream: f64,
}

/// One row of Fig. 3c: per-layer speedups.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpeedupRow {
    /// Layer name.
    pub layer: String,
    /// SpikeStream FP16 speedup over the FP16 baseline.
    pub spikestream_fp16_over_baseline: f64,
    /// SpikeStream FP8 speedup over SpikeStream FP16.
    pub fp8_over_fp16: f64,
}

/// One row of Fig. 4: per-layer energy and power for the three kernels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyRow {
    /// Layer name.
    pub layer: String,
    /// Baseline FP16 energy (mJ).
    pub energy_baseline_mj: f64,
    /// SpikeStream FP16 energy (mJ).
    pub energy_fp16_mj: f64,
    /// SpikeStream FP8 energy (mJ).
    pub energy_fp8_mj: f64,
    /// Baseline FP16 power (W).
    pub power_baseline_w: f64,
    /// SpikeStream FP16 power (W).
    pub power_fp16_w: f64,
    /// SpikeStream FP8 power (W).
    pub power_fp8_w: f64,
}

/// One row of Fig. 5: a platform's latency and energy on the 6th layer of
/// S-VGG11 over 500 timesteps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorRow {
    /// Platform name.
    pub name: String,
    /// Latency in milliseconds (Fig. 5a).
    pub latency_ms: f64,
    /// Energy in millijoules (Fig. 5b).
    pub energy_mj: f64,
    /// Peak GSOP/s (right axis of Fig. 5a); 0 for this work.
    pub peak_gsop: f64,
    /// Technology node in nm (right axis of Fig. 5b).
    pub technology_nm: u32,
}

/// Headline end-to-end numbers quoted in the abstract and Section IV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeadlineNumbers {
    /// SpikeStream FP16 speedup over the FP16 baseline.
    pub speedup_fp16: f64,
    /// SpikeStream FP8 speedup over the FP16 baseline.
    pub speedup_fp8: f64,
    /// Baseline average FPU utilization.
    pub utilization_baseline: f64,
    /// SpikeStream FP16 average FPU utilization.
    pub utilization_spikestream: f64,
    /// SpikeStream FP16 energy-efficiency gain over the baseline.
    pub energy_gain_fp16: f64,
    /// SpikeStream FP8 energy-efficiency gain over the baseline.
    pub energy_gain_fp8: f64,
}

/// One row of the optimization ablation (our addition, motivated by the
/// incremental presentation of Section III).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationRow {
    /// Configuration label.
    pub name: String,
    /// End-to-end runtime in cycles.
    pub cycles: f64,
    /// Average FPU utilization.
    pub utilization: f64,
}

fn config(variant: KernelVariant, format: FpFormat, batch: usize) -> InferenceConfig {
    InferenceConfig { batch, ..InferenceConfig::paper(variant, format) }
}

fn reports(batch: usize) -> (InferenceReport, InferenceReport, InferenceReport) {
    let engine = Engine::svgg11(42);
    let base16 = engine.compile(&config(KernelVariant::Baseline, FpFormat::Fp16, batch)).run();
    let ss16 = engine.compile(&config(KernelVariant::SpikeStream, FpFormat::Fp16, batch)).run();
    let ss8 = engine.compile(&config(KernelVariant::SpikeStream, FpFormat::Fp8, batch)).run();
    (base16, ss16, ss8)
}

/// Fig. 3a: average ifmap memory footprint (AER vs CSR-derived) and firing
/// activity across the S-VGG11 layers.
pub fn fig3a_footprint(batch: usize) -> Vec<FootprintRow> {
    let engine = Engine::svgg11(42);
    let report = engine.compile(&config(KernelVariant::SpikeStream, FpFormat::Fp16, batch)).run();
    report
        .layers
        .iter()
        .map(|l| FootprintRow {
            layer: l.name.clone(),
            firing_rate: l.input_firing_rate,
            aer_bytes: l.aer_footprint_bytes,
            csr_bytes: l.csr_footprint_bytes,
        })
        .collect()
}

/// Fig. 3b: average FPU utilization and per-core IPC of both code variants
/// in FP16 across the S-VGG11 layers.
pub fn fig3b_utilization(batch: usize) -> Vec<UtilizationRow> {
    let (base16, ss16, _) = reports(batch);
    base16
        .layers
        .iter()
        .zip(ss16.layers.iter())
        .map(|(b, s)| UtilizationRow {
            layer: b.name.clone(),
            util_baseline: b.fpu_utilization,
            util_spikestream: s.fpu_utilization,
            ipc_baseline: b.ipc,
            ipc_spikestream: s.ipc,
        })
        .collect()
}

/// Fig. 3c: average per-layer speedups (SpikeStream FP16 over the baseline,
/// and SpikeStream FP8 over SpikeStream FP16).
pub fn fig3c_speedup(batch: usize) -> Vec<SpeedupRow> {
    let (base16, ss16, ss8) = reports(batch);
    base16
        .layers
        .iter()
        .zip(ss16.layers.iter())
        .zip(ss8.layers.iter())
        .map(|((b, s16), s8)| SpeedupRow {
            layer: b.name.clone(),
            spikestream_fp16_over_baseline: b.cycles / s16.cycles.max(1.0),
            fp8_over_fp16: s16.cycles / s8.cycles.max(1.0),
        })
        .collect()
}

/// Fig. 4: average per-layer energy and power of the three kernels.
pub fn fig4_energy(batch: usize) -> Vec<EnergyRow> {
    let (base16, ss16, ss8) = reports(batch);
    base16
        .layers
        .iter()
        .zip(ss16.layers.iter())
        .zip(ss8.layers.iter())
        .map(|((b, s16), s8)| EnergyRow {
            layer: b.name.clone(),
            energy_baseline_mj: b.energy_j * 1e3,
            energy_fp16_mj: s16.energy_j * 1e3,
            energy_fp8_mj: s8.energy_j * 1e3,
            power_baseline_w: b.power_w,
            power_fp16_w: s16.power_w,
            power_fp8_w: s8.power_w,
        })
        .collect()
}

/// Fig. 5: latency (a) and energy (b) of the 6th S-VGG11 layer over
/// `timesteps` timesteps on the SoA neuromorphic accelerators and on this
/// work (baseline FP16, SpikeStream FP16, SpikeStream FP8).
pub fn fig5_accelerators(timesteps: u64, batch: usize) -> Vec<AcceleratorRow> {
    let (base16, ss16, ss8) = reports(batch);
    let layer = "conv6";
    let synops_per_ts = ss16.layer(layer).map(|l| l.synops).unwrap_or(0.0);
    let synops = (synops_per_ts * timesteps as f64) as u64;

    let mut rows: Vec<AcceleratorRow> = AcceleratorSpec::soa()
        .into_iter()
        .map(|spec| {
            let r = spec.run(synops);
            AcceleratorRow {
                name: r.name.clone(),
                latency_ms: r.latency_ms(),
                energy_mj: r.energy_mj(),
                peak_gsop: spec.peak_gsop,
                technology_nm: spec.technology_nm,
            }
        })
        .collect();

    let ours = |report: &InferenceReport, name: &str| {
        let l = report.layer(layer).expect("S-VGG11 has a conv6 layer");
        AcceleratorRow {
            name: name.to_string(),
            latency_ms: l.seconds * timesteps as f64 * 1e3,
            energy_mj: l.energy_j * timesteps as f64 * 1e3,
            peak_gsop: 0.0,
            technology_nm: 12,
        }
    };
    rows.push(ours(&base16, "Baseline FP16 (this work)"));
    rows.push(ours(&ss16, "SpikeStream FP16 (this work)"));
    rows.push(ours(&ss8, "SpikeStream FP8 (this work)"));
    rows
}

/// Headline end-to-end numbers (abstract / Section IV).
pub fn headline(batch: usize) -> HeadlineNumbers {
    let (base16, ss16, ss8) = reports(batch);
    HeadlineNumbers {
        speedup_fp16: ss16.speedup_over(&base16),
        speedup_fp8: ss8.speedup_over(&base16),
        utilization_baseline: base16.average_utilization(),
        utilization_spikestream: ss16.average_utilization(),
        energy_gain_fp16: ss16.energy_gain_over(&base16),
        energy_gain_fp8: ss8.energy_gain_over(&base16),
    }
}

/// Ablation over the incremental optimizations of Section III: the scalar
/// baseline, SpikeStream without shadow-register overlap, SpikeStream as
/// evaluated, and an idealized stream unit (one element per cycle, no
/// startup latency) that bounds the remaining headroom.
pub fn ablation(batch: usize) -> Vec<AblationRow> {
    let engine = Engine::svgg11(42);
    let mut rows = Vec::new();

    let run = |engine: &Engine, variant, format| {
        let r = engine.compile(&config(variant, format, batch)).run();
        (r.total_cycles(), r.average_utilization())
    };

    let (cycles, util) = run(&engine, KernelVariant::Baseline, FpFormat::Fp16);
    rows.push(AblationRow { name: "Baseline (TC+TP+DP+DB)".into(), cycles, utilization: util });

    // Without the shadow registers every stream reconfiguration waits for
    // the previous stream to drain: model it by charging the startup and
    // configuration serially, i.e. a much larger effective startup.
    let mut no_shadow = CostModel::default();
    no_shadow.stream_startup += 8;
    no_shadow.ssr_config_write += 2;
    let engine_ns = Engine::svgg11(42).with_cost_model(no_shadow);
    let (cycles, util) = run(&engine_ns, KernelVariant::SpikeStream, FpFormat::Fp16);
    rows.push(AblationRow {
        name: "SpikeStream w/o shadow regs".into(),
        cycles,
        utilization: util,
    });

    let (cycles, util) = run(&engine, KernelVariant::SpikeStream, FpFormat::Fp16);
    rows.push(AblationRow { name: "SpikeStream (SA)".into(), cycles, utilization: util });

    let ideal =
        CostModel { indirect_stream_interval: 1.0, stream_startup: 0, ..CostModel::default() };
    let engine_ideal = Engine::svgg11(42).with_cost_model(ideal);
    let (cycles, util) = run(&engine_ideal, KernelVariant::SpikeStream, FpFormat::Fp16);
    rows.push(AblationRow {
        name: "SpikeStream (ideal streams)".into(),
        cycles,
        utilization: util,
    });

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    const BATCH: usize = 8;

    #[test]
    fn fig3a_csr_is_smaller_than_aer_on_spiking_layers() {
        let rows = fig3a_footprint(BATCH);
        assert_eq!(rows.len(), 8);
        for row in rows.iter().skip(1) {
            assert!(
                row.reduction() > 1.5,
                "{}: CSR should clearly beat AER, got {:.2}",
                row.layer,
                row.reduction()
            );
        }
        // Firing activity decreases with depth across the conv layers.
        assert!(rows[1].firing_rate > rows[5].firing_rate);
    }

    #[test]
    fn fig3b_spikestream_utilization_dominates_baseline() {
        let rows = fig3b_utilization(BATCH);
        for row in &rows {
            assert!(
                row.util_spikestream > row.util_baseline,
                "{}: {} vs {}",
                row.layer,
                row.util_spikestream,
                row.util_baseline
            );
        }
        // Sparse conv baseline sits around 10%.
        assert!(rows[2].util_baseline > 0.05 && rows[2].util_baseline < 0.16);
        // SpikeStream raises deep conv layers above 40%.
        assert!(rows[3].util_spikestream > 0.4);
    }

    #[test]
    fn fig3c_speedups_have_the_paper_shape() {
        let rows = fig3c_speedup(BATCH);
        // Deep conv layers gain more than the first (dense) layer.
        let first = rows[0].spikestream_fp16_over_baseline;
        let deep = rows[4].spikestream_fp16_over_baseline;
        assert!(deep > first, "deep {deep:.2} vs first {first:.2}");
        for row in &rows {
            assert!(row.spikestream_fp16_over_baseline > 1.0, "{}", row.layer);
            // FP8 halves the SIMD groups (up to ~2x); the tiny final
            // classifier has too few output channels to gain and even pays
            // slightly more spike-unpacking work per group.
            assert!(row.fp8_over_fp16 > 0.8 && row.fp8_over_fp16 < 2.1, "{}", row.layer);
        }
        // On the wide conv layers FP8 approaches (but does not reach) 2x.
        assert!(rows[4].fp8_over_fp16 > 1.4);
    }

    #[test]
    fn fig4_energy_gains_and_power_levels() {
        let rows = fig4_energy(BATCH);
        let total_base: f64 = rows.iter().map(|r| r.energy_baseline_mj).sum();
        let total_fp16: f64 = rows.iter().map(|r| r.energy_fp16_mj).sum();
        let total_fp8: f64 = rows.iter().map(|r| r.energy_fp8_mj).sum();
        assert!(total_fp16 < total_base);
        assert!(total_fp8 < total_fp16);
        // Power: streaming kernels draw more power than the baseline on the
        // sparse layers while finishing much earlier.
        assert!(rows[3].power_fp16_w > rows[3].power_baseline_w);
        // Conv layers dominate the total energy (paper: ~83%).
        let conv: f64 = rows.iter().take(6).map(|r| r.energy_baseline_mj).sum();
        assert!(conv / total_base > 0.7);
    }

    #[test]
    fn fig5_orders_platforms_as_in_the_paper() {
        let rows = fig5_accelerators(500, BATCH);
        let get = |name: &str| rows.iter().find(|r| r.name.contains(name)).unwrap();
        let lsm = get("LSMCore");
        let odin = get("ODIN");
        let fp8 = get("SpikeStream FP8");
        let base = get("Baseline FP16");
        // LSMCore is the fastest accelerator, ODIN the slowest; our FP8
        // implementation lands between LSMCore and Loihi, and the baseline
        // is the slowest of our variants.
        assert!(lsm.latency_ms < fp8.latency_ms);
        assert!(fp8.latency_ms < get("Loihi").latency_ms);
        assert!(odin.latency_ms > get("Loihi").latency_ms);
        assert!(base.latency_ms > fp8.latency_ms * 4.0);
        // Energy: our FP16/FP8 beat LSMCore, the most efficient SoA chip.
        assert!(fp8.energy_mj < lsm.energy_mj);
        assert!(get("SpikeStream FP16").energy_mj < lsm.energy_mj);
    }

    #[test]
    fn headline_numbers_are_in_the_paper_ballpark() {
        let h = headline(BATCH);
        assert!(h.speedup_fp16 > 3.5 && h.speedup_fp16 < 8.0, "{}", h.speedup_fp16);
        assert!(h.speedup_fp8 > h.speedup_fp16);
        assert!(h.utilization_baseline < 0.18);
        assert!(h.utilization_spikestream > 0.4);
        assert!(h.energy_gain_fp16 > 1.5);
        assert!(h.energy_gain_fp8 > h.energy_gain_fp16);
    }

    #[test]
    fn ablation_orders_configurations() {
        let rows = ablation(4);
        assert_eq!(rows.len(), 4);
        let cycles: Vec<f64> = rows.iter().map(|r| r.cycles).collect();
        // Baseline slowest, ideal streams fastest.
        assert!(cycles[0] > cycles[2]);
        assert!(cycles[1] >= cycles[2]);
        assert!(cycles[3] <= cycles[2]);
    }
}
