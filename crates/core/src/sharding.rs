//! The sharded batch driver: many samples across many simulated clusters.
//!
//! [`BatchScheduler`] takes a batch of sample indices and an
//! [`ExecutionBackend`] and produces (a) the per-sample layer measurements
//! and (b) a deterministic assignment of every sample to one of N
//! [`ClusterShard`](snitch_sim::ClusterShard)s (`snitch-sim`), from which
//! the per-shard utilization and imbalance statistics of [`ShardSummary`]
//! are derived.
//!
//! Two scheduling layers are involved, and keeping them apart is what
//! makes the result reproducible:
//!
//! 1. **Host execution** — worker threads steal fixed-size *chunks* of
//!    sample indices from a shared atomic cursor and evaluate them through
//!    [`ExecutionBackend::run_sample_into`], each worker reusing one
//!    scratch vector (and, inside the cycle-level backend, one kernel
//!    [`LayerScratch`](spikestream_kernels::LayerScratch)) — no per-sample
//!    allocation in the hot loop. Results land in one pre-allocated flat
//!    buffer at their sample's slot, so the output is independent of which
//!    worker ran what.
//! 2. **Fleet attribution** — the deterministic per-sample cycle counts
//!    are then replayed through a [`ShardSet`]: samples are dispatched in
//!    stream order, each to the shard with the least accumulated simulated
//!    cycles (the paper's `next_rf` workload stealing, lifted from
//!    receptive fields to batch samples). The assignment is a pure
//!    function of the results, hence identical no matter how the host
//!    threads raced.
//!
//! The aggregate report produced from the flat buffer is therefore
//! bit-identical to [`Engine::run_sequential`](crate::Engine::run_sequential),
//! and the shard statistics are themselves deterministic.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use snitch_sim::ShardSet;

use crate::backend::{ExecutionBackend, LayerSample, SampleContext};
use crate::report::{ShardSummary, ShardUtilization};

/// Atomic bump of the shared batch cursor plus the branch of the stealing
/// loop, charged per dispatched sample in simulated time (mirrors the
/// per-RF overhead the kernels charge for `next_rf` stealing).
pub const DISPATCH_CYCLES: f64 = 2.0;

/// The one host worker-count sizing policy, shared by the serving
/// [`Session`](crate::Session) pool and the legacy [`BatchScheduler`]:
/// never run more workers than there are chunks to steal (extra workers
/// would claim nothing and pay wakeup/spawn churn for no parallelism),
/// and always run at least one.
pub(crate) fn clamp_workers(workers: usize, chunks: usize) -> usize {
    workers.clamp(1, chunks.max(1))
}

/// Work-stealing batch scheduler over N simulated cluster shards.
///
/// # Example
///
/// ```
/// use spikestream::{AnalyticBackend, BatchScheduler, Engine, FpFormat, InferenceConfig, KernelVariant};
///
/// let engine = Engine::svgg11(1);
/// let config = InferenceConfig {
///     batch: 16,
///     seed: 9,
///     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
/// };
/// let ctx = engine.sample_context(&config);
/// let batch = BatchScheduler::new(4).run(&AnalyticBackend, &ctx, 16, engine.network().len());
/// let summary = batch.summary();
/// assert_eq!(summary.shards.len(), 4);
/// assert_eq!(summary.shards.iter().map(|s| s.samples).sum::<u64>(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct BatchScheduler {
    shards: usize,
    workers: usize,
    chunk: usize,
}

impl BatchScheduler {
    /// Scheduler over `shards` simulated clusters (clamped to at least 1).
    ///
    /// Host workers default to the available host parallelism —
    /// independent of the shard count, since host execution only decides
    /// *when* samples are computed, never *where* they are attributed —
    /// and the stolen chunk size to 4 samples.
    pub fn new(shards: usize) -> Self {
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        BatchScheduler { shards: shards.max(1), workers: host, chunk: 4 }
    }

    /// Override the number of host worker threads (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the number of samples per stolen chunk (clamped to at
    /// least 1). Smaller chunks steal more finely; larger chunks amortize
    /// the cursor bump.
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Number of simulated cluster shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Evaluate samples `0..batch` of `ctx` through `backend` and
    /// attribute them to the shard fleet.
    ///
    /// `layers` must be the number of [`LayerSample`] slots one sample
    /// produces: the network's layer count times the configured timesteps
    /// (`ctx.network.len() * ctx.timesteps()`). The whole `(sample x
    /// timestep)` block of a sample is evaluated by one worker in one
    /// `run_sample_into` call — membrane state stays pinned to that
    /// worker's scratch — and attributed to one shard as a unit.
    pub fn run(
        &self,
        backend: &dyn ExecutionBackend,
        ctx: &SampleContext<'_>,
        batch: usize,
        layers: usize,
    ) -> ShardedBatch {
        let batch = batch.max(1);
        // One flat result buffer, filled in disjoint chunks by the workers.
        let mut flat = vec![LayerSample::default(); batch * layers];

        {
            // Pre-split the buffer into chunk-sized windows the workers
            // claim through the shared steal loop. Each Mutex is locked
            // exactly once, by the claiming worker; it only exists to hand
            // the `&mut` window across the thread boundary safely.
            let windows: Vec<Mutex<&mut [LayerSample]>> =
                flat.chunks_mut(self.chunk * layers).map(Mutex::new).collect();
            let workers = clamp_workers(self.workers, windows.len());
            // Per-worker scratch, reused for every sample a worker steals.
            let mut scratch: Vec<Vec<LayerSample>> =
                (0..workers).map(|_| Vec::with_capacity(layers)).collect();

            steal_chunks(windows.len(), &mut scratch, |scratch, w| {
                let mut window = windows[w].lock().expect("window mutex poisoned");
                let first = w * self.chunk;
                for (i, slot) in window.chunks_mut(layers).enumerate() {
                    scratch.clear();
                    backend.run_sample_into(ctx, first + i, scratch);
                    debug_assert_eq!(scratch.len(), layers, "one sample per layer per timestep");
                    slot.copy_from_slice(scratch);
                }
            });
        }

        // Deterministic fleet attribution in simulated time.
        let mut set = ShardSet::new(self.shards).with_dispatch_cycles(DISPATCH_CYCLES);
        let mut shard_of = Vec::with_capacity(batch);
        for sample in 0..batch {
            let cycles: f64 =
                flat[sample * layers..(sample + 1) * layers].iter().map(|l| l.cycles).sum();
            shard_of.push(set.assign(cycles));
        }

        ShardedBatch { samples: flat, layers, shard_of, set }
    }
}

/// The outcome of one sharded batch run: the per-sample measurements plus
/// the shard fleet that (deterministically) executed them.
#[derive(Debug, Clone)]
pub struct ShardedBatch {
    samples: Vec<LayerSample>,
    layers: usize,
    shard_of: Vec<usize>,
    set: ShardSet,
}

impl ShardedBatch {
    /// Flat per-sample measurements: sample `s`, layer `l` is at
    /// `s * layer_count + l`.
    pub fn samples(&self) -> &[LayerSample] {
        &self.samples
    }

    /// Layers per sample (the flat buffer's stride).
    pub fn layer_count(&self) -> usize {
        self.layers
    }

    /// The layer measurements of batch sample `sample`.
    ///
    /// # Panics
    ///
    /// Panics if `sample` is out of range.
    pub fn sample(&self, sample: usize) -> &[LayerSample] {
        &self.samples[sample * self.layers..(sample + 1) * self.layers]
    }

    /// Which shard executed each sample, indexed by sample.
    pub fn shard_of(&self) -> &[usize] {
        &self.shard_of
    }

    /// The shard fleet with its occupancy counters.
    pub fn shard_set(&self) -> &ShardSet {
        &self.set
    }

    /// Fleet statistics for the report.
    pub fn summary(&self) -> ShardSummary {
        fleet_summary(&self.set)
    }
}

/// The chunk-stealing host executor shared by the legacy
/// [`BatchScheduler`] and the serving [`Session`](crate::Session): one
/// worker thread per entry of `states`, each claiming chunk indices
/// `0..chunks` from a shared atomic cursor and running `work(state,
/// chunk)` for every claim. Keeping this loop in one place means stealing
/// granularity and worker clamping can never diverge between the two
/// batch drivers.
pub(crate) fn steal_chunks<S: Send>(
    chunks: usize,
    states: &mut [S],
    work: impl Fn(&mut S, usize) + Sync,
) {
    let cursor = AtomicUsize::new(0);
    let work = &work;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for state in states.iter_mut() {
            scope.spawn(move || loop {
                let w = cursor.fetch_add(1, Ordering::Relaxed);
                if w >= chunks {
                    break;
                }
                work(state, w);
            });
        }
    });
}

/// Deterministic fleet attribution of per-sample cycle totals to `shards`
/// simulated clusters: samples are dispatched in slice order, each to the
/// shard with the least accumulated simulated cycles, exactly as
/// [`Session`](crate::Session) and [`BatchScheduler`] attribute their
/// batches. A pure function of its inputs, so a serving gateway that
/// coalesces several requests into one run can re-attribute each request's
/// own samples afterwards and obtain the bit-identical [`ShardSummary`] a
/// bare single-request session run would have produced.
pub fn attribute_shards(sample_cycles: &[f64], shards: usize) -> ShardSummary {
    let mut set = ShardSet::new(shards.max(1)).with_dispatch_cycles(DISPATCH_CYCLES);
    for &cycles in sample_cycles {
        set.assign(cycles);
    }
    fleet_summary(&set)
}

/// Fleet statistics of a populated [`ShardSet`] — the one construction
/// shared by the legacy [`BatchScheduler`] and the serving
/// [`Session`](crate::Session), so sharded reports agree bit for bit no
/// matter which path attributed the samples.
pub(crate) fn fleet_summary(set: &ShardSet) -> ShardSummary {
    ShardSummary {
        shards: set
            .shards()
            .iter()
            .map(|s| ShardUtilization {
                shard: s.id(),
                samples: s.samples(),
                busy_cycles: s.busy_cycles(),
                utilization: set.utilization(s.id()),
            })
            .collect(),
        makespan_cycles: set.makespan_cycles(),
        imbalance: set.imbalance(),
        batch_speedup: set.batch_speedup(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::{Engine, InferenceConfig, TimingModel, WorkloadMode};
    use snitch_arch::fp::FpFormat;
    use spikestream_kernels::KernelVariant;

    fn config(batch: usize) -> InferenceConfig {
        InferenceConfig {
            variant: KernelVariant::SpikeStream,
            format: FpFormat::Fp16,
            timing: TimingModel::Analytic,
            batch,
            seed: 0xFEED,
            mode: WorkloadMode::Synthetic,
        }
    }

    #[test]
    fn flat_buffer_matches_per_sample_backend_output() {
        let engine = Engine::svgg11(4);
        let cfg = config(10);
        let ctx = engine.sample_context(&cfg);
        let layers = engine.network().len();
        let batch = BatchScheduler::new(3).with_chunk(3).run(&AnalyticBackend, &ctx, 10, layers);
        for sample in 0..10 {
            assert_eq!(batch.sample(sample), AnalyticBackend.run_sample(&ctx, sample).as_slice());
        }
    }

    #[test]
    fn attribution_is_stable_across_worker_and_chunk_choices() {
        let engine = Engine::svgg11(4);
        let cfg = config(32);
        let ctx = engine.sample_context(&cfg);
        let layers = engine.network().len();
        let reference = BatchScheduler::new(4).with_workers(1).with_chunk(1).run(
            &AnalyticBackend,
            &ctx,
            32,
            layers,
        );
        for (workers, chunk) in [(2, 1), (4, 4), (8, 5), (3, 32)] {
            let other = BatchScheduler::new(4).with_workers(workers).with_chunk(chunk).run(
                &AnalyticBackend,
                &ctx,
                32,
                layers,
            );
            assert_eq!(other.samples(), reference.samples());
            assert_eq!(other.shard_of(), reference.shard_of());
            assert_eq!(other.summary(), reference.summary());
        }
    }

    #[test]
    fn every_sample_is_attributed_exactly_once() {
        let engine = Engine::svgg11(4);
        let cfg = config(25);
        let ctx = engine.sample_context(&cfg);
        let batch = BatchScheduler::new(8).run(&AnalyticBackend, &ctx, 25, engine.network().len());
        assert_eq!(batch.shard_of().len(), 25);
        let summary = batch.summary();
        assert_eq!(summary.shards.iter().map(|s| s.samples).sum::<u64>(), 25);
        assert!(summary.shards.iter().all(|s| s.utilization > 0.0 && s.utilization <= 1.0));
        assert!(summary.imbalance >= 1.0);
        assert!(summary.batch_speedup > 1.0 && summary.batch_speedup <= 8.0);
    }
}
