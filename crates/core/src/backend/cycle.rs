//! The trace-driven cycle-level backend.

use snitch_sim::ClusterModel;
use spikestream_energy::Activity;
use spikestream_kernels::{LayerExecutor, LayerInput, LayerScratch};
use spikestream_snn::{LayerKind, WorkloadGenerator};

use super::{ExecutionBackend, LayerSample, SampleContext};

/// Cycle-level backend: generates a spike workload for the sample, lowers
/// every layer to its stream program through the
/// [`LayerExecutor`](spikestream_kernels::LayerExecutor) kernel dispatch
/// and interprets the programs on one reused [`ClusterModel`] (slower than
/// the analytic backend; used for validation and small batches).
/// [`ClusterModel::finish_phase`] resets the cores and the DMA engine
/// between layers while the instruction cache stays warm — kernels remain
/// resident across layers, exactly as on the real cluster. One
/// [`LayerScratch`] is likewise reused across the layers of the sample.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleLevelBackend;

impl ExecutionBackend for CycleLevelBackend {
    fn name(&self) -> &'static str {
        "cycle-level"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        let mut out = Vec::with_capacity(ctx.network.len());
        self.run_sample_into(ctx, sample, &mut out);
        out
    }

    fn run_sample_into(&self, ctx: &SampleContext<'_>, sample: usize, out: &mut Vec<LayerSample>) {
        let generator = WorkloadGenerator::new(ctx.profile.clone(), ctx.config.seed);
        let workload = generator.generate(ctx.network, sample);
        let executor = LayerExecutor::new(ctx.config.variant, ctx.config.format);
        let mut scratch = LayerScratch::new();
        let mut cluster = ClusterModel::new(ctx.cluster.clone(), ctx.cost.clone());
        out.reserve(ctx.network.len());

        for (idx, layer) in ctx.network.layers().iter().enumerate() {
            let input = match &layer.kind {
                LayerKind::Conv(_) if layer.encodes_input => LayerInput::Image(&workload.image),
                _ => LayerInput::Spikes(workload.spikes_for_layer(idx)),
            };
            let exec = executor.run_with_scratch(&mut cluster, layer, input, &mut scratch);
            let stats = cluster.finish_phase(&layer.name);

            let activity = Activity {
                cycles: stats.compute_cycles,
                int_instrs: stats.totals.int_instrs,
                flops: stats.totals.flops,
                dma_bytes: stats.dma_bytes_in + stats.dma_bytes_out,
                format: ctx.config.format,
            };
            out.push(LayerSample {
                cycles: stats.compute_cycles as f64,
                fpu_utilization: stats.fpu_utilization,
                ipc: stats.ipc,
                input_firing_rate: exec.input_rate,
                input_spikes: exec.input_spikes as f64,
                synops: exec.synops,
                energy_j: ctx.energy.energy_j(&activity),
                csr_footprint_bytes: exec.csr_footprint_bytes,
                aer_footprint_bytes: exec.aer_footprint_bytes,
            });
        }
    }
}
