//! The trace-driven cycle-level backend.

use snitch_sim::ClusterModel;
use spikestream_energy::Activity;
use spikestream_kernels::{LayerExecution, LayerExecutor, LayerInput, LayerScratch};
use spikestream_snn::encoding::pad_spikes;
use spikestream_snn::{
    AerFrame, LayerKind, SpikeMap, TemporalEncoder, Tensor3, WorkloadGenerator, WorkloadMode,
};

use super::{ExecutionBackend, LayerSample, SampleContext};

/// Cycle-level backend: lowers every layer to its stream program through
/// the [`LayerExecutor`](spikestream_kernels::LayerExecutor) kernel
/// dispatch and interprets the programs on one reused
/// [`ClusterModel`] (slower than the analytic backend; used for validation
/// and small batches). [`ClusterModel::finish_phase`] resets the cores and
/// the DMA engine between layers while the instruction cache stays warm —
/// kernels remain resident across layers, exactly as on the real cluster.
/// One [`LayerScratch`] is likewise reused across the layers of the sample.
///
/// In [`WorkloadMode::Synthetic`] each layer's input spike map is sampled
/// from the firing profile (the paper's single-shot evaluation). In
/// [`WorkloadMode::Temporal`] the backend runs a real T-timestep
/// inference: the input image is encoded per step, LIF membranes persist
/// in the scratch between steps ([`LayerScratch::begin_sample`] resets
/// them per sample), and the spikes layer N emits at step t *are* layer
/// N+1's compressed input at step t — per-step stream lengths, DMA
/// traffic and AER frames all reflect the emergent sparsity.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleLevelBackend;

impl ExecutionBackend for CycleLevelBackend {
    fn name(&self) -> &'static str {
        "cycle-level"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        let mut out = Vec::with_capacity(ctx.network.len() * ctx.timesteps());
        self.run_sample_into(ctx, sample, &mut out);
        out
    }

    fn run_sample_into(&self, ctx: &SampleContext<'_>, sample: usize, out: &mut Vec<LayerSample>) {
        self.run_sample_with_scratch(ctx, sample, out, &mut LayerScratch::new());
    }

    fn run_sample_with_scratch(
        &self,
        ctx: &SampleContext<'_>,
        sample: usize,
        out: &mut Vec<LayerSample>,
        scratch: &mut LayerScratch,
    ) {
        match ctx.config.mode {
            WorkloadMode::Synthetic => self.run_synthetic(ctx, sample, out, scratch),
            WorkloadMode::Temporal { encoding, .. } => {
                self.run_temporal(ctx, sample, encoding, out, scratch)
            }
        }
    }
}

impl CycleLevelBackend {
    /// The paper's single-shot path: one profile-sampled evaluation.
    fn run_synthetic(
        &self,
        ctx: &SampleContext<'_>,
        sample: usize,
        out: &mut Vec<LayerSample>,
        scratch: &mut LayerScratch,
    ) {
        let generator = WorkloadGenerator::new(ctx.profile.clone(), ctx.config.seed);
        let workload = generator.generate(ctx.network, sample);
        let executor = LayerExecutor::new(ctx.config.variant, ctx.config.format);
        let mut cluster = ClusterModel::new(ctx.cluster.clone(), ctx.cost.clone());
        out.reserve(ctx.network.len());

        for (idx, layer) in ctx.network.layers().iter().enumerate() {
            let input = match &layer.kind {
                LayerKind::Conv(_) if layer.encodes_input => LayerInput::Image(&workload.image),
                _ => LayerInput::Spikes(workload.spikes_for_layer(idx)),
            };
            let exec = executor.run_with_scratch(&mut cluster, layer, input, scratch);
            out.push(measure(ctx, &mut cluster, &layer.name, &exec));
        }
    }

    /// The temporal pipeline: T timesteps of real spike propagation with
    /// persistent membrane state pinned to this worker's scratch.
    fn run_temporal(
        &self,
        ctx: &SampleContext<'_>,
        sample: usize,
        encoding: spikestream_snn::TemporalEncoding,
        out: &mut Vec<LayerSample>,
        scratch: &mut LayerScratch,
    ) {
        let layers = ctx.network.layers();
        assert!(
            layers.first().is_some_and(|l| l.encodes_input),
            "the temporal pipeline requires a spike-encoding first layer \
             (the dense image is the only external input of a temporal run)"
        );

        let generator = WorkloadGenerator::new(ctx.profile.clone(), ctx.config.seed);
        let image = generator.generate_image(ctx.network, sample);
        // Per-(sample, step) deterministic encoder seed: temporal runs stay
        // bit-identical across worker/shard schedules. The domain constant
        // keeps this stream disjoint from the workload generator's
        // per-sample image RNG (which uses `seed ^ sample * phi` directly) —
        // otherwise step-0 rate coding would replay the very stream that
        // drew the pixel intensities it thresholds.
        const ENCODER_DOMAIN: u64 = 0x5DEE_CE66_D1CE_5EED;
        let encoder_seed =
            ctx.config.seed ^ (sample as u64).wrapping_mul(0x9e37_79b9) ^ ENCODER_DOMAIN;
        let encoder = TemporalEncoder::new(&image, encoding, encoder_seed);

        let executor = LayerExecutor::new(ctx.config.variant, ctx.config.format);
        scratch.begin_sample(ctx.network);
        let mut cluster = ClusterModel::new(ctx.cluster.clone(), ctx.cost.clone());
        let timesteps = ctx.timesteps();
        out.reserve(ctx.network.len() * timesteps);

        let mut encoded = Tensor3::zeros(image.shape());
        for step in 0..timesteps {
            encoder.encode_step_into(step, &mut encoded);
            // The spikes the previous layer emitted this step, padded into
            // the next layer's expected input shape.
            let mut carry: Option<SpikeMap> = None;
            for (idx, layer) in layers.iter().enumerate() {
                let staged;
                let mut aer_frame = None;
                let input = if idx == 0 {
                    LayerInput::Image(&encoded)
                } else {
                    let prev = carry.take().expect("layer N feeds layer N+1");
                    staged = match &layer.kind {
                        LayerKind::Conv(c) if c.padding > 0 => pad_spikes(&prev, c.padding),
                        _ => prev,
                    };
                    if idx == 1 {
                        // One AER frame per timestep: the spike train the
                        // network's first spiking boundary would put on a
                        // neuromorphic interface, stamped with the step —
                        // this is what gives the event timestamps real
                        // semantics. Its size is that layer's reported AER
                        // footprint; deeper layers reuse the equivalent
                        // spike-count-derived value without materializing
                        // events.
                        let frame = AerFrame::from_spike_map(&staged, step as u16);
                        debug_assert!(frame.events().iter().all(|e| e.timestamp == step as u16));
                        aer_frame = Some(frame);
                    }
                    LayerInput::Spikes(&staged)
                };
                let (exec, output) =
                    executor.run_temporal_step(&mut cluster, layer, idx, input, scratch);
                let mut sample = measure(ctx, &mut cluster, &layer.name, &exec);
                if let Some(frame) = aer_frame {
                    debug_assert_eq!(frame.events().len() as u64, exec.input_spikes);
                    sample.aer_footprint_bytes = frame.footprint_bytes() as f64;
                }
                out.push(sample);
                carry = Some(output);
            }
        }
    }
}

/// Collect the finished layer phase into a [`LayerSample`].
fn measure(
    ctx: &SampleContext<'_>,
    cluster: &mut ClusterModel,
    name: &str,
    exec: &LayerExecution,
) -> LayerSample {
    let stats = cluster.finish_phase(name);
    let activity = Activity {
        cycles: stats.compute_cycles,
        int_instrs: stats.totals.int_instrs,
        flops: stats.totals.flops,
        dma_bytes: stats.dma_bytes_in + stats.dma_bytes_out,
        format: ctx.config.format,
    };
    LayerSample {
        cycles: stats.compute_cycles as f64,
        fpu_utilization: stats.fpu_utilization,
        ipc: stats.ipc,
        input_firing_rate: exec.input_rate,
        input_spikes: exec.input_spikes as f64,
        synops: exec.synops,
        energy_j: ctx.energy.energy_j(&activity),
        dma_bytes: (stats.dma_bytes_in + stats.dma_bytes_out) as f64,
        csr_footprint_bytes: exec.csr_footprint_bytes,
        aer_footprint_bytes: exec.aer_footprint_bytes,
    }
}
