//! Pluggable execution backends.
//!
//! An [`ExecutionBackend`] evaluates **one batch sample** of a network and
//! returns one [`LayerSample`] per layer per timestep (synthetic runs
//! evaluate a single step; temporal runs evaluate `T` real ones with
//! membrane state carried between steps). The serving layer owns
//! everything around that: a compiled [`Plan`](crate::Plan) builds the
//! shared [`SampleContext`] (program cache attached) and binds the backend
//! as a plan-owned value, and its [`Session`](crate::Session)s fan
//! requests out over worker arenas (each sample is seeded independently
//! and a sample's timesteps stay on one worker, so the folded report is
//! bit-identical to a sequential run).
//!
//! Two backends ship with the crate, mirroring the two timing models of
//! the paper's evaluation. Both consume the *same* stream programs
//! emitted by the kernels (`spikestream-ir`):
//!
//! * [`AnalyticBackend`] — integrates the cost model over symbolic
//!   lowerings, fast enough for full-batch figure sweeps;
//! * [`CycleLevelBackend`] — interprets exact lowerings on the
//!   trace-driven cluster simulation behind a [`LayerExecutor`], used
//!   for validation.
//!
//! Third-party backends (accelerator models, event-driven simulators, …)
//! implement the same trait and either bind into a plan at compile time
//! ([`Compiler::with_backend`](crate::Compiler::with_backend)) or serve
//! individual requests through
//! [`Session::infer_with_backend`](crate::Session::infer_with_backend) —
//! no engine changes either way.

mod analytic;
mod cycle;

pub use analytic::AnalyticBackend;
pub use cycle::CycleLevelBackend;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use snitch_arch::{ClusterConfig, CostModel};
use spikestream_energy::EnergyModel;
use spikestream_ir::{CostIntegrator, ProgramCache};
use spikestream_kernels::{LayerExecutor, LayerScratch};
use spikestream_snn::{FiringProfile, Network, TemporalSparsityModel, WorkloadMode};

use crate::engine::{InferenceConfig, TimingModel};

/// Everything a backend needs to evaluate batch samples: the network, its
/// firing profile, the hardware and energy models, and the run
/// configuration (variant, format, seed).
#[derive(Debug, Clone, Copy)]
pub struct SampleContext<'a> {
    /// The network being evaluated.
    pub network: &'a Network,
    /// Per-layer firing statistics driving workload generation.
    pub profile: &'a FiringProfile,
    /// Cluster configuration (cores, clock, scratchpad).
    pub cluster: &'a ClusterConfig,
    /// Per-operation cycle costs.
    pub cost: &'a CostModel,
    /// Energy model applied to the activity of each layer.
    pub energy: &'a EnergyModel,
    /// The inference configuration of this run.
    pub config: &'a InferenceConfig,
    /// The plan-owned symbolic program cache, when the run is driven by a
    /// compiled [`Plan`](crate::Plan). Backends that lower symbolically
    /// (the analytic backend) bind programs through it instead of
    /// re-emitting per sample; `None` (a bare context built outside a
    /// plan) falls back to inline lowering with bit-identical results.
    pub programs: Option<&'a ProgramCache>,
    /// The shared cost integrator for symbolic lowerings, owned by the
    /// context's builder ([`Plan`](crate::Plan) or
    /// [`Engine`](crate::Engine)) so the per-sample hot path never clones
    /// the cluster configuration and cost model it wraps.
    pub integrator: &'a CostIntegrator,
    /// The layer-lowering dispatcher for the run's variant and format
    /// (a two-enum `Copy` value, hoisted here so backends share one).
    pub executor: LayerExecutor,
}

impl SampleContext<'_> {
    /// Jittered firing rate of layer `idx` for a batch sample.
    ///
    /// Deterministic in `(config.seed, sample, idx)` — this is what makes
    /// parallel batch execution bit-identical to a sequential run: no RNG
    /// state is shared between samples.
    pub fn sample_rate(&self, idx: usize, sample: usize) -> f64 {
        let base = self.profile.rate(idx);
        if idx == 0 {
            return base;
        }
        let mut rng =
            StdRng::seed_from_u64(self.config.seed ^ ((sample as u64) << 20) ^ ((idx as u64) << 4));
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let gauss = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (base * (1.0 + self.profile.relative_std * gauss)).clamp(0.0, 1.0)
    }

    /// Expected firing rate of layer `idx` at timestep `step` of a batch
    /// sample: the jittered profile rate modulated by the
    /// [`TemporalSparsityModel`] warm-up ramp (membranes charge from rest,
    /// so early steps under-fire). Identical to
    /// [`SampleContext::sample_rate`] in synthetic mode and for the dense
    /// encoding layer, whose input does not depend on membrane history.
    pub fn sample_rate_at(&self, idx: usize, sample: usize, step: usize) -> f64 {
        let base = self.sample_rate(idx, sample);
        match self.config.mode {
            WorkloadMode::Synthetic => base,
            WorkloadMode::Temporal { .. } if idx == 0 => base,
            WorkloadMode::Temporal { .. } => {
                (base * TemporalSparsityModel::calibrated().step_factor(step)).clamp(0.0, 1.0)
            }
        }
    }

    /// Timesteps each sample of this run evaluates.
    pub fn timesteps(&self) -> usize {
        self.config.timesteps()
    }
}

/// Per-sample, per-layer measurement before averaging.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LayerSample {
    /// Runtime in cycles.
    pub cycles: f64,
    /// FPU utilization (0..=1).
    pub fpu_utilization: f64,
    /// Instructions per cycle per core.
    pub ipc: f64,
    /// Firing rate of the layer's input.
    pub input_firing_rate: f64,
    /// Input spike count (dense pixels for the encoding layer).
    pub input_spikes: f64,
    /// Synaptic operations executed.
    pub synops: f64,
    /// Energy in joules.
    pub energy_j: f64,
    /// DMA payload bytes moved (in + out) by the layer invocation.
    pub dma_bytes: f64,
    /// Compressed (CSR-derived) input footprint in bytes.
    pub csr_footprint_bytes: f64,
    /// AER input footprint in bytes.
    pub aer_footprint_bytes: f64,
}

/// A strategy for evaluating one batch sample of a network.
///
/// Implementations must be stateless across samples (all per-sample
/// randomness derived from `(ctx.config.seed, sample)`), which lets the
/// engine run samples on worker threads in any order while producing
/// results bit-identical to a sequential loop.
///
/// # Example
///
/// A custom backend binds into a plan without engine changes:
///
/// ```
/// use spikestream::{
///     Engine, ExecutionBackend, FpFormat, InferenceConfig, KernelVariant, LayerSample,
///     Request, SampleContext, TimingModel,
/// };
///
/// /// A toy backend charging one cycle per expected synaptic operation.
/// struct SynopCounting;
///
/// impl ExecutionBackend for SynopCounting {
///     fn name(&self) -> &'static str {
///         "synop-counting"
///     }
///
///     fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
///         ctx.network
///             .layers()
///             .iter()
///             .enumerate()
///             .map(|(idx, layer)| {
///                 let rate = ctx.sample_rate(idx, sample);
///                 let synops = layer.kind.dense_synops() as f64 * rate;
///                 LayerSample { cycles: synops.max(1.0), synops, ..Default::default() }
///             })
///             .collect()
///     }
/// }
///
/// let engine = Engine::svgg11(1);
/// let config = InferenceConfig {
///     timing: TimingModel::Analytic, // ignored: the backend is explicit
///     batch: 2,
///     seed: 7,
///     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
/// };
/// let plan = engine
///     .compiler()
///     .with_backend(Box::new(SynopCounting))
///     .compile(config)
///     .unwrap();
/// let report = plan.open_session().infer(&Request::batch(2));
/// assert!(report.total_cycles() > 0.0);
/// ```
pub trait ExecutionBackend: Send + Sync {
    /// Human-readable backend name (for reports and diagnostics).
    fn name(&self) -> &'static str;

    /// Evaluate batch sample `sample`, returning one [`LayerSample`] per
    /// network layer per timestep: step-major order (`step 0` layers first,
    /// then `step 1`, …). Synthetic runs evaluate exactly one step, so the
    /// historical "one sample per layer" contract is the `T = 1` case.
    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample>;

    /// Evaluate batch sample `sample`, appending one [`LayerSample`] per
    /// network layer per timestep to `out` (step-major, as in
    /// [`ExecutionBackend::run_sample`]) instead of allocating a fresh
    /// vector.
    ///
    /// The sharded batch scheduler drives this entry point with a reused
    /// per-worker scratch vector so its hot loop performs no per-sample
    /// allocation; the built-in backends override the default
    /// (`out.extend(self.run_sample(..))`) accordingly. The two entry
    /// points must produce identical samples.
    fn run_sample_into(&self, ctx: &SampleContext<'_>, sample: usize, out: &mut Vec<LayerSample>) {
        out.extend(self.run_sample(ctx, sample));
    }

    /// Evaluate batch sample `sample` with caller-owned kernel scratch —
    /// the entry point [`Session`](crate::Session) workers drive through
    /// their [`WorkerArena`]s, so compressed-input buffers and persistent
    /// membrane state are reused across every sample (and request) the
    /// worker serves. Must produce samples identical to
    /// [`ExecutionBackend::run_sample_into`]; the default ignores the
    /// scratch for backends that keep no kernel state.
    fn run_sample_with_scratch(
        &self,
        ctx: &SampleContext<'_>,
        sample: usize,
        out: &mut Vec<LayerSample>,
        _scratch: &mut LayerScratch,
    ) {
        self.run_sample_into(ctx, sample, out);
    }
}

/// The built-in backend implementing a [`TimingModel`], as an owned value.
///
/// Compiled [`Plan`](crate::Plan)s *own* their backend binding — there is
/// no `&'static` registry to reach through, which keeps `Plan: Send +
/// Sync` a plain structural property and lets third parties bind their own
/// backends at compile time via
/// [`Compiler::with_backend`](crate::Compiler::with_backend).
pub fn backend_for(timing: TimingModel) -> Box<dyn ExecutionBackend> {
    match timing {
        TimingModel::Analytic => Box::new(AnalyticBackend),
        TimingModel::CycleLevel => Box::new(CycleLevelBackend),
    }
}

/// Per-worker scratch arena a [`Session`](crate::Session) owns for each of
/// its worker slots: the per-sample [`LayerSample`] staging buffer plus the
/// kernels' [`LayerScratch`] (compressed-input buffers and the persistent
/// per-layer membrane state of temporal samples). Reused for every sample
/// the worker steals, across requests — in the serving steady state no
/// buffer grows, which the [`WorkerArena::grows`] counter makes
/// observable (and tests assert).
#[derive(Debug, Default)]
pub struct WorkerArena {
    samples: Vec<LayerSample>,
    kernel: LayerScratch,
    runs: u64,
    grows: u64,
}

impl WorkerArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Evaluate one batch sample through `backend`, staging the results in
    /// this arena's buffers. The returned slice is valid until the next
    /// call.
    pub fn run_sample<'a>(
        &'a mut self,
        backend: &dyn ExecutionBackend,
        ctx: &SampleContext<'_>,
        sample: usize,
    ) -> &'a [LayerSample] {
        let capacity = self.samples.capacity();
        self.samples.clear();
        backend.run_sample_with_scratch(ctx, sample, &mut self.samples, &mut self.kernel);
        self.runs += 1;
        self.grows += u64::from(self.samples.capacity() != capacity);
        &self.samples
    }

    /// Samples this arena has evaluated since construction.
    pub fn runs(&self) -> u64 {
        self.runs
    }

    /// Times the staging buffer had to grow; stays flat once the arena
    /// reaches steady-state capacity.
    pub fn grows(&self) -> u64 {
        self.grows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_for_selects_the_matching_backend_as_an_owned_value() {
        assert_eq!(backend_for(TimingModel::Analytic).name(), "analytic");
        assert_eq!(backend_for(TimingModel::CycleLevel).name(), "cycle-level");
    }

    #[test]
    fn sample_rates_are_deterministic_and_jittered() {
        let network = Network::svgg11(1);
        let profile = FiringProfile::paper_svgg11();
        let cluster = ClusterConfig::default();
        let cost = CostModel::default();
        let energy = EnergyModel::calibrated();
        let config = crate::InferenceConfig::paper(
            spikestream_kernels::KernelVariant::SpikeStream,
            snitch_arch::fp::FpFormat::Fp16,
        );
        let integrator = CostIntegrator::new(cluster.clone(), cost.clone());
        let ctx = SampleContext {
            network: &network,
            profile: &profile,
            cluster: &cluster,
            cost: &cost,
            energy: &energy,
            config: &config,
            programs: None,
            integrator: &integrator,
            executor: LayerExecutor::new(config.variant, config.format),
        };
        // Layer 0 is the dense encoding layer: no jitter.
        assert_eq!(ctx.sample_rate(0, 0), ctx.sample_rate(0, 5));
        // Spiking layers: deterministic per sample, different across samples.
        assert_eq!(ctx.sample_rate(2, 3), ctx.sample_rate(2, 3));
        assert_ne!(ctx.sample_rate(2, 3), ctx.sample_rate(2, 4));
        // Synthetic mode ignores the step index entirely.
        assert_eq!(ctx.sample_rate_at(2, 3, 0), ctx.sample_rate(2, 3));
        assert_eq!(ctx.sample_rate_at(2, 3, 7), ctx.sample_rate(2, 3));
    }

    #[test]
    fn temporal_rates_ramp_up_with_the_step() {
        use spikestream_snn::TemporalEncoding;
        let network = Network::svgg11(1);
        let profile = FiringProfile::paper_svgg11();
        let cluster = ClusterConfig::default();
        let cost = CostModel::default();
        let energy = EnergyModel::calibrated();
        let config = crate::InferenceConfig::paper(
            spikestream_kernels::KernelVariant::SpikeStream,
            snitch_arch::fp::FpFormat::Fp16,
        )
        .temporal(4, TemporalEncoding::Direct);
        let integrator = CostIntegrator::new(cluster.clone(), cost.clone());
        let ctx = SampleContext {
            network: &network,
            profile: &profile,
            cluster: &cluster,
            cost: &cost,
            energy: &energy,
            config: &config,
            programs: None,
            integrator: &integrator,
            executor: LayerExecutor::new(config.variant, config.format),
        };
        assert_eq!(ctx.timesteps(), 4);
        // Spiking layers warm up toward the steady-state profile rate...
        let steady = ctx.sample_rate(2, 0);
        assert!(ctx.sample_rate_at(2, 0, 0) < ctx.sample_rate_at(2, 0, 3));
        assert!(ctx.sample_rate_at(2, 0, 3) <= steady);
        // ... while the encoding layer's dense input is step-invariant.
        assert_eq!(ctx.sample_rate_at(0, 0, 0), ctx.sample_rate_at(0, 0, 3));
    }
}
