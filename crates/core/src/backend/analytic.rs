//! The closed-form analytic backend.

use spikestream_energy::Activity;
use spikestream_kernels::{AnalyticLayerModel, LayerTiming};
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::{AerEvent, LayerKind};

use super::{ExecutionBackend, LayerSample, SampleContext};

/// Closed-form layer-timing backend (fast; used for full-batch figure
/// runs). Layer runtimes come from the
/// [`AnalyticLayerModel`](spikestream_kernels::AnalyticLayerModel); spike
/// counts and footprints are the expected values implied by each sample's
/// jittered firing rate.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticBackend;

impl ExecutionBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        let mut out = Vec::with_capacity(ctx.network.len());
        self.run_sample_into(ctx, sample, &mut out);
        out
    }

    fn run_sample_into(&self, ctx: &SampleContext<'_>, sample: usize, out: &mut Vec<LayerSample>) {
        let model = AnalyticLayerModel::new(ctx.cluster.clone(), ctx.cost.clone());
        let n = ctx.network.len();
        out.reserve(n);
        for (idx, layer) in ctx.network.layers().iter().enumerate() {
            let input_rate = ctx.sample_rate(idx, sample);
            let output_rate = ctx.sample_rate((idx + 1).min(n - 1), sample);
            let timing = model.layer(
                &layer.kind,
                layer.encodes_input,
                ctx.config.variant,
                ctx.config.format,
                input_rate,
                output_rate,
            );
            out.push(layer_sample(ctx, &layer.kind, idx, input_rate, &timing));
        }
    }
}

fn layer_sample(
    ctx: &SampleContext<'_>,
    kind: &LayerKind,
    idx: usize,
    input_rate: f64,
    timing: &LayerTiming,
) -> LayerSample {
    let cores = ctx.cluster.worker_cores as u64;
    let activity = Activity {
        cycles: timing.cycles,
        int_instrs: timing.int_instrs * cores,
        flops: timing.flops,
        dma_bytes: timing.dma_bytes_in + timing.dma_bytes_out,
        format: ctx.config.format,
    };
    let energy_j = ctx.energy.energy_j(&activity);
    let (csr, aer) = footprints(kind, idx, input_rate);
    LayerSample {
        cycles: timing.cycles as f64,
        fpu_utilization: timing.fpu_utilization,
        ipc: timing.ipc,
        input_firing_rate: input_rate,
        input_spikes: expected_input_spikes(kind, idx, input_rate),
        synops: timing.synops as f64,
        energy_j,
        csr_footprint_bytes: csr,
        aer_footprint_bytes: aer,
    }
}

/// Expected ifmap footprints under the sample's firing rate, matching the
/// formats of Fig. 3a (CSR-derived vs AER).
fn footprints(kind: &LayerKind, idx: usize, rate: f64) -> (f64, f64) {
    let rate = if idx == 0 { 1.0 } else { rate };
    match kind {
        LayerKind::Conv(spec) => {
            let padded = spec.padded_input();
            let spikes = padded.len() as f64 * rate;
            let csr =
                spikes * INDEX_BYTES as f64 + ((padded.h * padded.w + 1) * INDEX_BYTES) as f64;
            let aer = spikes * AerEvent::BYTES as f64;
            (csr, aer)
        }
        LayerKind::Linear(spec) => {
            let spikes = spec.in_features as f64 * rate;
            (spikes * INDEX_BYTES as f64 + 4.0, spikes * AerEvent::BYTES as f64)
        }
    }
}

/// Expected input spike count under the sample's firing rate. Mirrors the
/// workload generator: the encoding layer consumes every (dense) pixel, and
/// the silent padded border of conv inputs carries no spikes.
fn expected_input_spikes(kind: &LayerKind, idx: usize, rate: f64) -> f64 {
    match kind {
        LayerKind::Conv(spec) => {
            let padded = spec.padded_input();
            if idx == 0 {
                return padded.len() as f64;
            }
            let interior = if padded.h > 2 * spec.padding {
                (padded.h - 2 * spec.padding) * (padded.w - 2 * spec.padding) * padded.c
            } else {
                padded.len()
            };
            interior as f64 * rate
        }
        LayerKind::Linear(spec) => spec.in_features as f64 * rate,
    }
}
