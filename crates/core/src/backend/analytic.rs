//! The analytic backend: symbolic cost integration over the kernel IR.
//!
//! Every layer is lowered by the *same emitters* the cycle-level backend
//! uses — just symbolically, from the sample's expected firing rates
//! instead of a materialized spike workload — and the resulting
//! [`StreamProgram`](spikestream_ir::StreamProgram) is priced by the
//! [`CostIntegrator`]. There is no second copy of the kernel loop math
//! anywhere: analytic and cycle-level agree by construction, and the
//! `ir_equivalence` property tests pin the integrator against the
//! interpreter.

use spikestream_energy::Activity;
use spikestream_ir::ProgramCost;
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::{AerEvent, Layer, LayerKind};

use super::{ExecutionBackend, LayerSample, SampleContext};

/// Symbolic layer-timing backend (fast; used for full-batch figure runs).
/// Layer runtimes come from integrating the cost model over the same
/// stream programs the cycle-level backend interprets; spike counts and
/// footprints are the expected values implied by each sample's jittered
/// firing rate. In temporal mode the backend integrates one program per
/// `(timestep, layer)` from the temporal sparsity model's expected
/// per-step rates — the per-step programs carry the same membrane
/// load/store DMA phases and sparsity-scaled stream lengths the
/// cycle-level backend interprets from real spikes.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyticBackend;

impl ExecutionBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn run_sample(&self, ctx: &SampleContext<'_>, sample: usize) -> Vec<LayerSample> {
        let mut out = Vec::with_capacity(ctx.network.len() * ctx.timesteps());
        self.run_sample_into(ctx, sample, &mut out);
        out
    }

    fn run_sample_into(&self, ctx: &SampleContext<'_>, sample: usize, out: &mut Vec<LayerSample>) {
        // The integrator and executor are context-owned (hoisted into the
        // plan or engine): evaluating a sample clones neither the cluster
        // configuration nor the cost model.
        let integrator = ctx.integrator;
        let executor = ctx.executor;
        let n = ctx.network.len();
        let timesteps = ctx.timesteps();
        out.reserve(n * timesteps);
        for step in 0..timesteps {
            for (idx, layer) in ctx.network.layers().iter().enumerate() {
                let input_rate = ctx.sample_rate_at(idx, sample, step);
                let output_rate = ctx.sample_rate_at((idx + 1).min(n - 1), sample, step);
                // Plan-driven runs bind through the shared program cache —
                // on the serving steady state the lowering and the cost
                // integration both happened ahead of time (or once per
                // realized sparsity bucket), and the bound program's cost
                // is read through the cache's `Arc` without cloning. A bare
                // context lowers inline; both paths run the exact same
                // emitter + integrator, so the samples are bit-identical.
                let bound;
                let owned;
                let cost: &ProgramCost = match ctx.programs {
                    Some(cache) => {
                        bound = executor.bind_symbolic(
                            cache,
                            integrator,
                            idx,
                            layer,
                            input_rate,
                            output_rate,
                        );
                        &bound.cost
                    }
                    None => {
                        owned = integrator.integrate(&executor.lower_symbolic(
                            ctx.cluster,
                            layer,
                            input_rate,
                            output_rate,
                        ));
                        &owned
                    }
                };
                out.push(layer_sample(ctx, layer, input_rate, cost));
            }
        }
    }
}

fn layer_sample(
    ctx: &SampleContext<'_>,
    layer: &Layer,
    input_rate: f64,
    cost: &ProgramCost,
) -> LayerSample {
    let activity = Activity {
        cycles: cost.compute_cycles,
        int_instrs: cost.int_instrs.round() as u64,
        flops: cost.flops.round() as u64,
        dma_bytes: cost.dma_bytes_in + cost.dma_bytes_out,
        format: ctx.config.format,
    };
    let energy_j = ctx.energy.energy_j(&activity);
    // The dense-encoding special case keys on `encodes_input`, exactly like
    // the lowering dispatch and the cycle backend's executor.
    let encodes = layer.encodes_input;
    let kind = &layer.kind;
    let (csr, aer) = footprints(kind, encodes, input_rate);
    let rate = if encodes { input_rate } else { input_rate.clamp(0.0, 1.0) };
    LayerSample {
        cycles: cost.compute_cycles as f64,
        fpu_utilization: cost.fpu_utilization,
        ipc: cost.ipc,
        input_firing_rate: rate,
        input_spikes: expected_input_spikes(kind, encodes, input_rate),
        synops: expected_synops(kind, encodes, input_rate),
        energy_j,
        dma_bytes: (cost.dma_bytes_in + cost.dma_bytes_out) as f64,
        csr_footprint_bytes: csr,
        aer_footprint_bytes: aer,
    }
}

/// Expected synaptic operations under the sample's firing rate (the dense
/// encoding layer consumes every pixel).
fn expected_synops(kind: &LayerKind, encodes: bool, rate: f64) -> f64 {
    let rate = if encodes { 1.0 } else { rate.clamp(0.0, 1.0) };
    kind.dense_synops() as f64 * rate
}

/// Expected ifmap footprints under the sample's firing rate, matching the
/// formats of Fig. 3a (CSR-derived vs AER).
fn footprints(kind: &LayerKind, encodes: bool, rate: f64) -> (f64, f64) {
    let rate = if encodes { 1.0 } else { rate };
    match kind {
        LayerKind::Conv(spec) => {
            let padded = spec.padded_input();
            let spikes = padded.len() as f64 * rate;
            let csr =
                spikes * INDEX_BYTES as f64 + ((padded.h * padded.w + 1) * INDEX_BYTES) as f64;
            let aer = spikes * AerEvent::BYTES as f64;
            (csr, aer)
        }
        LayerKind::AvgPool(spec) => {
            let spikes = spec.input.len() as f64 * rate;
            let csr = spikes * INDEX_BYTES as f64
                + ((spec.input.h * spec.input.w + 1) * INDEX_BYTES) as f64;
            let aer = spikes * AerEvent::BYTES as f64;
            (csr, aer)
        }
        LayerKind::Linear(spec) => {
            let spikes = spec.in_features as f64 * rate;
            (spikes * INDEX_BYTES as f64 + 4.0, spikes * AerEvent::BYTES as f64)
        }
    }
}

/// Expected input spike count under the sample's firing rate. Mirrors the
/// workload generator: the encoding layer consumes every (dense) pixel, the
/// silent padded border of conv inputs carries no spikes, and pooling
/// inputs have no border.
fn expected_input_spikes(kind: &LayerKind, encodes: bool, rate: f64) -> f64 {
    match kind {
        LayerKind::Conv(spec) => {
            let padded = spec.padded_input();
            if encodes {
                return padded.len() as f64;
            }
            let interior = if padded.h > 2 * spec.padding {
                (padded.h - 2 * spec.padding) * (padded.w - 2 * spec.padding) * padded.c
            } else {
                padded.len()
            };
            interior as f64 * rate
        }
        LayerKind::AvgPool(spec) => spec.input.len() as f64 * rate,
        LayerKind::Linear(spec) => spec.in_features as f64 * rate,
    }
}
