//! Ahead-of-time compilation: [`Compiler`] → [`Plan`].
//!
//! The serving lifecycle separates the work that depends only on the
//! *network and configuration* from the work that depends on each
//! *request*:
//!
//! ```text
//! Compiler ──compile──▶ Plan ──open_session──▶ Session ──run──▶ ResultSink
//! (model + profile +    (validated config,     (worker scratch   (per-sample
//!  hardware models)      bound backend,         arenas, per-      LayerSamples,
//!                        AOT-lowered program    sample membrane   fleet stats;
//!                        cache)                 state)            fold ⇒ report)
//! ```
//!
//! [`Compiler::compile`] performs every per-model step exactly once:
//! config/profile validation, binding the execution backend as a
//! *plan-owned value* (no `&'static` registry), and ahead-of-time lowering
//! of every layer's symbolic [`StreamProgram`](spikestream_ir::StreamProgram)
//! into the plan-owned [`ProgramCache`] — keyed by `(layer, kernel class,
//! format, sparsity bucket)`, with realized sparsities served by
//! `Expected`-count re-binding instead of re-emission. The per-sample hot
//! path of a [`Session`] then only looks programs up.
//!
//! A [`Plan`] is immutable, `Send + Sync` (asserted at compile time below)
//! and cheap to share: wrap it in an `Arc` and open one session per worker
//! task, or serve one long-lived session request after request.

use snitch_arch::{ClusterConfig, CostModel};
use spikestream_energy::EnergyModel;
use spikestream_ir::{CostIntegrator, ProgramCache};
use spikestream_kernels::LayerExecutor;
use spikestream_snn::{FiringProfile, Network};

use crate::backend::{backend_for, ExecutionBackend, LayerSample, SampleContext};
use crate::engine::{InferenceConfig, TimingModel};
use crate::report::InferenceReport;
use crate::session::{Request, Session};

/// A validation failure of [`Compiler::compile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The firing profile does not cover every layer of the network.
    ProfileTooShort {
        /// Network name.
        network: String,
        /// Layers in the network.
        layers: usize,
        /// Rates in the profile.
        rates: usize,
    },
    /// The configured batch size is zero.
    EmptyBatch,
    /// A layer's neuron-model parameters fail validation.
    InvalidNeuronParams {
        /// Name of the offending layer.
        layer: String,
        /// Model spelling (`lif` | `izhikevich`).
        model: &'static str,
        /// The parameter-level failure.
        message: String,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::ProfileTooShort { network, layers, rates } => write!(
                f,
                "firing profile covers {rates} layers but network `{network}` has {layers}"
            ),
            CompileError::EmptyBatch => write!(f, "batch must be at least 1"),
            CompileError::InvalidNeuronParams { layer, model, message } => {
                write!(f, "layer `{layer}` has invalid {model} parameters: {message}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Builds [`Plan`]s: the one place in the workspace that assembles a
/// network, its firing profile, the hardware and energy models and an
/// execution backend into a servable unit. `Scenario` and the `spikestream`
/// CLI both construct engines through this type — neither assembles
/// backends by hand.
///
/// # Example
///
/// ```
/// use spikestream::{
///     Compiler, FpFormat, InferenceConfig, KernelVariant, Network, FiringProfile, Request,
/// };
///
/// let compiler = Compiler::new(Network::svgg11(7), FiringProfile::paper_svgg11());
/// let plan = compiler
///     .compile(InferenceConfig {
///         batch: 4,
///         ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
///     })
///     .unwrap();
/// let report = plan.open_session().infer(&Request::batch(4));
/// assert!(report.total_cycles() > 0.0);
/// ```
pub struct Compiler {
    network: Network,
    profile: FiringProfile,
    cluster: ClusterConfig,
    cost: CostModel,
    energy: EnergyModel,
    backend: Option<Box<dyn ExecutionBackend>>,
}

impl Compiler {
    /// A compiler for `network` under `profile` with the default cluster,
    /// cost and energy models.
    pub fn new(network: Network, profile: FiringProfile) -> Self {
        Compiler {
            network,
            profile,
            cluster: ClusterConfig::default(),
            cost: CostModel::default(),
            energy: EnergyModel::calibrated(),
            backend: None,
        }
    }

    /// Replace the cluster configuration.
    pub fn with_cluster(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Replace the cost model (used by the ablation experiments).
    pub fn with_cost_model(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Replace the energy model.
    pub fn with_energy_model(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// Bind an explicit execution backend instead of the built-in one the
    /// config's timing model selects. The plan *owns* the backend; this is
    /// the supported path for third-party backends under the serving API.
    pub fn with_backend(mut self, backend: Box<dyn ExecutionBackend>) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Compile `config` into a servable [`Plan`]: validate, bind the
    /// backend, and lower every layer's symbolic stream program into the
    /// plan-owned cache at the profile's steady-state rates.
    ///
    /// # Errors
    ///
    /// Returns a [`CompileError`] when the profile does not cover the
    /// network, the batch is empty, or any layer carries invalid
    /// neuron-model parameters.
    pub fn compile(self, config: InferenceConfig) -> Result<Plan, CompileError> {
        let Compiler { network, profile, cluster, cost, energy, backend } = self;
        if profile.len() < network.len() {
            return Err(CompileError::ProfileTooShort {
                network: network.name.clone(),
                layers: network.len(),
                rates: profile.len(),
            });
        }
        if config.batch == 0 {
            return Err(CompileError::EmptyBatch);
        }
        for layer in network.layers() {
            if let Err(message) = layer.neuron.validate() {
                return Err(CompileError::InvalidNeuronParams {
                    layer: layer.name.clone(),
                    model: layer.neuron.as_str(),
                    message,
                });
            }
        }
        let backend = backend.unwrap_or_else(|| backend_for(config.timing));

        // The plan owns one cost integrator and one layer executor: the
        // preload below and every per-sample evaluation of every session
        // share them through the [`SampleContext`], so the serving hot
        // path never re-clones the cluster configuration or cost model.
        let integrator = CostIntegrator::new(cluster.clone(), cost.clone());
        let executor = LayerExecutor::new(config.variant, config.format);

        // Ahead-of-time lowering: every layer's template program, emitted
        // and integrated once at the profile's steady-state rates. Runtime
        // bindings at realized sparsities re-bind these templates (or hit
        // them exactly); the per-sample loop never emits from scratch on
        // the serving steady state. Only symbolic (analytic-timing) plans
        // read the cache — cycle-level plans lower exactly, per input, so
        // warming would be pure waste for them.
        let programs = ProgramCache::new();
        if config.timing == TimingModel::Analytic {
            let last = network.len().saturating_sub(1);
            for (idx, layer) in network.layers().iter().enumerate() {
                let input_rate = profile.rate(idx);
                let output_rate = profile.rate((idx + 1).min(last));
                executor.preload_symbolic(
                    &programs,
                    &integrator,
                    idx,
                    layer,
                    input_rate,
                    output_rate,
                );
            }
        }

        Ok(Plan {
            network,
            profile,
            cluster,
            cost,
            energy,
            config,
            backend,
            programs,
            integrator,
            executor,
        })
    }
}

impl std::fmt::Debug for Compiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Compiler")
            .field("network", &self.network.name)
            .field("backend", &self.backend.as_ref().map(|b| b.name()))
            .finish_non_exhaustive()
    }
}

/// A compiled, immutable, servable inference plan: the validated
/// configuration, the plan-owned execution backend and the AOT-lowered
/// program cache. Open sessions against it to serve requests; every
/// session of a plan shares its cache.
pub struct Plan {
    network: Network,
    profile: FiringProfile,
    cluster: ClusterConfig,
    cost: CostModel,
    energy: EnergyModel,
    config: InferenceConfig,
    backend: Box<dyn ExecutionBackend>,
    programs: ProgramCache,
    integrator: CostIntegrator,
    executor: LayerExecutor,
}

// `Plan` must stay shareable across serving threads: backends are owned
// values (`Box<dyn ExecutionBackend>` with `Send + Sync` supertraits) and
// the program cache is internally synchronized. Checked at compile time.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Plan>();
};

impl Plan {
    /// The configuration this plan was compiled from.
    pub fn config(&self) -> &InferenceConfig {
        &self.config
    }

    /// The network being served.
    pub fn network(&self) -> &Network {
        &self.network
    }

    /// The firing profile driving workload generation.
    pub fn profile(&self) -> &FiringProfile {
        &self.profile
    }

    /// The cluster configuration.
    pub fn cluster_config(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The plan-owned execution backend.
    pub fn backend(&self) -> &dyn ExecutionBackend {
        self.backend.as_ref()
    }

    /// The plan-owned symbolic program cache (hit/rebind/emit counters
    /// included — see
    /// [`ProgramCache::counters`](spikestream_ir::ProgramCache::counters)).
    pub fn programs(&self) -> &ProgramCache {
        &self.programs
    }

    /// Open a long-lived serving session: worker scratch arenas and
    /// per-sample membrane state live in the session and are reused across
    /// every request it serves.
    pub fn open_session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// One-shot convenience: serve the plan's full configured batch through
    /// a throwaway session and fold the results into a report. Equivalent
    /// to `plan.open_session().infer(&Request::batch(plan.config().batch))`.
    pub fn run(&self) -> InferenceReport {
        self.open_session().infer(&Request::batch(self.config.batch))
    }

    /// The request-effective configuration: the compiled config with the
    /// request's timestep override applied (see [`Request::timesteps`]).
    pub fn effective_config(&self, request: &Request) -> InferenceConfig {
        match request.timesteps {
            Some(t) => self.config.temporal_steps(t),
            None => self.config,
        }
    }

    /// Fold a slot-major flat buffer of per-layer measurements (the layout
    /// a [`ReportSink`](crate::session::ResultSink) demultiplexer
    /// accumulates: `batch` samples × one [`LayerSample`] per layer per
    /// timestep) into the [`InferenceReport`] a bare session would produce
    /// for an equivalent request — the demux half of a coalescing gateway,
    /// which re-folds each client's slice of a shared run separately.
    pub fn fold_report(
        &self,
        request: &Request,
        flat: &[LayerSample],
        batch: usize,
    ) -> InferenceReport {
        let config = self.effective_config(request);
        InferenceReport::fold_batch(&self.network, self.clock_hz(), &config, flat, batch)
    }

    /// The shared per-sample evaluation context for an effective config,
    /// bound to the plan's program cache.
    pub(crate) fn context<'a>(&'a self, config: &'a InferenceConfig) -> SampleContext<'a> {
        SampleContext {
            network: &self.network,
            profile: &self.profile,
            cluster: &self.cluster,
            cost: &self.cost,
            energy: &self.energy,
            config,
            programs: Some(&self.programs),
            integrator: &self.integrator,
            executor: self.executor,
        }
    }

    /// Clock frequency used to convert cycles to seconds in reports.
    pub fn clock_hz(&self) -> f64 {
        self.cluster.clock_hz
    }
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan")
            .field("network", &self.network.name)
            .field("config", &self.config)
            .field("backend", &self.backend.name())
            .field("cached_programs", &self.programs.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FpFormat, KernelVariant};

    #[test]
    fn compile_validates_the_profile_against_the_network() {
        let compiler = Compiler::new(Network::svgg11(1), FiringProfile::uniform(3, 0.2));
        let err = compiler
            .compile(InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16))
            .unwrap_err();
        assert_eq!(err.to_string(), "firing profile covers 3 layers but network `S-VGG11` has 8");
    }

    #[test]
    fn compile_rejects_an_empty_batch() {
        let compiler = Compiler::new(Network::svgg11(1), FiringProfile::paper_svgg11());
        let config = InferenceConfig {
            batch: 0,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        };
        assert_eq!(compiler.compile(config).unwrap_err(), CompileError::EmptyBatch);
    }

    #[test]
    fn compile_rejects_invalid_neuron_parameters() {
        use spikestream_snn::{IzhiParams, LifParams, NeuronModel};

        let mut network = Network::svgg11(1);
        network
            .set_neuron_model(NeuronModel::Lif(LifParams { alpha: 1.5, ..LifParams::default() }));
        let err = Compiler::new(network, FiringProfile::paper_svgg11())
            .compile(InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16))
            .unwrap_err();
        match &err {
            CompileError::InvalidNeuronParams { layer, model, message } => {
                assert_eq!(*model, "lif");
                assert!(!layer.is_empty());
                assert!(message.contains("alpha"), "{message}");
            }
            other => panic!("expected InvalidNeuronParams, got {other:?}"),
        }
        assert!(err.to_string().contains("invalid lif parameters"), "{err}");

        let mut network = Network::svgg11(1);
        network.set_neuron_model(NeuronModel::Izhikevich(IzhiParams {
            v_threshold: -80.0,
            ..IzhiParams::regular_spiking()
        }));
        let err = Compiler::new(network, FiringProfile::paper_svgg11())
            .compile(InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16))
            .unwrap_err();
        assert!(err.to_string().contains("invalid izhikevich parameters"), "{err}");
        assert!(err.to_string().contains("reset potential"), "{err}");
    }

    #[test]
    fn compilation_preloads_one_template_per_layer() {
        let plan = Compiler::new(Network::svgg11(1), FiringProfile::paper_svgg11())
            .compile(InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16))
            .unwrap();
        assert_eq!(plan.programs().len(), plan.network().len());
        assert_eq!(plan.programs().counters().lookups(), 0, "preloads are not lookups");
        assert_eq!(plan.backend().name(), "analytic");
    }
}
