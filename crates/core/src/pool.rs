//! The persistent, parked worker pool behind [`Session`](crate::Session)
//! serving.
//!
//! Before this module existed, every multi-worker request paid OS thread
//! spawn/join inside the scoped chunk-stealing executor
//! (`sharding::steal_chunks`). At the compile-once/serve-forever scale —
//! repeated 512-sample requests complete in tens of microseconds — that
//! churn had become the dominant serving cost. A [`WorkerPool`] removes it:
//! N-1 OS threads are created once, lazily, on the first request that
//! clamps to more than one worker, and *parked* on a condvar between
//! requests. Dispatching a request is one mutex lock, an epoch bump and a
//! `notify_all`; the calling thread itself serves worker slot 0, so the
//! single-threaded fast path of a request never crosses a thread boundary
//! at all.
//!
//! The wakeup protocol is a monotonically increasing **epoch** guarded by
//! one mutex: a parked worker runs exactly one job per epoch it observes,
//! and a worker whose slot is not needed by the current request (requests
//! clamp their worker count to the available chunks) re-parks without
//! touching the job. The dispatcher blocks until every participating slot
//! has checked in, which is what makes the one `unsafe` lifetime erasure
//! in `WorkerPool::run_stealing` sound: the job closure — which borrows
//! the session's arenas, the request's context and the caller's sink —
//! cannot be observed by any pool thread after the dispatch returns.
//!
//! **Panic policy:** a panicking job (a backend panic, a poisoned sink)
//! is caught on the worker that raised it, the remaining workers drain
//! the claim loop, and the first payload is re-raised on the calling
//! thread once every slot has finished. The pool's own state is never
//! left locked or mid-epoch, so the *next* request serves normally — a
//! panicking backend costs its request, not the session.
//!
//! Counters ([`PoolStats`]) make the steady state observable: `spawned`
//! must stay flat once a session is warm (tests assert it), `wakeups`
//! counts every park→run transition, `steals` counts chunks claimed
//! through the pooled loop, and `park_ns` accumulates time threads spent
//! parked rather than burning cycles.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// Observable counters of a [`WorkerPool`], surfaced through
/// [`Session::stats`](crate::Session::stats).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// OS threads created since the session opened. Stays flat across
    /// requests once the pool is warm — the whole point of the pool.
    pub spawned: u64,
    /// Multi-worker requests dispatched through the pool.
    pub jobs: u64,
    /// Park→run transitions: how many times a parked worker woke up with
    /// work to do (one per participating pool thread per job).
    pub wakeups: u64,
    /// Chunks claimed through the pooled chunk-stealing loop.
    pub steals: u64,
    /// Total time pool threads spent parked on the job condvar, in
    /// nanoseconds. Grows while the session is idle; the serving cost of
    /// a request is what happens between parks.
    pub park_ns: u64,
}

/// The job slot handed from the dispatcher to the parked workers.
///
/// The pointee is the dispatch closure on the *caller's stack*; see the
/// safety argument in [`WorkerPool::run_stealing`].
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointer is only dereferenced by workers between the epoch
// bump that publishes it and the `active == 0` handshake that the
// dispatcher blocks on; the dispatcher keeps the pointee alive (and
// unmoved) for that entire window.
unsafe impl Send for Job {}

/// Mutex-guarded dispatch state shared between the session thread and the
/// parked workers.
struct State {
    /// Bumped once per dispatched job; workers run one job per epoch.
    epoch: u64,
    /// The current job, `Some` only while an epoch is being served.
    job: Option<Job>,
    /// Worker slots `0..participants` serve the current epoch (slot 0 is
    /// the calling thread); pool threads with higher slots re-park.
    participants: usize,
    /// Participating *pool* threads that have not yet finished the job.
    active: usize,
    /// First panic payload raised by a pool thread during this epoch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    /// Set once, by `Drop`: workers exit instead of re-parking.
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here between jobs.
    work: Condvar,
    /// The dispatcher blocks here until `active` returns to zero.
    done: Condvar,
    wakeups: AtomicU64,
    park_ns: AtomicU64,
}

/// A long-lived pool of parked worker threads owned by one
/// [`Session`](crate::Session).
///
/// Threads are spawned lazily — opening a session costs no threads, a
/// session that only ever serves sequential requests costs no threads,
/// and a session serving at `W` workers costs exactly `W - 1` threads for
/// its whole lifetime. Dropping the pool (with its session) parks nothing:
/// shutdown is flagged, the workers wake, exit their loop and are joined.
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    // Atomics like the `Shared` counters — not for the pool's own threads
    // (only the dispatcher mutates them) but so a stats mirror handed to a
    // monitoring thread (`Session::stats_handle`) can read a coherent
    // snapshot without ever contending with a dispatch in progress.
    spawned: AtomicU64,
    jobs: AtomicU64,
    steals: AtomicU64,
}

impl WorkerPool {
    /// A pool with no threads; workers spawn on first multi-worker use.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    epoch: 0,
                    job: None,
                    participants: 0,
                    active: 0,
                    panic: None,
                    shutdown: false,
                }),
                work: Condvar::new(),
                done: Condvar::new(),
                wakeups: AtomicU64::new(0),
                park_ns: AtomicU64::new(0),
            }),
            handles: Vec::new(),
            spawned: AtomicU64::new(0),
            jobs: AtomicU64::new(0),
            steals: AtomicU64::new(0),
        }
    }

    /// Pool threads currently parked or serving.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            spawned: self.spawned.load(Ordering::Relaxed),
            jobs: self.jobs.load(Ordering::Relaxed),
            wakeups: self.shared.wakeups.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            park_ns: self.shared.park_ns.load(Ordering::Relaxed),
        }
    }

    /// Run the chunk-stealing claim loop over worker slots `0..workers`:
    /// every slot claims chunk indices `0..chunks` from a shared atomic
    /// cursor and runs `work(slot, chunk)` for each claim — the same loop
    /// shape as the legacy scoped executor (`sharding::steal_chunks`),
    /// minus the per-request thread spawn/join. Slot 0 runs on the calling
    /// thread; slots `1..workers` run on parked pool threads, spawned on
    /// first use and reused for every later request (growing if a later
    /// request clamps to more workers).
    ///
    /// Blocks until every slot has drained the cursor. If any slot
    /// panics, the remaining slots finish (or panic in turn on shared
    /// poisoned state), and the first payload is re-raised here — the
    /// pool itself stays serviceable for the next request.
    pub(crate) fn run_stealing(
        &mut self,
        workers: usize,
        chunks: usize,
        work: impl Fn(usize, usize) + Sync,
    ) {
        let cursor = AtomicUsize::new(0);
        let job = |slot: usize| loop {
            let chunk = cursor.fetch_add(1, Ordering::Relaxed);
            if chunk >= chunks {
                break;
            }
            work(slot, chunk);
        };

        if workers <= 1 {
            job(0);
            self.steals.fetch_add(chunks as u64, Ordering::Relaxed);
            return;
        }
        self.ensure_spawned(workers - 1);
        self.jobs.fetch_add(1, Ordering::Relaxed);

        let erased: &(dyn Fn(usize) + Sync) = &job;
        // SAFETY: we erase the closure's lifetime to park it in the shared
        // job slot. Soundness rests on the handshake below: this function
        // does not return — not even by unwinding, since the caller-slot
        // job runs under `catch_unwind` — until `active == 0`, i.e. until
        // every pool thread that read the pointer has finished with it.
        let erased = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(erased)
        };
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            debug_assert!(state.job.is_none() && state.active == 0, "one job at a time");
            state.epoch += 1;
            state.job = Some(Job(erased as *const _));
            state.participants = workers;
            state.active = workers - 1;
            state.panic = None;
            self.shared.work.notify_all();
        }

        // The calling thread is worker slot 0 — its share of the claim
        // loop needs no wakeup and no handoff.
        let caller = catch_unwind(AssertUnwindSafe(|| job(0)));

        // Wait for every participating pool thread before the job closure
        // (and everything it borrows) can leave scope.
        let worker_panic = {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            while state.active != 0 {
                state = self.shared.done.wait(state).expect("pool state poisoned");
            }
            state.job = None;
            state.panic.take()
        };
        self.steals.fetch_add(chunks as u64, Ordering::Relaxed);

        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            std::panic::resume_unwind(payload);
        }
    }

    /// Grow the pool to at least `threads` parked workers.
    fn ensure_spawned(&mut self, threads: usize) {
        while self.handles.len() < threads {
            // Slot 0 is the calling thread, so pool thread k serves slot
            // k + 1.
            let slot = self.handles.len() + 1;
            let shared = Arc::clone(&self.shared);
            let handle = std::thread::Builder::new()
                .name(format!("spikestream-serve-{slot}"))
                .spawn(move || worker_loop(&shared, slot))
                .expect("failed to spawn session worker thread");
            self.handles.push(handle);
            self.spawned.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Default for WorkerPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("pool state poisoned");
            state.shutdown = true;
            self.shared.work.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.handles.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// The parked worker: wait for a fresh epoch, run the job for this slot,
/// check back in, re-park.
fn worker_loop(shared: &Shared, slot: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut state = shared.state.lock().expect("pool state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if state.epoch != seen {
                    if let Some(job) = state.job {
                        seen = state.epoch;
                        if slot < state.participants {
                            break job;
                        }
                        // This request clamped to fewer workers than the
                        // pool holds: not our epoch, back to the condvar.
                    }
                }
                let parked = Instant::now();
                state = shared.work.wait(state).expect("pool state poisoned");
                shared.park_ns.fetch_add(parked.elapsed().as_nanos() as u64, Ordering::Relaxed);
            }
        };
        shared.wakeups.fetch_add(1, Ordering::Relaxed);

        // SAFETY: `job` was published this epoch; the dispatcher blocks on
        // `active == 0` below before invalidating the pointee.
        let task = unsafe { &*job.0 };
        let result = catch_unwind(AssertUnwindSafe(|| task(slot)));

        let mut state = shared.state.lock().expect("pool state poisoned");
        if let Err(payload) = result {
            // Keep the first payload; later ones are usually knock-on
            // poisoned-lock panics from sibling workers.
            state.panic.get_or_insert(payload);
        }
        state.active -= 1;
        if state.active == 0 {
            shared.done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn a_fresh_pool_owns_no_threads() {
        let pool = WorkerPool::new();
        assert_eq!(pool.threads(), 0);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn every_chunk_is_claimed_exactly_once() {
        let mut pool = WorkerPool::new();
        let claims: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
        pool.run_stealing(4, claims.len(), |_, chunk| {
            claims[chunk].fetch_add(1, Ordering::Relaxed);
        });
        assert!(claims.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert_eq!(pool.threads(), 3);
        assert_eq!(pool.stats().steals, 97);
        assert_eq!(pool.stats().wakeups, 3);
    }

    #[test]
    fn single_worker_dispatch_stays_on_the_calling_thread() {
        let mut pool = WorkerPool::new();
        let caller = std::thread::current().id();
        pool.run_stealing(1, 5, |slot, _| {
            assert_eq!(slot, 0);
            assert_eq!(std::thread::current().id(), caller);
        });
        assert_eq!(pool.threads(), 0, "sequential work spawns nothing");
    }

    #[test]
    fn the_pool_grows_but_never_respawns_warm_threads() {
        let mut pool = WorkerPool::new();
        pool.run_stealing(2, 8, |_, _| {});
        assert_eq!(pool.stats().spawned, 1);
        pool.run_stealing(4, 8, |_, _| {});
        assert_eq!(pool.stats().spawned, 3, "growing 2 -> 4 workers adds two threads");
        for _ in 0..16 {
            pool.run_stealing(4, 8, |_, _| {});
        }
        assert_eq!(pool.stats().spawned, 3, "warm requests spawn nothing");
        assert_eq!(pool.stats().jobs, 18);
    }

    #[test]
    fn shrunk_requests_leave_extra_workers_parked() {
        let mut pool = WorkerPool::new();
        pool.run_stealing(8, 32, |_, _| {});
        let wakeups = pool.stats().wakeups;
        assert_eq!(wakeups, 7);
        // A 2-worker request wakes exactly one pool thread with work; the
        // other six re-park without claiming anything.
        let slots_seen = Mutex::new(Vec::new());
        pool.run_stealing(2, 32, |slot, _| {
            slots_seen.lock().unwrap().push(slot);
        });
        assert!(slots_seen.into_inner().unwrap().iter().all(|&s| s < 2));
        assert_eq!(pool.stats().wakeups, wakeups + 1);
    }

    #[test]
    fn a_panicking_job_propagates_and_the_pool_recovers() {
        let mut pool = WorkerPool::new();
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run_stealing(4, 16, |_, chunk| {
                if chunk == 7 {
                    panic!("chunk 7 exploded");
                }
            });
        }));
        let payload = result.expect_err("the job panic must reach the dispatcher");
        let message = payload
            .downcast_ref::<&str>()
            .copied()
            .map(String::from)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert!(message.contains("chunk 7 exploded"), "original payload survives: {message}");

        // The epoch closed cleanly: the same pool serves the next request.
        let ran = AtomicU32::new(0);
        pool.run_stealing(4, 16, |_, _| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn drop_joins_all_workers() {
        let mut pool = WorkerPool::new();
        pool.run_stealing(8, 64, |_, _| {});
        drop(pool); // must not hang or leak threads
    }
}
