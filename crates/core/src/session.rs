//! Long-lived serving sessions: [`Session`], [`Request`], [`ResultSink`].
//!
//! A [`Session`] is the per-process serving handle of a compiled
//! [`Plan`]. It owns what a *running* service owns — one
//! [`WorkerArena`] per worker slot (the per-sample staging buffers, the
//! kernels' compressed-input scratch and the persistent membrane state of
//! temporal samples), the parked [`WorkerPool`] threads
//! that serve multi-worker requests without per-request
//! spawn/join, and the reusable batch bookkeeping — and serves
//! [`Request`]s against the plan's immutable, shared program cache.
//!
//! Results *stream*: every completed sample is handed to a caller-supplied
//! [`ResultSink`] as soon as its worker finishes it, instead of
//! materializing one monolithic report. [`InferenceReport`] is literally a
//! fold over that stream — [`Session::infer`] plugs in the folding sink
//! and returns the same bit-identical report the legacy `Engine::run*`
//! entry points produced (they are thin wrappers over exactly this path).
//!
//! Determinism: samples are seeded independently and land in their own
//! slot of the fold, so the report is independent of worker scheduling.
//! The *callback order* of a parallel session is not deterministic;
//! order-sensitive sinks should serve sequential requests
//! ([`Request::sequential`]).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::backend::{ExecutionBackend, LayerSample, WorkerArena};
use crate::plan::Plan;
use crate::pool::{PoolStats, WorkerPool};
use crate::report::{InferenceReport, ShardSummary};
use crate::sharding::{attribute_shards, clamp_workers};

/// One serving request: which batch samples to evaluate and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Sample indices to evaluate (each is an independently seeded batch
    /// sample of the plan's workload).
    pub samples: Range<usize>,
    /// Temporal-pipeline override: run each sample for this many timesteps
    /// instead of the compiled config's count. On a synthetic plan this
    /// switches the request to direct-coded temporal inference, mirroring
    /// the CLI's `--timesteps` flag.
    pub timesteps: Option<usize>,
    /// Attribute the request to a fleet of N simulated cluster shards and
    /// deliver the [`ShardSummary`] through [`ResultSink::on_fleet`].
    pub shards: Option<usize>,
    /// Host worker override: `Some(1)` serves the request strictly
    /// sequentially on the calling thread (deterministic callback order);
    /// `None` uses the session default.
    pub workers: Option<usize>,
}

impl Request {
    /// The full-batch request over samples `0..batch` (at least one).
    pub fn batch(batch: usize) -> Self {
        Request { samples: 0..batch.max(1), timesteps: None, shards: None, workers: None }
    }

    /// A request over an explicit sample range.
    pub fn samples(samples: Range<usize>) -> Self {
        let samples = if samples.is_empty() { samples.start..samples.start + 1 } else { samples };
        Request { samples, timesteps: None, shards: None, workers: None }
    }

    /// Attribute the request to `shards` simulated cluster shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Override the temporal timestep count.
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        self.timesteps = Some(timesteps.max(1));
        self
    }

    /// Serve strictly sequentially on the calling thread.
    pub fn sequential(mut self) -> Self {
        self.workers = Some(1);
        self
    }

    /// Override the host worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// Number of samples this request evaluates.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the request is empty (never: constructors clamp to one).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// A streaming consumer of session results.
///
/// Sinks receive each sample's measurements as soon as a worker completes
/// them. Implementations must tolerate arbitrary arrival order for
/// parallel requests (each callback carries its sample index); sequential
/// requests call back in ascending sample order.
pub trait ResultSink: Send {
    /// One completed batch sample: `layers` holds one [`LayerSample`] per
    /// network layer per timestep, step-major — exactly the layout of
    /// [`ExecutionBackend::run_sample`].
    fn on_sample(&mut self, sample: usize, layers: &[LayerSample]);

    /// One completed sample with its *position* in the request: `slot` is
    /// the index into the request's sample sequence (`0..request.len()`),
    /// `sample` the batch sample that position names. For range requests
    /// `sample == request.samples.start + slot`, so the default forwards
    /// to [`ResultSink::on_sample`]; gather requests
    /// ([`Session::run_gather`]) may evaluate the *same* sample at several
    /// positions (two coalesced clients asking for sample 0), and a
    /// demultiplexing sink must key on `slot`, not `sample`, to route each
    /// result to its requester.
    fn on_slot(&mut self, _slot: usize, sample: usize, layers: &[LayerSample]) {
        self.on_sample(sample, layers);
    }

    /// Fleet statistics of a sharded request, delivered once after the
    /// last sample. Not called for unsharded requests.
    fn on_fleet(&mut self, _summary: &ShardSummary) {}
}

/// A [`ResultSink`] adapter over a closure (sample index + samples).
pub struct FnSink<F: FnMut(usize, &[LayerSample]) + Send>(pub F);

impl<F: FnMut(usize, &[LayerSample]) + Send> ResultSink for FnSink<F> {
    fn on_sample(&mut self, sample: usize, layers: &[LayerSample]) {
        (self.0)(sample, layers)
    }
}

/// The folding sink behind [`Session::infer`]: collects every sample into
/// its slot of one flat buffer (so the fold is independent of arrival
/// order) and folds the buffer into an [`InferenceReport`] — the legacy
/// monolithic report is this fold, nothing more.
struct ReportSink<'a> {
    units: usize,
    flat: &'a mut Vec<LayerSample>,
    fleet: Option<ShardSummary>,
}

impl ResultSink for ReportSink<'_> {
    fn on_sample(&mut self, _sample: usize, _layers: &[LayerSample]) {
        unreachable!("the folding sink is slot-addressed");
    }

    fn on_slot(&mut self, slot: usize, _sample: usize, layers: &[LayerSample]) {
        let at = slot * self.units;
        debug_assert_eq!(layers.len(), self.units, "one LayerSample per layer per timestep");
        self.flat[at..at + self.units].copy_from_slice(layers);
    }

    fn on_fleet(&mut self, summary: &ShardSummary) {
        self.fleet = Some(summary.clone());
    }
}

/// The sample positions one serving call evaluates: a contiguous range
/// ([`Request::samples`]) or an explicit, possibly non-contiguous (and
/// possibly repeating) gather list ([`Session::run_gather`]).
enum SampleIds<'a> {
    Range(Range<usize>),
    List(&'a [usize]),
}

impl SampleIds<'_> {
    fn len(&self) -> usize {
        match self {
            SampleIds::Range(r) => r.len(),
            SampleIds::List(l) => l.len(),
        }
    }

    fn get(&self, slot: usize) -> usize {
        match self {
            SampleIds::Range(r) => r.start + slot,
            SampleIds::List(l) => l[slot],
        }
    }
}

/// A long-lived serving session over a compiled [`Plan`].
///
/// # Example
///
/// ```
/// use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant, Request};
///
/// let engine = Engine::svgg11(1);
/// let plan = engine.compile(&InferenceConfig {
///     batch: 8,
///     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
/// });
/// let mut session = plan.open_session();
/// // Serve the same plan request after request — lowering happened once,
/// // at compile time, and the session's arenas are reused throughout.
/// let a = session.infer(&Request::batch(8));
/// let b = session.infer(&Request::batch(8).with_shards(4));
/// assert_eq!(a.to_json(), b.clone().without_shard_stats().to_json());
/// assert_eq!(b.shards.unwrap().shards.len(), 4);
/// ```
pub struct Session<'p> {
    plan: &'p Plan,
    arenas: Vec<WorkerArena>,
    pool: WorkerPool,
    workers: usize,
    chunk: usize,
    spawn_per_request: bool,
    flat: Vec<LayerSample>,
    cycles: Vec<f64>,
    mirror: SessionStatsHandle,
}

impl<'p> Session<'p> {
    pub(crate) fn new(plan: &'p Plan) -> Self {
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Session {
            plan,
            arenas: Vec::new(),
            pool: WorkerPool::new(),
            workers: host,
            chunk: 4,
            spawn_per_request: false,
            flat: Vec::new(),
            cycles: Vec::new(),
            mirror: SessionStatsHandle::default(),
        }
    }

    /// The plan this session serves.
    pub fn plan(&self) -> &'p Plan {
        self.plan
    }

    /// Override the default host worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Override the number of samples per stolen chunk (clamped to at
    /// least 1).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Route multi-worker requests through the legacy spawn-per-request
    /// scoped executor instead of the session's parked [`WorkerPool`].
    ///
    /// This exists as the measurable baseline for the `serve_latency`
    /// bench (the thread-churn cost the pool exists to remove) and for
    /// A/B debugging; serving should always use the default pooled path.
    /// Results are bit-identical either way.
    pub fn with_spawn_per_request(mut self, spawn: bool) -> Self {
        self.spawn_per_request = spawn;
        self
    }

    /// Total samples evaluated and arena-buffer growth events across this
    /// session's worker arenas — the observable "no allocation on the
    /// serving steady state" counters.
    pub fn arena_stats(&self) -> (u64, u64) {
        self.arenas.iter().fold((0, 0), |(r, g), a| (r + a.runs(), g + a.grows()))
    }

    /// Steady-state counters of this session: arena reuse (samples run,
    /// buffer growths) plus the worker-pool counters (`spawned` threads,
    /// `wakeups`, `steals`, `park_ns`). After warm-up, `grows` and
    /// `pool.spawned` must stay flat across requests — no allocation and
    /// no thread creation on the serving hot path.
    ///
    /// ```
    /// use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant, Request};
    ///
    /// let engine = Engine::svgg11(1);
    /// let plan = engine.compile(&InferenceConfig {
    ///     batch: 16,
    ///     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    /// });
    /// let mut session = plan.open_session();
    /// session.infer(&Request::batch(16).with_workers(4));
    /// let warm = session.stats();
    /// assert_eq!(warm.pool.spawned, 3, "slot 0 is the calling thread");
    /// session.infer(&Request::batch(16).with_workers(4));
    /// assert_eq!(session.stats().pool.spawned, warm.pool.spawned);
    /// ```
    pub fn stats(&self) -> SessionStats {
        let (runs, grows) = self.arena_stats();
        SessionStats { runs, grows, pool: self.pool.stats() }
    }

    /// A cloneable, `Send + Sync` handle onto this session's steady-state
    /// counters that stays readable while the session itself is serving.
    ///
    /// [`Session::stats`] needs `&self`, which a serving dispatcher that
    /// holds the session `&mut` for the duration of a batch cannot share;
    /// the handle reads a set of interior atomic mirrors instead, updated
    /// by the session at the end of every request, so a monitoring thread
    /// (a gateway's stats endpoint) never contends with serving — a
    /// snapshot is a handful of relaxed loads and reflects the state as of
    /// the last completed request.
    pub fn stats_handle(&self) -> SessionStatsHandle {
        self.mirror.clone()
    }

    /// The mirror snapshot behind [`Session::stats_handle`]: identical to
    /// [`Session::stats`] between requests, and never blocks.
    pub fn stats_snapshot(&self) -> SessionStats {
        self.mirror.snapshot()
    }

    /// Store the current counters into the atomic mirror the stats
    /// handles read. Called at the end of every serving call.
    fn publish_stats(&self) {
        self.mirror.publish(self.stats());
    }

    /// Serve `request`, streaming every completed sample into `sink`.
    pub fn run(&mut self, request: &Request, sink: &mut dyn ResultSink) {
        self.run_with_backend(self.plan.backend(), request, sink)
    }

    /// Serve `request` and fold the stream into an [`InferenceReport`].
    pub fn infer(&mut self, request: &Request) -> InferenceReport {
        self.infer_with_backend(self.plan.backend(), request)
    }

    /// Serve an explicit — possibly non-contiguous, possibly repeating —
    /// list of batch sample indices with the options of `request`
    /// (`request.samples` itself is ignored), streaming every completed
    /// sample into `sink` via [`ResultSink::on_slot`] with its position in
    /// `samples`.
    ///
    /// This is the serving entry point of a coalescing gateway: several
    /// clients' sample lists are concatenated into one gather list, the
    /// whole batch runs as one sharded request over the session's arenas
    /// and pool, and the sink demultiplexes results back per client by
    /// slot. Each evaluated sample is bit-identical to serving it alone
    /// through [`Session::run`] — samples are independently seeded, so
    /// batch composition can never change a result.
    pub fn run_gather(&mut self, request: &Request, samples: &[usize], sink: &mut dyn ResultSink) {
        self.serve(self.plan.backend(), request, SampleIds::List(samples), sink)
    }

    /// [`Session::run_gather`] folded into an [`InferenceReport`] over the
    /// listed samples (in list order) — the report a bare session would
    /// produce for an equivalent range request.
    pub fn infer_gather(&mut self, request: &Request, samples: &[usize]) -> InferenceReport {
        self.fold(self.plan.backend(), request, SampleIds::List(samples))
    }

    /// [`Session::run`] with an explicit, caller-borrowed backend — the
    /// serving path for third-party backends that are not bound into the
    /// plan (see [`Compiler::with_backend`](crate::Compiler::with_backend)
    /// for the owned alternative).
    pub fn run_with_backend(
        &mut self,
        backend: &dyn ExecutionBackend,
        request: &Request,
        sink: &mut dyn ResultSink,
    ) {
        self.serve(backend, request, SampleIds::Range(request.samples.clone()), sink)
    }

    /// The one serving loop behind every entry point: evaluate the sample
    /// at each position of `ids` and stream results into `sink`.
    fn serve(
        &mut self,
        backend: &dyn ExecutionBackend,
        request: &Request,
        ids: SampleIds<'_>,
        sink: &mut dyn ResultSink,
    ) {
        let config = self.plan.effective_config(request);
        let batch = ids.len();

        self.cycles.clear();
        self.cycles.resize(batch, 0.0);
        // The one shared sizing policy (`sharding::clamp_workers`): never
        // run more workers than there are chunks to steal.
        let chunks = batch.div_ceil(self.chunk);
        let workers = clamp_workers(request.workers.unwrap_or(self.workers), chunks);
        // Worker-count growth grows the arenas and the pool together: the
        // arenas here, the pool threads inside `run_stealing` on dispatch.
        if self.arenas.len() < workers {
            self.arenas.resize_with(workers, WorkerArena::new);
        }

        let ctx = self.plan.context(&config);
        if workers == 1 {
            // Strictly sequential: ascending slot order on this thread.
            let arena = &mut self.arenas[0];
            for i in 0..batch {
                let sample = ids.get(i);
                let layers = arena.run_sample(backend, &ctx, sample);
                self.cycles[i] = layers.iter().map(|l| l.cycles).sum();
                sink.on_slot(i, sample, layers);
            }
        } else {
            // The chunk-stealing claim loop over the session's parked
            // worker pool; results stream through one serialized sink
            // handle as they complete. Delivery is a per-sample critical
            // section — a small copy for the folding sink, cheap next to
            // evaluating the sample; sinks needing lock-free delivery at
            // scale can drive `BatchScheduler`'s disjoint-window scheme
            // instead.
            let shared = Mutex::new((&mut *sink, self.cycles.as_mut_slice()));
            let chunk = self.chunk;
            let ids = &ids;
            let run_chunk = |arena: &mut WorkerArena, w: usize| {
                let start = w * chunk;
                let end = (start + chunk).min(batch);
                for i in start..end {
                    let sample = ids.get(i);
                    let layers = arena.run_sample(backend, &ctx, sample);
                    let cycles: f64 = layers.iter().map(|l| l.cycles).sum();
                    let mut guard = shared.lock().expect("result sink poisoned");
                    let (sink, cycle_slots) = &mut *guard;
                    cycle_slots[i] = cycles;
                    sink.on_slot(i, sample, layers);
                }
            };
            if self.spawn_per_request {
                // Benchmark baseline: the legacy scoped executor, paying
                // thread spawn/join on every request.
                crate::sharding::steal_chunks(chunks, &mut self.arenas[..workers], run_chunk);
            } else {
                // Worker slot `s` owns arena `s` for the whole request, so
                // per-worker kernel scratch and membrane buffers keep
                // their locality across requests exactly as before; the
                // mutexes only hand the `&mut` arenas across the parked
                // threads and are each locked once, by their own slot.
                let slots: Vec<Mutex<&mut WorkerArena>> =
                    self.arenas[..workers].iter_mut().map(Mutex::new).collect();
                self.pool.run_stealing(workers, chunks, |slot, w| {
                    let arena = &mut *slots[slot].lock().expect("arena slot poisoned");
                    run_chunk(arena, w);
                });
            }
        }

        // Deterministic fleet attribution in simulated time: a pure
        // function of the per-sample cycle totals, identical no matter how
        // the host threads raced (and identical to the legacy
        // `run_sharded` batch scheduler).
        if let Some(shards) = request.shards {
            sink.on_fleet(&attribute_shards(&self.cycles, shards));
        }
        self.publish_stats();
    }

    /// [`Session::infer`] with an explicit backend.
    pub fn infer_with_backend(
        &mut self,
        backend: &dyn ExecutionBackend,
        request: &Request,
    ) -> InferenceReport {
        self.fold(backend, request, SampleIds::Range(request.samples.clone()))
    }

    /// Serve `ids` and fold the stream into an [`InferenceReport`].
    fn fold(
        &mut self,
        backend: &dyn ExecutionBackend,
        request: &Request,
        ids: SampleIds<'_>,
    ) -> InferenceReport {
        let config = self.plan.effective_config(request);
        let units = self.plan.network().len() * config.timesteps();
        let batch = ids.len();

        let mut flat = std::mem::take(&mut self.flat);
        flat.clear();
        flat.resize(batch * units, LayerSample::default());
        let mut sink = ReportSink { units, flat: &mut flat, fleet: None };
        self.serve(backend, request, ids, &mut sink);

        let fleet = sink.fleet.take();
        let mut report = InferenceReport::fold_batch(
            self.plan.network(),
            self.plan.clock_hz(),
            &config,
            &flat,
            batch,
        );
        report.shards = fleet;
        self.flat = flat;
        report
    }
}

/// Steady-state serving counters of a [`Session`] (see
/// [`Session::stats`]): arena reuse plus worker-pool activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SessionStats {
    /// Total samples evaluated across the session's worker arenas.
    pub runs: u64,
    /// Arena buffer growth events; flat after warm-up.
    pub grows: u64,
    /// Parked worker-pool counters; `pool.spawned` is flat after warm-up.
    pub pool: PoolStats,
}

/// A cloneable, lock-free view onto a [`Session`]'s counters (see
/// [`Session::stats_handle`]). The session publishes into the shared
/// atomic cells at the end of every serving call; readers snapshot with
/// relaxed loads and never touch the session itself, so a stats poll
/// can run concurrently with serving without contending on anything.
#[derive(Clone, Debug, Default)]
pub struct SessionStatsHandle {
    cells: Arc<StatsCells>,
}

#[derive(Debug, Default)]
struct StatsCells {
    runs: AtomicU64,
    grows: AtomicU64,
    spawned: AtomicU64,
    jobs: AtomicU64,
    wakeups: AtomicU64,
    steals: AtomicU64,
    park_ns: AtomicU64,
}

impl SessionStatsHandle {
    /// The counters as of the last completed request. All-zero before the
    /// first request finishes.
    pub fn snapshot(&self) -> SessionStats {
        let c = &*self.cells;
        SessionStats {
            runs: c.runs.load(Ordering::Relaxed),
            grows: c.grows.load(Ordering::Relaxed),
            pool: PoolStats {
                spawned: c.spawned.load(Ordering::Relaxed),
                jobs: c.jobs.load(Ordering::Relaxed),
                wakeups: c.wakeups.load(Ordering::Relaxed),
                steals: c.steals.load(Ordering::Relaxed),
                park_ns: c.park_ns.load(Ordering::Relaxed),
            },
        }
    }

    fn publish(&self, stats: SessionStats) {
        let c = &*self.cells;
        c.runs.store(stats.runs, Ordering::Relaxed);
        c.grows.store(stats.grows, Ordering::Relaxed);
        c.spawned.store(stats.pool.spawned, Ordering::Relaxed);
        c.jobs.store(stats.pool.jobs, Ordering::Relaxed);
        c.wakeups.store(stats.pool.wakeups, Ordering::Relaxed);
        c.steals.store(stats.pool.steals, Ordering::Relaxed);
        c.park_ns.store(stats.pool.park_ns, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (runs, grows) = self.arena_stats();
        f.debug_struct("Session")
            .field("plan", &self.plan.network().name)
            .field("workers", &self.workers)
            .field("arena_runs", &runs)
            .field("arena_grows", &grows)
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, FpFormat, InferenceConfig, KernelVariant};

    fn plan() -> crate::Plan {
        Engine::svgg11(3).compile(&InferenceConfig {
            batch: 12,
            seed: 0xFEED,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        })
    }

    #[test]
    fn request_constructors_clamp_and_build() {
        assert_eq!(Request::batch(0).samples, 0..1);
        assert_eq!(Request::samples(5..5).samples, 5..6);
        let r = Request::batch(8).with_shards(0).with_timesteps(0).sequential();
        assert_eq!((r.shards, r.timesteps, r.workers), (Some(1), Some(1), Some(1)));
        assert_eq!(r.len(), 8);
        assert!(!r.is_empty());
    }

    #[test]
    fn a_manually_built_empty_request_folds_to_a_zero_report() {
        // The constructors clamp to one sample, but `Request` fields are
        // public; an empty range must fold gracefully, not panic.
        let plan = plan();
        let empty = Request { samples: 3..3, timesteps: None, shards: None, workers: None };
        assert!(empty.is_empty());
        let report = plan.open_session().infer(&empty);
        assert_eq!(report.batch, 0);
        assert_eq!(report.layers.len(), 8);
        assert_eq!(report.total_cycles(), 0.0);
    }

    #[test]
    fn parallel_and_sequential_requests_fold_identically() {
        let plan = plan();
        let mut session = plan.open_session();
        let parallel = session.infer(&Request::batch(12));
        let sequential = session.infer(&Request::batch(12).sequential());
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.to_json(), sequential.to_json());
    }

    #[test]
    fn streaming_sink_sees_every_sample_exactly_once() {
        let plan = plan();
        let mut session = plan.open_session();
        let seen = std::sync::Mutex::new(vec![0u32; 12]);
        let mut sink = FnSink(|sample: usize, layers: &[LayerSample]| {
            assert_eq!(layers.len(), 8);
            seen.lock().unwrap()[sample] += 1;
        });
        session.run(&Request::batch(12), &mut sink);
        assert!(seen.lock().unwrap().iter().all(|&n| n == 1));
    }

    #[test]
    fn sample_subranges_serve_the_same_measurements_as_full_batches() {
        let plan = plan();
        let mut session = plan.open_session();
        let full = session.infer(&Request::batch(12));
        // Samples are independently seeded, so serving sample 4..8 alone
        // reproduces those samples' measurements exactly.
        let sub = std::sync::Mutex::new(Vec::new());
        let mut sink = FnSink(|sample: usize, layers: &[LayerSample]| {
            sub.lock().unwrap().push((sample, layers.to_vec()));
        });
        session.run(&Request::samples(4..8).sequential(), &mut sink);
        let sub = sub.into_inner().unwrap();
        assert_eq!(sub.len(), 4);
        assert_eq!(sub[0].0, 4);
        assert!(full.total_cycles() > 0.0);
    }

    #[test]
    fn arena_counters_reach_steady_state_after_the_first_request() {
        let plan = plan();
        let mut session = plan.open_session();
        session.infer(&Request::batch(12));
        let (runs_warm, grows_warm) = session.arena_stats();
        assert_eq!(runs_warm, 12);
        for _ in 0..3 {
            session.infer(&Request::batch(12));
        }
        let (runs, grows) = session.arena_stats();
        assert_eq!(runs, 48);
        assert_eq!(grows, grows_warm, "steady-state requests grow no arena buffer");
    }
}
