//! # SpikeStream
//!
//! Reproduction of *SpikeStream: Accelerating Spiking Neural Network
//! Inference on RISC-V Clusters with Sparse Computation Extensions*
//! (DATE 2025) as a Rust library.
//!
//! SpikeStream is a software optimization technique that runs spiking
//! neural network (SNN) inference on a general-purpose RISC-V compute
//! cluster (the Snitch cluster) and maps the sparse, indirection-heavy
//! weight gathers of event-driven convolution onto the cluster's stream
//! semantic registers and FP hardware loops. This crate ties together the
//! substrates of the workspace — the architectural model (`snitch-arch`),
//! the memory system (`snitch-mem`), the cluster simulator (`snitch-sim`),
//! the SNN substrate (`spikestream-snn`), the kernels
//! (`spikestream-kernels`), the energy model (`spikestream-energy`) and the
//! neuromorphic-accelerator models (`neuro-accel-models`) — behind one
//! public API:
//!
//! * [`Engine`] runs a network under an [`InferenceConfig`] (code variant,
//!   floating-point format, timing model, batch size) and produces an
//!   [`InferenceReport`] with per-layer runtime, utilization, IPC, power
//!   and energy — fanning batch samples out over worker threads;
//! * [`backend`] is the pluggable execution layer: the analytic and
//!   cycle-level timing models are [`ExecutionBackend`] implementations,
//!   and custom backends run through [`Engine::run_with_backend`];
//! * [`sharding`] is the fleet layer: [`Engine::run_sharded`] spreads a
//!   batch over N simulated cluster shards through the work-stealing
//!   [`BatchScheduler`], with per-shard utilization/imbalance statistics
//!   in the report (aggregates stay bit-identical to
//!   [`Engine::run_sequential`]);
//! * [`scenario`] parses the declarative scenario files driving the
//!   `spikestream` CLI (`run` / `bench` / `compare`);
//! * [`experiments`] regenerates every figure of the paper's evaluation.
//!
//! # Quickstart
//!
//! ```
//! use spikestream::{Engine, InferenceConfig, KernelVariant};
//! use spikestream::FpFormat;
//!
//! let engine = Engine::svgg11(42);
//! let baseline = engine.run(&InferenceConfig {
//!     batch: 4,
//!     seed: 7,
//!     ..InferenceConfig::paper(KernelVariant::Baseline, FpFormat::Fp16)
//! });
//! let streamed = engine.run(&InferenceConfig {
//!     batch: 4,
//!     seed: 7,
//!     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
//! });
//! assert!(streamed.total_cycles() < baseline.total_cycles());
//! ```
//!
//! A *temporal* run propagates real spikes across `T` timesteps with
//! persistent LIF membranes instead of sampling synthetic workloads — see
//! [`WorkloadMode`] and the per-step breakdown in
//! [`InferenceReport::timesteps`]:
//!
//! ```
//! use spikestream::{
//!     Engine, FpFormat, InferenceConfig, KernelVariant, NetworkChoice, TemporalEncoding,
//!     TimingModel,
//! };
//!
//! let (network, profile) = NetworkChoice::TinyCnn.build(7);
//! let engine = Engine::new(network, profile);
//! let config = InferenceConfig {
//!     timing: TimingModel::CycleLevel,
//!     batch: 1,
//!     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
//! }
//! .temporal(3, TemporalEncoding::Rate);
//! let report = engine.run(&config);
//! assert_eq!(report.timesteps.as_ref().unwrap().len(), 3);
//! ```

pub mod backend;
pub mod engine;
pub mod experiments;
pub mod report;
pub mod scenario;
pub mod sharding;

pub use backend::{
    AnalyticBackend, CycleLevelBackend, ExecutionBackend, LayerSample, SampleContext,
};
pub use engine::{Engine, InferenceConfig, TimingModel};
pub use report::{InferenceReport, LayerReport, ShardSummary, ShardUtilization, TimestepReport};
pub use scenario::{NetworkChoice, Scenario, ScenarioError};
pub use sharding::{BatchScheduler, ShardedBatch};

// Re-export the vocabulary types users need to drive the engine.
pub use neuro_accel_models::{AcceleratorResult, AcceleratorSpec};
pub use snitch_arch::fp::FpFormat;
pub use snitch_arch::{ClusterConfig, CostModel};
pub use spikestream_energy::{Activity, EnergyModel};
pub use spikestream_kernels::KernelVariant;
pub use spikestream_snn::{
    FiringProfile, Network, TemporalEncoding, TemporalSparsityModel, WorkloadMode,
};
