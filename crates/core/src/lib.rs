//! # SpikeStream
//!
//! Reproduction of *SpikeStream: Accelerating Spiking Neural Network
//! Inference on RISC-V Clusters with Sparse Computation Extensions*
//! (DATE 2025) as a Rust library.
//!
//! SpikeStream is a software optimization technique that runs spiking
//! neural network (SNN) inference on a general-purpose RISC-V compute
//! cluster (the Snitch cluster) and maps the sparse, indirection-heavy
//! weight gathers of event-driven convolution onto the cluster's stream
//! semantic registers and FP hardware loops. This crate ties together the
//! substrates of the workspace — the architectural model (`snitch-arch`),
//! the memory system (`snitch-mem`), the cluster simulator (`snitch-sim`),
//! the SNN substrate (`spikestream-snn`), the kernels
//! (`spikestream-kernels`), the energy model (`spikestream-energy`) and the
//! neuromorphic-accelerator models (`neuro-accel-models`) — behind one
//! public API:
//!
//! The public API is a three-stage, compile-once serving lifecycle:
//!
//! ```text
//! Compiler ──compile──▶ Plan ──open_session──▶ Session ──run──▶ ResultSink
//! ```
//!
//! * [`Compiler`] / [`Engine::compile`] perform every per-model step once
//!   — config/profile validation, binding the execution backend as a
//!   plan-owned value, and ahead-of-time lowering of every layer's stream
//!   program into the plan-owned cache;
//! * [`Plan`] is the immutable, `Send + Sync` servable artifact; its
//!   [`Session`]s own the worker scratch arenas, per-sample membrane
//!   state and a parked [`pool::WorkerPool`] of serving threads, and
//!   serve [`Request`]s, streaming per-sample results through a
//!   [`ResultSink`] as they complete ([`Session::infer`] folds the stream
//!   into an [`InferenceReport`]);
//! * [`backend`] is the pluggable execution layer: the analytic and
//!   cycle-level timing models are [`ExecutionBackend`] implementations,
//!   and custom backends bind via [`Compiler::with_backend`] or serve via
//!   [`Session::infer_with_backend`];
//! * [`sharding`] is the fleet layer: a request with
//!   [`Request::with_shards`] attributes its samples to N simulated
//!   cluster shards with per-shard utilization/imbalance statistics in the
//!   report (aggregates stay bit-identical to a sequential request);
//! * [`scenario`] parses the declarative scenario files driving the
//!   `spikestream` CLI (`run` / `bench` / `compare`);
//! * [`experiments`] regenerates every figure of the paper's evaluation.
//!
//! The historical per-call entry points (`Engine::run`,
//! `Engine::run_sharded`, …) remain as deprecated wrappers over a one-shot
//! session and produce bit-identical reports.
//!
//! # Quickstart
//!
//! ```
//! use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant, Request};
//!
//! let engine = Engine::svgg11(42);
//! // Compile once per configuration...
//! let baseline = engine.compile(&InferenceConfig {
//!     batch: 4,
//!     seed: 7,
//!     ..InferenceConfig::paper(KernelVariant::Baseline, FpFormat::Fp16)
//! });
//! let streamed = engine.compile(&InferenceConfig {
//!     batch: 4,
//!     seed: 7,
//!     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
//! });
//! // ... then serve: a long-lived session amortizes the lowering over
//! // every request it handles.
//! let mut session = streamed.open_session();
//! let fast = session.infer(&Request::batch(4));
//! assert!(fast.total_cycles() < baseline.run().total_cycles());
//! ```
//!
//! A *temporal* run propagates real spikes across `T` timesteps with
//! persistent LIF membranes instead of sampling synthetic workloads — see
//! [`WorkloadMode`] and the per-step breakdown in
//! [`InferenceReport::timesteps`]:
//!
//! ```
//! use spikestream::{
//!     Engine, FpFormat, InferenceConfig, KernelVariant, NetworkChoice, Request,
//!     TemporalEncoding, TimingModel,
//! };
//!
//! let (network, profile) = NetworkChoice::TinyCnn.build(7);
//! let engine = Engine::new(network, profile);
//! let config = InferenceConfig {
//!     timing: TimingModel::CycleLevel,
//!     batch: 1,
//!     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
//! }
//! .temporal(3, TemporalEncoding::Rate);
//! let report = engine.compile(&config).open_session().infer(&Request::batch(1));
//! assert_eq!(report.timesteps.as_ref().unwrap().len(), 3);
//! ```

pub mod backend;
pub mod engine;
pub mod experiments;
pub mod plan;
pub mod pool;
pub mod report;
pub mod scenario;
pub mod session;
pub mod sharding;

pub use backend::{
    backend_for, AnalyticBackend, CycleLevelBackend, ExecutionBackend, LayerSample, SampleContext,
    WorkerArena,
};
pub use engine::{Engine, InferenceConfig, TimingModel};
pub use plan::{CompileError, Compiler, Plan};
pub use pool::PoolStats;
pub use report::{InferenceReport, LayerReport, ShardSummary, ShardUtilization, TimestepReport};
pub use scenario::{NetworkChoice, Scenario, ScenarioError, ServeSettings};
pub use session::{FnSink, Request, ResultSink, Session, SessionStats, SessionStatsHandle};
pub use sharding::{attribute_shards, BatchScheduler, ShardedBatch};

// Re-export the vocabulary types users need to drive the engine.
pub use neuro_accel_models::{AcceleratorResult, AcceleratorSpec};
pub use snitch_arch::fp::FpFormat;
pub use snitch_arch::{ClusterConfig, CostModel};
pub use spikestream_energy::{Activity, EnergyModel};
pub use spikestream_kernels::KernelVariant;
pub use spikestream_snn::{
    FiringProfile, IzhiParams, LifParams, Network, NeuronModel, TemporalEncoding,
    TemporalSparsityModel, WorkloadMode,
};
