//! Activity-based energy and power model of the Snitch cluster.
//!
//! The paper obtains energy numbers from post-layout gate-level simulation
//! of the GF 12LP+ implementation at 1 GHz / 0.8 V. This crate replaces
//! that flow with an activity-based analytical model: every cycle of static
//! operation, every integer instruction, every FLOP (per format) and every
//! DMA byte carries an energy coefficient. The default coefficients are
//! calibrated so that the three per-layer power levels reported in the
//! paper are reproduced (≈0.13 W for the FP16 baseline, ≈0.23 W for
//! SpikeStream FP16 and ≈0.22 W for SpikeStream FP8 on the sparse layers),
//! which makes the energy ratios of Fig. 4 / Fig. 5b meaningful.

use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use snitch_arch::ClusterConfig;

/// Activity counters of one layer or kernel invocation, in whatever units
/// the timing model provides (the cluster simulator's `PhaseStats` and the
/// IR cost integration's `ProgramCost` both convert into this).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Activity {
    /// Runtime in cycles.
    pub cycles: u64,
    /// Integer instructions executed (per cluster).
    pub int_instrs: u64,
    /// Scalar FLOPs executed (per cluster).
    pub flops: u64,
    /// Bytes moved by the DMA engine.
    pub dma_bytes: u64,
    /// Storage format of the FP datapath activity.
    pub format: FpFormat,
}

/// Energy coefficients of the cluster (picojoules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Static + clock-tree energy per core per cycle (pJ).
    pub static_pj_per_core_cycle: f64,
    /// Energy per integer instruction (pJ).
    pub int_instr_pj: f64,
    /// Energy per FP64 FLOP (pJ).
    pub flop64_pj: f64,
    /// Energy per FP32 FLOP (pJ).
    pub flop32_pj: f64,
    /// Energy per FP16 FLOP (pJ).
    pub flop16_pj: f64,
    /// Energy per FP8 FLOP (pJ). Narrow slices clock-gate the idle lanes,
    /// which is why FP8 consumes slightly less than FP16 at equal issue
    /// rate (Section IV-B).
    pub flop8_pj: f64,
    /// Energy per byte moved by the DMA engine (pJ).
    pub dma_byte_pj: f64,
    /// Number of worker cores contributing static power.
    pub cores: usize,
}

impl EnergyModel {
    /// Coefficients calibrated against the paper's reported kernel power.
    pub fn calibrated() -> Self {
        EnergyModel {
            static_pj_per_core_cycle: 9.0,
            int_instr_pj: 5.0,
            flop64_pj: 60.0,
            flop32_pj: 17.0,
            flop16_pj: 8.4,
            flop8_pj: 3.7,
            dma_byte_pj: 2.0,
            cores: ClusterConfig::default().worker_cores + 1,
        }
    }

    /// Energy per FLOP for a storage format (pJ).
    pub fn flop_pj(&self, format: FpFormat) -> f64 {
        match format {
            FpFormat::Fp64 => self.flop64_pj,
            FpFormat::Fp32 => self.flop32_pj,
            FpFormat::Fp16 => self.flop16_pj,
            FpFormat::Fp8 => self.flop8_pj,
        }
    }

    /// Total energy of an activity record, in joules.
    pub fn energy_j(&self, activity: &Activity) -> f64 {
        let static_e = activity.cycles as f64 * self.cores as f64 * self.static_pj_per_core_cycle;
        let int_e = activity.int_instrs as f64 * self.int_instr_pj;
        let fp_e = activity.flops as f64 * self.flop_pj(activity.format);
        let dma_e = activity.dma_bytes as f64 * self.dma_byte_pj;
        (static_e + int_e + fp_e + dma_e) * 1e-12
    }

    /// Average power of an activity record at the given clock, in watts.
    pub fn power_w(&self, activity: &Activity, clock_hz: f64) -> f64 {
        if activity.cycles == 0 {
            return 0.0;
        }
        let seconds = activity.cycles as f64 / clock_hz;
        self.energy_j(activity) / seconds
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Activity resembling one sparse S-VGG11 layer on the baseline kernel:
    /// the integer core is busy nearly every cycle while the FPU idles.
    fn baseline_like(cycles: u64) -> Activity {
        Activity {
            cycles,
            int_instrs: (cycles as f64 * 0.85 * 8.0) as u64,
            flops: (cycles as f64 * 0.095 * 8.0 * 4.0) as u64,
            dma_bytes: cycles / 10,
            format: FpFormat::Fp16,
        }
    }

    /// Activity resembling the same layer with SpikeStream: fewer integer
    /// instructions, much higher FPU activity, shorter runtime.
    fn spikestream_like(cycles: u64, format: FpFormat) -> Activity {
        Activity {
            cycles,
            int_instrs: (cycles as f64 * 0.35 * 8.0) as u64,
            flops: (cycles as f64 * 0.55 * 8.0 * format.simd_lanes() as f64) as u64,
            dma_bytes: cycles / 2,
            format,
        }
    }

    #[test]
    fn calibrated_power_levels_match_the_paper_regime() {
        let m = EnergyModel::calibrated();
        let clock = 1.0e9;
        let p_base = m.power_w(&baseline_like(1_000_000), clock);
        let p_fast16 = m.power_w(&spikestream_like(200_000, FpFormat::Fp16), clock);
        let p_fast8 = m.power_w(&spikestream_like(120_000, FpFormat::Fp8), clock);
        assert!((0.10..=0.18).contains(&p_base), "baseline power {p_base}");
        assert!((0.18..=0.30).contains(&p_fast16), "SpikeStream FP16 power {p_fast16}");
        assert!(p_fast8 < p_fast16 * 1.02, "FP8 should not consume more than FP16");
        assert!(p_fast16 > p_base, "streaming raises power but lowers energy");
    }

    #[test]
    fn streaming_lowers_total_energy_despite_higher_power() {
        let m = EnergyModel::calibrated();
        // Same work finished 5x faster: energy must go down.
        let e_base = m.energy_j(&baseline_like(1_000_000));
        let e_fast = m.energy_j(&spikestream_like(200_000, FpFormat::Fp16));
        assert!(e_fast < e_base, "{e_fast} vs {e_base}");
        let gain = e_base / e_fast;
        assert!(gain > 2.0 && gain < 6.0, "energy-efficiency gain {gain}");
    }

    #[test]
    fn narrower_formats_cost_less_per_flop() {
        let m = EnergyModel::calibrated();
        assert!(m.flop_pj(FpFormat::Fp8) < m.flop_pj(FpFormat::Fp16));
        assert!(m.flop_pj(FpFormat::Fp16) < m.flop_pj(FpFormat::Fp32));
        assert!(m.flop_pj(FpFormat::Fp32) < m.flop_pj(FpFormat::Fp64));
    }

    #[test]
    fn zero_cycle_activity_has_zero_power() {
        let m = EnergyModel::calibrated();
        let a =
            Activity { cycles: 0, int_instrs: 0, flops: 0, dma_bytes: 0, format: FpFormat::Fp16 };
        assert_eq!(m.power_w(&a, 1.0e9), 0.0);
        assert_eq!(m.energy_j(&a), 0.0);
    }

    #[test]
    fn energy_scales_linearly_with_activity() {
        let m = EnergyModel::calibrated();
        let one = baseline_like(100_000);
        let two = baseline_like(200_000);
        let ratio = m.energy_j(&two) / m.energy_j(&one);
        assert!((ratio - 2.0).abs() < 0.05);
    }
}
