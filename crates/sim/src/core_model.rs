//! Timing model of one Snitch worker core.
//!
//! A worker core pairs a single-issue integer pipeline with a SIMD FPU fed
//! by three stream semantic registers and an FREP hardware loop. The two
//! halves run decoupled: the integer core issues FP instructions (or whole
//! FREP regions) into a small sequencer buffer and continues executing its
//! own instructions, so stream setup for the next sparse vector
//! accumulation can overlap with the FPU draining the current one. This
//! decoupling — and its failure when streams are too short — is exactly
//! what produces the per-layer utilization and speedup shapes in Fig. 3 of
//! the paper.

use std::collections::VecDeque;

use snitch_arch::isa::{FpOp, StreamPattern};
use snitch_arch::{ClusterConfig, CostModel, SsrId, TraceOp};
use snitch_mem::BankConflictModel;
use spikestream_ir::{IndexStream, StreamSpec};

use crate::counters::PerfCounters;

/// Maximum number of FREP regions the integer core may queue ahead of the
/// FPU before it stalls on the sequencer buffer.
const MAX_OUTSTANDING_FREPS: usize = 2;

/// Per-core, trace-driven timing model.
#[derive(Debug, Clone)]
pub struct WorkerCoreModel {
    core_id: usize,
    cost: CostModel,
    banks: BankConflictModel,
    cross_conflict_per_access: f64,
    /// Completion time of the integer pipeline.
    int_time: u64,
    /// Time at which the FPU becomes free.
    fpu_time: u64,
    /// Completion times of outstanding FREP regions.
    outstanding_freps: VecDeque<u64>,
    /// Completion time of the stream currently bound to each SSR.
    ssr_busy_until: [u64; 3],
    /// Stream pattern most recently configured on each SSR, not yet consumed.
    ssr_pending: [Option<StreamPattern>; 3],
    /// Fractional conflict-cycle accumulator (cross-core interference).
    conflict_carry: f64,
    counters: PerfCounters,
}

impl WorkerCoreModel {
    /// Create a core model.
    pub fn new(config: &ClusterConfig, cost: CostModel, core_id: usize) -> Self {
        let cross_conflict_per_access = cost.cross_conflict_per_access;
        WorkerCoreModel {
            core_id,
            cost,
            banks: BankConflictModel::new(config),
            cross_conflict_per_access,
            int_time: 0,
            fpu_time: 0,
            outstanding_freps: VecDeque::new(),
            ssr_busy_until: [0; 3],
            ssr_pending: [None, None, None],
            conflict_carry: 0.0,
            counters: PerfCounters::new(),
        }
    }

    /// Identifier of the modelled core within the cluster.
    pub fn core_id(&self) -> usize {
        self.core_id
    }

    /// Override the cross-core contention calibration constant.
    pub fn set_cross_conflict_per_access(&mut self, value: f64) {
        self.cross_conflict_per_access = value.max(0.0);
    }

    /// Execute one trace operation, advancing the core's timing state.
    pub fn exec(&mut self, op: &TraceOp) {
        match op {
            TraceOp::Int { op, addr: _ } => {
                self.int_time += self.cost.int_cycles(*op);
                self.counters.int_instrs += 1;
            }
            TraceOp::Fp { op, format, ssr_srcs, addr: _ } => {
                // The integer core spends one issue slot handing the
                // instruction to the FPU subsystem.
                self.int_time += 1;
                self.counters.int_instrs += 1;
                let busy = self.cost.fp_cycles(*op);
                let mut start = self.int_time.max(self.fpu_time);
                for ssr in ssr_srcs {
                    start = start.max(self.ssr_busy_until[ssr.index()]);
                }
                self.fpu_time = start + busy;
                // Only arithmetic counts as *useful* FPU work for the
                // utilization metric; FP loads/stores/moves keep the FP
                // subsystem occupied but are bookkeeping.
                if Self::is_useful_fp(*op) {
                    self.counters.fpu_busy_cycles += busy;
                }
                self.counters.fp_instrs += 1;
                self.counters.flops += self.flops_of(*op, format.simd_lanes() as u64);
            }
            TraceOp::SsrConfig { ssr, pattern, shadow } => {
                self.config_ssr(*ssr, pattern.clone(), *shadow);
            }
            TraceOp::Frep { reps, body } => {
                self.exec_frep(*reps, body);
            }
            TraceOp::Barrier => {
                self.int_time = self.int_time.max(self.fpu_time);
                self.outstanding_freps.clear();
            }
        }
        self.counters.int_cycles = self.int_time;
        self.counters.fpu_last_complete = self.counters.fpu_last_complete.max(self.fpu_time);
    }

    /// Execute a whole slice of trace operations.
    pub fn exec_all(&mut self, ops: &[TraceOp]) {
        for op in ops {
            self.exec(op);
        }
    }

    /// Execute the same integer operation `reps` times.
    ///
    /// Closed form of `reps` successive [`WorkerCoreModel::exec`] calls on
    /// the same `TraceOp::Int`: integer op timing carries no
    /// cross-iteration state, so the per-op cost multiplies exactly.
    pub fn exec_int_repeated(&mut self, op: snitch_arch::isa::IntOp, reps: u64) {
        self.int_time += self.cost.int_cycles(op) * reps;
        self.counters.int_instrs += reps;
        self.counters.int_cycles = self.int_time;
    }

    /// Execute the same non-streamed FP operation `reps` times.
    ///
    /// Closed form of `reps` successive [`WorkerCoreModel::exec`] calls on
    /// the same `TraceOp::Fp` with no SSR sources. Each iteration issues
    /// one integer slot and occupies the FPU for the op's busy cycles; once
    /// the FPU is the bottleneck (immediately, for any busy >= 1) the
    /// completion time advances by exactly `busy` per iteration.
    pub fn exec_fp_repeated(&mut self, op: FpOp, format: snitch_arch::fp::FpFormat, reps: u64) {
        if reps == 0 {
            return;
        }
        let busy = self.cost.fp_cycles(op);
        let int0 = self.int_time;
        self.int_time += reps;
        self.counters.int_instrs += reps;
        self.fpu_time = if busy >= 1 {
            // First iteration starts at max(int0 + 1, fpu); every later one
            // is FPU-bound and adds `busy`.
            (int0 + 1).max(self.fpu_time) + reps * busy
        } else {
            // Zero-occupancy ops only drag the FPU clock up to the issue
            // time of the last iteration.
            self.fpu_time.max(self.int_time)
        };
        if Self::is_useful_fp(op) {
            self.counters.fpu_busy_cycles += busy * reps;
        }
        self.counters.fp_instrs += reps;
        self.counters.flops += self.flops_of(op, format.simd_lanes() as u64) * reps;
        self.counters.int_cycles = self.int_time;
        self.counters.fpu_last_complete = self.counters.fpu_last_complete.max(self.fpu_time);
    }

    /// Execute one `KernelOp::Stream` directly from its IR stream specs:
    /// configure every SSR (shadowed) and run the single-FP-op FREP region
    /// that consumes them, walking the exact index words in place.
    ///
    /// This is the word-parallel fast path of the stream-program
    /// interpreter: it is cycle- and counter-exact with issuing the
    /// equivalent `TraceOp::SsrConfig` + `TraceOp::Frep` sequence through
    /// [`WorkerCoreModel::exec`], but never materializes a
    /// [`StreamPattern`] (which would deep-copy every exact index list) or
    /// a trace-op body.
    ///
    /// # Panics
    ///
    /// Panics if a spec is symbolic (`IndexStream::Expected`) or an
    /// indirect stream targets an SSR without indirection support — the
    /// same contracts as [`StreamSpec::to_pattern`] and
    /// [`WorkerCoreModel::exec`].
    pub fn exec_stream(
        &mut self,
        ssrs: &[(SsrId, StreamSpec)],
        op: FpOp,
        format: snitch_arch::fp::FpFormat,
    ) {
        // SSR configuration, shadowed: the CSR writes of every pattern
        // dimension, exactly as `config_ssr`. The pending slot is cleared
        // rather than filled — this stream consumes its own configuration
        // immediately below.
        let mut reps = 0u64;
        for (ssr, spec) in ssrs {
            if matches!(spec, StreamSpec::Indirect { .. }) && !ssr.supports_indirect() {
                panic!("SSR {ssr:?} does not support indirect streams");
            }
            let writes = match spec {
                StreamSpec::Affine { strides, .. } => 2 + 2 * strides.len() as u64,
                StreamSpec::Indirect { .. } => 4,
            };
            self.int_time += writes * self.cost.ssr_config_write;
            self.counters.int_instrs += writes;
            self.counters.ssr_configs += 1;
            self.ssr_pending[ssr.index()] = None;
            reps = reps.max(Self::spec_length(spec));
        }
        if reps == 0 {
            self.counters.int_cycles = self.int_time;
            return;
        }

        // The FREP region, exactly as `exec_frep` over a one-op body.
        self.int_time += self.cost.frep_launch;
        self.counters.int_instrs += 1;
        self.retire_completed_freps();
        if self.outstanding_freps.len() >= MAX_OUTSTANDING_FREPS {
            let oldest = self.outstanding_freps.pop_front().expect("non-empty");
            if oldest > self.int_time {
                self.counters.stall_sequencer_full += oldest - self.int_time;
                self.int_time = oldest;
            }
        }

        let stream_ready = self.int_time;
        let mut conflict_stalls = 0u64;
        let mut elements = 0u64;
        let mut stream_interval: f64 = 1.0;
        for (_, spec) in ssrs {
            let (interval, accesses_per_element) = match spec {
                StreamSpec::Affine { .. } => (self.cost.affine_stream_interval, 1.0),
                StreamSpec::Indirect { .. } => (self.cost.indirect_stream_interval, 2.0),
            };
            stream_interval = stream_interval.max(interval);
            if let StreamSpec::Indirect {
                index_base,
                index_bytes,
                data_base,
                elem_bytes,
                indices: IndexStream::Exact(idcs),
            } = spec
            {
                conflict_stalls += self.banks.conflict_cycles_indexed(
                    *index_base,
                    *index_bytes,
                    *data_base,
                    *elem_bytes,
                    idcs,
                );
            }
            let elems = Self::spec_length(spec);
            let expected = elems as f64 * accesses_per_element * self.cross_conflict_per_access
                + self.conflict_carry;
            let cross = expected.floor() as u64;
            self.conflict_carry = expected - cross as f64;
            conflict_stalls += cross;
            elements += elems;
        }

        let total_issue = self.cost.fp_cycles(op) * reps;
        let total_occupancy = (total_issue as f64 * stream_interval).ceil() as u64;
        let start = self.int_time.max(self.fpu_time).max(stream_ready);
        let busy_end = start
            + self.cost.fpu_latency
            + self.cost.stream_startup
            + total_occupancy
            + conflict_stalls;

        self.fpu_time = busy_end;
        self.counters.fpu_busy_cycles += total_issue;
        self.counters.stall_bank_conflict += conflict_stalls;
        self.counters.fp_instrs += reps;
        self.counters.flops += self.flops_of(op, format.simd_lanes() as u64) * reps;
        self.counters.stream_elements += elements;
        for (ssr, _) in ssrs {
            self.ssr_busy_until[ssr.index()] = busy_end;
        }
        self.outstanding_freps.push_back(busy_end);
        self.counters.int_cycles = self.int_time;
        self.counters.fpu_last_complete = self.counters.fpu_last_complete.max(self.fpu_time);
    }

    /// Exact element count of a stream spec.
    ///
    /// # Panics
    ///
    /// Panics on symbolic streams, like [`StreamSpec::to_pattern`].
    fn spec_length(spec: &StreamSpec) -> u64 {
        match spec {
            StreamSpec::Affine { bounds, .. } => bounds.iter().map(|&b| b as u64).product(),
            StreamSpec::Indirect { indices: IndexStream::Exact(v), .. } => v.len() as u64,
            StreamSpec::Indirect { indices: IndexStream::Expected(_), .. } => {
                panic!("symbolic streams cannot be interpreted, only integrated")
            }
        }
    }

    /// Execute a straight-line block of operations `reps` times.
    ///
    /// This is a fast path for inner loops whose per-iteration timing does
    /// not depend on data (such as the baseline SpVA loop of Listing 1b):
    /// the per-iteration cost is computed once and multiplied, which is
    /// exact for blocks containing only integer ops and non-streamed FP ops.
    ///
    /// # Panics
    ///
    /// Panics if the block contains SSR configurations or FREP regions —
    /// those have cross-iteration state and must go through [`Self::exec`].
    pub fn exec_repeated(&mut self, ops: &[TraceOp], reps: u64) {
        if reps == 0 {
            return;
        }
        let mut int_cycles = 0u64;
        let mut int_instrs = 0u64;
        let mut fp_busy = 0u64;
        let mut fp_occupancy = 0u64;
        let mut fp_instrs = 0u64;
        let mut flops = 0u64;
        for op in ops {
            match op {
                TraceOp::Int { op, .. } => {
                    int_cycles += self.cost.int_cycles(*op);
                    int_instrs += 1;
                }
                TraceOp::Fp { op, format, .. } => {
                    int_cycles += 1; // issue slot on the integer core
                    int_instrs += 1;
                    let busy = self.cost.fp_cycles(*op);
                    fp_occupancy += busy;
                    if Self::is_useful_fp(*op) {
                        fp_busy += busy;
                    }
                    fp_instrs += 1;
                    flops += self.flops_of(*op, format.simd_lanes() as u64);
                }
                TraceOp::SsrConfig { .. } | TraceOp::Frep { .. } | TraceOp::Barrier => {
                    panic!("exec_repeated only supports straight-line int/FP blocks");
                }
            }
        }
        self.int_time += int_cycles * reps;
        self.counters.int_instrs += int_instrs * reps;
        // The FP work of such blocks is throttled by the integer core (each
        // FP op is issued individually), so the FP subsystem finishes
        // together with the integer pipeline.
        let _ = fp_occupancy;
        self.fpu_time = self.fpu_time.max(self.int_time);
        self.counters.fpu_busy_cycles += fp_busy * reps;
        self.counters.fp_instrs += fp_instrs * reps;
        self.counters.flops += flops * reps;
        self.counters.int_cycles = self.int_time;
        self.counters.fpu_last_complete = self.counters.fpu_last_complete.max(self.fpu_time);
    }

    /// Charge `cycles` of instruction-cache refill stall to the integer core.
    pub fn add_icache_stall(&mut self, cycles: u64) {
        self.int_time += cycles;
        self.counters.stall_icache += cycles;
        self.counters.int_cycles = self.int_time;
    }

    /// Block the integer pipeline until `cycle` waiting for a prologue DMA
    /// tile load (no effect if the core is already past that point).
    pub fn stall_until_dma(&mut self, cycle: u64) {
        if cycle > self.int_time {
            self.counters.stall_dma_wait += cycle - self.int_time;
            self.int_time = cycle;
            self.counters.int_cycles = self.int_time;
        }
    }

    /// Counters accumulated so far.
    pub fn counters(&self) -> &PerfCounters {
        &self.counters
    }

    /// Completion time of the integer pipeline.
    pub fn int_time(&self) -> u64 {
        self.int_time
    }

    /// Time at which the FPU becomes free.
    pub fn fpu_time(&self) -> u64 {
        self.fpu_time
    }

    /// Reset all timing state and counters (between phases).
    pub fn reset(&mut self) {
        self.int_time = 0;
        self.fpu_time = 0;
        self.outstanding_freps.clear();
        self.ssr_busy_until = [0; 3];
        self.ssr_pending = [None, None, None];
        self.conflict_carry = 0.0;
        self.counters = PerfCounters::new();
    }

    fn is_useful_fp(op: FpOp) -> bool {
        matches!(op, FpOp::Add | FpOp::Mul | FpOp::Fma | FpOp::Cmp | FpOp::Cvt)
    }

    fn flops_of(&self, op: FpOp, lanes: u64) -> u64 {
        match op {
            FpOp::Add | FpOp::Mul | FpOp::Cmp => lanes,
            FpOp::Fma => 2 * lanes,
            FpOp::Cvt | FpOp::Move | FpOp::Load | FpOp::Store => 0,
        }
    }

    fn config_ssr(&mut self, ssr: SsrId, pattern: StreamPattern, shadow: bool) {
        if matches!(pattern, StreamPattern::Indirect { .. }) && !ssr.supports_indirect() {
            panic!("SSR {ssr:?} does not support indirect streams");
        }
        let writes = match &pattern {
            StreamPattern::Affine { strides, .. } => 2 + 2 * strides.len() as u64,
            StreamPattern::Indirect { .. } => 4,
        };
        self.int_time += writes * self.cost.ssr_config_write;
        self.counters.int_instrs += writes;
        self.counters.ssr_configs += 1;

        if !shadow {
            // Without shadow registers the integer core must wait for the
            // stream currently bound to this SSR to drain.
            let busy = self.ssr_busy_until[ssr.index()];
            if busy > self.int_time {
                self.counters.stall_ssr_drain += busy - self.int_time;
                self.int_time = busy;
            }
        }
        self.ssr_pending[ssr.index()] = Some(pattern);
    }

    fn exec_frep(&mut self, reps: u32, body: &[TraceOp]) {
        // Launching the hardware loop occupies the integer core briefly.
        self.int_time += self.cost.frep_launch;
        self.counters.int_instrs += 1;

        // Sequencer back-pressure: only a couple of FREP regions may be
        // outstanding; beyond that the integer core stalls.
        self.retire_completed_freps();
        if self.outstanding_freps.len() >= MAX_OUTSTANDING_FREPS {
            let oldest = self.outstanding_freps.pop_front().expect("non-empty");
            if oldest > self.int_time {
                self.counters.stall_sequencer_full += oldest - self.int_time;
                self.int_time = oldest;
            }
        }

        // Gather the streams consumed by the body and their conflict cost.
        let mut stream_ready = self.int_time;
        let mut conflict_stalls = 0u64;
        let mut elements = 0u64;
        let mut uses_stream = false;
        let mut stream_interval: f64 = 1.0;
        for op in body {
            if let TraceOp::Fp { ssr_srcs, .. } = op {
                for ssr in ssr_srcs {
                    uses_stream = true;
                    if let Some(pattern) = self.ssr_pending[ssr.index()].take() {
                        let interval = match &pattern {
                            StreamPattern::Affine { .. } => self.cost.affine_stream_interval,
                            StreamPattern::Indirect { .. } => self.cost.indirect_stream_interval,
                        };
                        stream_interval = stream_interval.max(interval);
                        let (ready, stalls, elems) = self.consume_stream(ssr, &pattern);
                        stream_ready = stream_ready.max(ready);
                        conflict_stalls += stalls;
                        elements += elems;
                    } else {
                        stream_ready = stream_ready.max(self.ssr_busy_until[ssr.index()]);
                    }
                }
            }
        }

        let mut fp_issue_cycles = 0u64;
        let mut fp_instrs = 0u64;
        let mut flops = 0u64;
        for op in body {
            if let TraceOp::Fp { op, format, .. } = op {
                fp_issue_cycles += self.cost.fp_cycles(*op);
                fp_instrs += 1;
                flops += self.flops_of(*op, format.simd_lanes() as u64);
            }
        }
        let total_issue = fp_issue_cycles * reps as u64;
        // Streamed operands arrive at the sustained interval of the slowest
        // stream feeding the body; non-streamed FREP bodies issue every cycle.
        let total_occupancy = if uses_stream {
            (total_issue as f64 * stream_interval).ceil() as u64
        } else {
            total_issue
        };
        let startup = if uses_stream { self.cost.stream_startup } else { 0 };
        let start = self.int_time.max(self.fpu_time).max(stream_ready);
        let busy_end = start + self.cost.fpu_latency + startup + total_occupancy + conflict_stalls;

        self.fpu_time = busy_end;
        self.counters.fpu_busy_cycles += total_issue;
        self.counters.stall_bank_conflict += conflict_stalls;
        self.counters.fp_instrs += fp_instrs * reps as u64;
        self.counters.flops += flops * reps as u64;
        self.counters.stream_elements += elements;

        // Streams consumed by this FREP stay busy until it completes.
        for op in body {
            if let TraceOp::Fp { ssr_srcs, .. } = op {
                for ssr in ssr_srcs {
                    self.ssr_busy_until[ssr.index()] = busy_end;
                }
            }
        }
        self.outstanding_freps.push_back(busy_end);
    }

    fn retire_completed_freps(&mut self) {
        while let Some(&t) = self.outstanding_freps.front() {
            if t <= self.int_time {
                self.outstanding_freps.pop_front();
            } else {
                break;
            }
        }
    }

    /// Account for the scratchpad traffic of one stream: returns
    /// `(ready_time, conflict_stalls, elements)`.
    fn consume_stream(&mut self, _ssr: &SsrId, pattern: &StreamPattern) -> (u64, u64, u64) {
        let elements = pattern.length();
        let accesses_per_element: f64;
        let own_conflicts: u64;
        match pattern {
            StreamPattern::Affine { .. } => {
                accesses_per_element = 1.0;
                own_conflicts = 0;
            }
            StreamPattern::Indirect { index_base, index_bytes, data_base, elem_bytes, indices } => {
                // Each element needs an index fetch plus a gather; when both
                // land in the same bank the data mover loses a cycle.
                accesses_per_element = 2.0;
                own_conflicts = self.banks.conflict_cycles_indexed(
                    *index_base,
                    *index_bytes,
                    *data_base,
                    *elem_bytes,
                    indices,
                );
            }
        }
        // Cross-core interference, accumulated fractionally so short streams
        // are not over-penalized.
        let expected = elements as f64 * accesses_per_element * self.cross_conflict_per_access
            + self.conflict_carry;
        let cross = expected.floor() as u64;
        self.conflict_carry = expected - cross as f64;
        (self.int_time, own_conflicts + cross, elements)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_arch::fp::FpFormat;

    fn core() -> WorkerCoreModel {
        WorkerCoreModel::new(&ClusterConfig::default(), CostModel::default(), 0)
    }

    fn indirect_pattern(n: u32) -> StreamPattern {
        StreamPattern::Indirect {
            index_base: 0x100,
            index_bytes: 2,
            data_base: 0x1000,
            elem_bytes: 8,
            indices: (0..n).collect(),
        }
    }

    #[test]
    fn int_ops_advance_only_the_integer_pipeline() {
        let mut c = core();
        c.exec(&TraceOp::alu());
        c.exec(&TraceOp::load(0x40));
        assert_eq!(c.int_time(), 3);
        assert_eq!(c.fpu_time(), 0);
        assert_eq!(c.counters().int_instrs, 2);
    }

    #[test]
    fn scalar_fp_op_occupies_both_pipelines() {
        let mut c = core();
        c.exec(&TraceOp::fp(FpOp::Add, FpFormat::Fp16));
        assert_eq!(c.counters().fp_instrs, 1);
        assert_eq!(c.counters().fpu_busy_cycles, 1);
        assert!(c.fpu_time() >= 1);
        assert_eq!(c.counters().flops, 4, "FP16 SIMD add = 4 lane flops");
    }

    #[test]
    fn baseline_spva_loop_has_low_fpu_utilization() {
        // Listing 1b: per element the integer core executes 7 instructions
        // plus the fld and fadd; the FPU does one cycle of useful work.
        let mut c = core();
        for i in 0..100u32 {
            c.exec(&TraceOp::load(0x100 + 2 * i)); // lw index
            c.exec(&TraceOp::alu()); // slli
            c.exec(&TraceOp::alu()); // add
            c.exec(&TraceOp::fp(FpOp::Load, FpFormat::Fp16)); // fld
            c.exec(&TraceOp::alu()); // addi
            c.exec(&TraceOp::alu()); // addi
            c.exec(&TraceOp::fp(FpOp::Add, FpFormat::Fp16)); // fadd
            c.exec(&TraceOp::branch()); // bne
        }
        let util = c.counters().fpu_utilization();
        assert!(util > 0.05 && util < 0.20, "baseline utilization ~10%, got {util}");
    }

    #[test]
    fn streamed_spva_reaches_high_fpu_utilization() {
        // SpikeStream: configure an indirect stream of 256 elements and run
        // a single-instruction FREP body; utilization approaches 1.
        let mut c = core();
        for _ in 0..8 {
            c.exec(&TraceOp::alu()); // stream base address computation
            c.exec(&TraceOp::alu());
            c.exec(&TraceOp::SsrConfig {
                ssr: SsrId::Ssr0,
                pattern: indirect_pattern(256),
                shadow: true,
            });
            c.exec(&TraceOp::Frep {
                reps: 256,
                body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp16, SsrId::Ssr0)],
            });
        }
        let util = c.counters().fpu_utilization();
        assert!(
            util > 0.5,
            "streamed utilization should approach the indirect-stream ceiling, got {util}"
        );
        assert_eq!(c.counters().stream_elements, 8 * 256);
    }

    #[test]
    fn short_streams_leave_the_fpu_starved() {
        let mut c = core();
        for _ in 0..64 {
            for _ in 0..10 {
                c.exec(&TraceOp::alu());
            }
            c.exec(&TraceOp::SsrConfig {
                ssr: SsrId::Ssr0,
                pattern: indirect_pattern(3),
                shadow: true,
            });
            c.exec(&TraceOp::Frep {
                reps: 3,
                body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp16, SsrId::Ssr0)],
            });
        }
        let util = c.counters().fpu_utilization();
        assert!(util < 0.45, "short streams keep utilization low, got {util}");
    }

    #[test]
    fn non_shadow_reconfiguration_waits_for_stream_drain() {
        let mut c = core();
        c.exec(&TraceOp::SsrConfig {
            ssr: SsrId::Ssr0,
            pattern: indirect_pattern(512),
            shadow: true,
        });
        c.exec(&TraceOp::Frep {
            reps: 512,
            body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp16, SsrId::Ssr0)],
        });
        // Immediately reconfigure without shadow registers: must wait.
        c.exec(&TraceOp::SsrConfig {
            ssr: SsrId::Ssr0,
            pattern: indirect_pattern(4),
            shadow: false,
        });
        assert!(c.counters().stall_ssr_drain > 0);
        assert!(c.int_time() >= 512);
    }

    #[test]
    fn shadow_reconfiguration_overlaps_with_running_stream() {
        let mut c = core();
        c.exec(&TraceOp::SsrConfig {
            ssr: SsrId::Ssr0,
            pattern: indirect_pattern(512),
            shadow: true,
        });
        c.exec(&TraceOp::Frep {
            reps: 512,
            body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp16, SsrId::Ssr0)],
        });
        c.exec(&TraceOp::SsrConfig {
            ssr: SsrId::Ssr0,
            pattern: indirect_pattern(4),
            shadow: true,
        });
        assert_eq!(c.counters().stall_ssr_drain, 0);
        assert!(c.int_time() < 100, "integer core keeps running ahead");
    }

    #[test]
    fn sequencer_backpressure_limits_runahead() {
        let mut c = core();
        for _ in 0..6 {
            c.exec(&TraceOp::SsrConfig {
                ssr: SsrId::Ssr0,
                pattern: indirect_pattern(1024),
                shadow: true,
            });
            c.exec(&TraceOp::Frep {
                reps: 1024,
                body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp16, SsrId::Ssr0)],
            });
        }
        assert!(c.counters().stall_sequencer_full > 0);
    }

    #[test]
    fn barrier_joins_integer_and_fp_time() {
        let mut c = core();
        c.exec(&TraceOp::SsrConfig {
            ssr: SsrId::Ssr1,
            pattern: indirect_pattern(128),
            shadow: true,
        });
        c.exec(&TraceOp::Frep {
            reps: 128,
            body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp8, SsrId::Ssr1)],
        });
        c.exec(&TraceOp::Barrier);
        assert_eq!(c.int_time(), c.fpu_time());
    }

    #[test]
    #[should_panic(expected = "does not support indirect")]
    fn indirect_stream_on_affine_only_ssr_panics() {
        let mut c = core();
        c.exec(&TraceOp::SsrConfig {
            ssr: SsrId::Ssr2,
            pattern: indirect_pattern(4),
            shadow: true,
        });
    }

    #[test]
    fn icache_stall_is_attributed() {
        let mut c = core();
        c.add_icache_stall(120);
        assert_eq!(c.counters().stall_icache, 120);
        assert_eq!(c.int_time(), 120);
    }

    #[test]
    fn reset_clears_state() {
        let mut c = core();
        c.exec(&TraceOp::alu());
        c.reset();
        assert_eq!(c.int_time(), 0);
        assert_eq!(c.counters().int_instrs, 0);
    }
}
