//! Performance counters collected per worker core.
//!
//! These counters mirror what the paper extracts from the RTL simulation
//! traces: total cycles, FPU-busy cycles (to compute FPU utilization),
//! retired instructions (to compute IPC), and a breakdown of stall causes
//! used to explain the gap to the ideal speedup.

use serde::{Deserialize, Serialize};

/// Reasons a core may lose cycles beyond useful issue slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// Scratchpad bank conflicts on stream or scalar accesses.
    BankConflict,
    /// Instruction-cache refills.
    IcacheMiss,
    /// Integer core waiting for a running stream before reconfiguring an SSR.
    SsrDrain,
    /// Integer core blocked because the FPU sequencer buffer is full.
    SequencerFull,
    /// Core waiting for a prologue DMA tile load before starting compute.
    DmaWait,
    /// FPU idle waiting for stream data or for the integer core.
    FpuStarved,
}

impl StallCause {
    /// Every stall cause, for iteration in reports.
    pub fn all() -> [StallCause; 6] {
        [
            StallCause::BankConflict,
            StallCause::IcacheMiss,
            StallCause::SsrDrain,
            StallCause::SequencerFull,
            StallCause::DmaWait,
            StallCause::FpuStarved,
        ]
    }
}

/// Counter set of one worker core over one phase.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PerfCounters {
    /// Cycles spent by the integer pipeline (issue + stalls).
    pub int_cycles: u64,
    /// Cycles during which the FPU had an operation in flight.
    pub fpu_busy_cycles: u64,
    /// Cycle at which the last FP/stream operation of the phase completes.
    pub fpu_last_complete: u64,
    /// Integer instructions retired.
    pub int_instrs: u64,
    /// FP instructions issued to the FPU (one per SIMD op, however wide).
    pub fp_instrs: u64,
    /// Scalar FLOP count: FP instructions x SIMD lanes (x2 for FMA).
    pub flops: u64,
    /// Number of SSR (re)configurations performed.
    pub ssr_configs: u64,
    /// Number of stream elements delivered by the SSRs.
    pub stream_elements: u64,
    /// Stall cycles attributed to bank conflicts.
    pub stall_bank_conflict: u64,
    /// Stall cycles attributed to instruction-cache refills.
    pub stall_icache: u64,
    /// Stall cycles spent waiting for a stream to drain before reconfiguring.
    pub stall_ssr_drain: u64,
    /// Stall cycles with the integer core blocked on a full sequencer buffer.
    pub stall_sequencer_full: u64,
    /// Stall cycles waiting for prologue DMA tile loads.
    pub stall_dma_wait: u64,
}

impl PerfCounters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total cycles of the phase as seen by this core: the later of the
    /// integer-pipeline completion and the last FP/stream completion.
    pub fn total_cycles(&self) -> u64 {
        self.int_cycles.max(self.fpu_last_complete)
    }

    /// Fraction of phase cycles during which the FPU was busy (0..=1).
    pub fn fpu_utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.fpu_busy_cycles as f64 / total as f64
        }
    }

    /// Instructions (integer + FP) retired per cycle.
    pub fn ipc(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            (self.int_instrs + self.fp_instrs) as f64 / total as f64
        }
    }

    /// Total attributed stall cycles.
    pub fn stall_cycles(&self) -> u64 {
        self.stall_bank_conflict
            + self.stall_icache
            + self.stall_ssr_drain
            + self.stall_sequencer_full
            + self.stall_dma_wait
    }

    /// Stall cycles attributed to a specific cause.
    pub fn stalls(&self, cause: StallCause) -> u64 {
        match cause {
            StallCause::BankConflict => self.stall_bank_conflict,
            StallCause::IcacheMiss => self.stall_icache,
            StallCause::SsrDrain => self.stall_ssr_drain,
            StallCause::SequencerFull => self.stall_sequencer_full,
            StallCause::DmaWait => self.stall_dma_wait,
            StallCause::FpuStarved => self.total_cycles().saturating_sub(self.fpu_busy_cycles),
        }
    }

    /// Merge another counter set into this one (used to accumulate cores
    /// or batch items).
    pub fn merge(&mut self, other: &PerfCounters) {
        self.int_cycles += other.int_cycles;
        self.fpu_busy_cycles += other.fpu_busy_cycles;
        self.fpu_last_complete += other.fpu_last_complete;
        self.int_instrs += other.int_instrs;
        self.fp_instrs += other.fp_instrs;
        self.flops += other.flops;
        self.ssr_configs += other.ssr_configs;
        self.stream_elements += other.stream_elements;
        self.stall_bank_conflict += other.stall_bank_conflict;
        self.stall_icache += other.stall_icache;
        self.stall_ssr_drain += other.stall_ssr_drain;
        self.stall_sequencer_full += other.stall_sequencer_full;
        self.stall_dma_wait += other.stall_dma_wait;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_and_ipc_are_zero_on_empty_counters() {
        let c = PerfCounters::new();
        assert_eq!(c.total_cycles(), 0);
        assert_eq!(c.fpu_utilization(), 0.0);
        assert_eq!(c.ipc(), 0.0);
    }

    #[test]
    fn utilization_is_fpu_busy_over_total() {
        let c = PerfCounters {
            int_cycles: 100,
            fpu_busy_cycles: 25,
            fpu_last_complete: 80,
            ..Default::default()
        };
        assert_eq!(c.total_cycles(), 100);
        assert!((c.fpu_utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn total_cycles_covers_trailing_fp_work() {
        let c = PerfCounters {
            int_cycles: 50,
            fpu_last_complete: 120,
            fpu_busy_cycles: 90,
            ..Default::default()
        };
        assert_eq!(c.total_cycles(), 120);
        assert!(c.fpu_utilization() > 0.5);
    }

    #[test]
    fn merge_accumulates_all_fields() {
        let mut a = PerfCounters { int_cycles: 10, fp_instrs: 5, flops: 20, ..Default::default() };
        let b = PerfCounters { int_cycles: 7, fp_instrs: 3, flops: 12, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.int_cycles, 17);
        assert_eq!(a.fp_instrs, 8);
        assert_eq!(a.flops, 32);
    }

    #[test]
    fn stall_lookup_matches_fields() {
        let c = PerfCounters {
            stall_bank_conflict: 3,
            stall_icache: 4,
            stall_ssr_drain: 5,
            stall_sequencer_full: 6,
            ..Default::default()
        };
        assert_eq!(c.stalls(StallCause::BankConflict), 3);
        assert_eq!(c.stalls(StallCause::IcacheMiss), 4);
        assert_eq!(c.stalls(StallCause::SsrDrain), 5);
        assert_eq!(c.stalls(StallCause::SequencerFull), 6);
        assert_eq!(c.stall_cycles(), 18);
    }
}
