//! Cycle-approximate, trace-driven simulator of the Snitch compute cluster.
//!
//! The simulator consumes the dynamic operation traces emitted by the
//! SpikeStream kernel generators (`spikestream-kernels`) and charges cycles
//! according to the [`snitch_arch::CostModel`]. It models the mechanisms
//! that the paper's evaluation hinges on:
//!
//! * the **single-issue integer pipeline** whose address-generation and
//!   loop-control overhead throttles the non-streamed baseline SpVA loop,
//! * the **FPU sequencer / FREP hardware loop** that lets the FPU run
//!   autonomously while the integer core prepares the next stream,
//! * the **stream semantic registers** with affine and indirect patterns,
//!   including the shadow-register double buffering of their configuration,
//! * **scratchpad bank conflicts** caused by the irregular gather addresses
//!   of indirect streams, and
//! * the **shared instruction cache** and the **DMA engine** used for tile
//!   double buffering.
//!
//! The unit of execution is a *phase* (typically: one network layer). The
//! kernels lower each layer into a `spikestream_ir::StreamProgram` that
//! [`execute_program`] interprets on the cluster: work items are
//! distributed over the [`WorkerCoreModel`]s by workload stealing, DMA
//! phases overlap compute according to their double-buffer annotations,
//! and the [`ClusterModel`] finally aggregates per-core counters into a
//! [`PhaseStats`].
//!
//! Above the single cluster, [`shard`] models a *fleet* of N independent
//! cluster replicas ([`ClusterShard`]) with least-loaded sample dispatch
//! ([`ShardSet`]) — the substrate of the sharded batch driver in
//! `spikestream-core`.
//!
//! # Example
//!
//! ```
//! use snitch_arch::{ClusterConfig, CostModel, FpFormat, TraceOp};
//! use snitch_arch::isa::FpOp;
//! use snitch_sim::{ClusterModel, WorkerCoreModel};
//!
//! let config = ClusterConfig::default();
//! let mut core = WorkerCoreModel::new(&config, CostModel::default(), 0);
//! core.exec(&TraceOp::alu());
//! core.exec(&TraceOp::fp(FpOp::Add, FpFormat::Fp16));
//! assert!(core.counters().total_cycles() >= 2);
//! ```

pub mod cluster;
pub mod core_model;
pub mod counters;
pub mod program;
pub mod shard;

pub use cluster::{ClusterModel, PhaseStats};
pub use core_model::WorkerCoreModel;
pub use counters::{PerfCounters, StallCause};
pub use program::execute_program;
pub use shard::{ClusterShard, ShardSet};
