//! Cluster-level aggregation: worker cores + DMA core + shared I-cache.
//!
//! The kernels drive the per-core [`WorkerCoreModel`]s directly (work
//! distribution — including workload stealing — is a kernel concern), issue
//! tile transfers on the DMA engine, and finally ask the cluster model to
//! close the *phase*. A phase corresponds to one network layer in the
//! SpikeStream evaluation: its runtime is the slowest core or the DMA
//! engine, whichever finishes last, which is exactly how double buffering
//! hides (or fails to hide) memory transfers.

use serde::{Deserialize, Serialize};

use snitch_arch::{ClusterConfig, CostModel};
use snitch_mem::{DmaEngine, DmaRequest, InstructionCache};

use crate::core_model::WorkerCoreModel;
use crate::counters::PerfCounters;

/// Aggregated statistics of one execution phase (one layer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStats {
    /// Phase label (for example the layer name).
    pub label: String,
    /// Phase duration in cycles: slowest worker core or DMA completion.
    /// Guaranteed nonzero (an empty phase reports one cycle).
    pub cycles: u64,
    /// Duration of the compute part only (slowest worker core). Guaranteed
    /// nonzero, so downstream consumers never have to clamp.
    pub compute_cycles: u64,
    /// Cycle at which the DMA engine finished its last transfer.
    pub dma_cycles: u64,
    /// Summed duration of all DMA transfers. The gap between
    /// `compute_cycles + dma_busy_cycles` and `cycles` is the transfer time
    /// double buffering hid behind compute.
    pub dma_busy_cycles: u64,
    /// Average per-core FPU utilization (0..=1).
    pub fpu_utilization: f64,
    /// Average per-core instructions per cycle.
    pub ipc: f64,
    /// Summed counters over all worker cores.
    pub totals: PerfCounters,
    /// Per-core FPU utilization, indexed by core id.
    pub per_core_utilization: Vec<f64>,
    /// Bytes moved into the scratchpad by the DMA engine.
    pub dma_bytes_in: u64,
    /// Bytes moved out of the scratchpad by the DMA engine.
    pub dma_bytes_out: u64,
}

impl PhaseStats {
    /// Wall-clock duration of the phase at the given clock frequency.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }
}

/// A simulated Snitch cluster.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    config: ClusterConfig,
    cores: Vec<WorkerCoreModel>,
    dma: DmaEngine,
    icache: InstructionCache,
}

impl ClusterModel {
    /// Create a cluster with the given configuration and cost model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ClusterConfig::validate`].
    pub fn new(config: ClusterConfig, cost: CostModel) -> Self {
        config.validate().expect("invalid cluster configuration");
        let cores = (0..config.worker_cores)
            .map(|i| WorkerCoreModel::new(&config, cost.clone(), i))
            .collect();
        let icache = InstructionCache::new(&config, cost.icache_refill);
        let dma = DmaEngine::new(&config);
        ClusterModel { config, cores, dma, icache }
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Number of worker cores.
    pub fn worker_cores(&self) -> usize {
        self.cores.len()
    }

    /// Mutable access to a worker core model.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn core_mut(&mut self, core: usize) -> &mut WorkerCoreModel {
        &mut self.cores[core]
    }

    /// Shared access to all worker cores.
    pub fn cores(&self) -> &[WorkerCoreModel] {
        &self.cores
    }

    /// Issue a DMA transfer at cluster time `now` (usually 0 for the initial
    /// tile load, or a core's current time for double-buffered prefetches).
    pub fn dma_issue(&mut self, request: DmaRequest, now: u64) -> u64 {
        self.dma.issue(request, now).complete_cycle
    }

    /// Record execution of a code region on `core` and charge any refill
    /// stall to it. Region ids must be unique per distinct kernel region.
    pub fn fetch_code(&mut self, core: usize, region_id: u64, footprint_bytes: u32) {
        let stall = self.icache.fetch_region(region_id, footprint_bytes);
        if stall > 0 {
            self.cores[core].add_icache_stall(stall);
        }
    }

    /// Block every worker core until `cycle` waiting for prologue DMA tile
    /// loads (the program interpreter's double-buffer serialization point).
    pub fn stall_cores_until_dma(&mut self, cycle: u64) {
        for core in &mut self.cores {
            core.stall_until_dma(cycle);
        }
    }

    /// The worker core whose pipeline is least advanced in time — the core
    /// that steals the next work item under workload stealing.
    pub fn least_busy_core(&self) -> usize {
        (0..self.cores.len())
            .min_by_key(|&i| self.cores[i].counters().total_cycles().max(self.cores[i].int_time()))
            .expect("cluster has at least one core")
    }

    /// Close the current phase: aggregate all per-core counters and the DMA
    /// activity into a [`PhaseStats`], then reset the cores and the DMA
    /// engine for the next phase. The instruction cache keeps its contents
    /// (kernels stay resident across layers).
    ///
    /// The returned `cycles` and `compute_cycles` are guaranteed nonzero:
    /// even an empty phase costs one cycle, which lets downstream consumers
    /// divide by phase durations without clamping.
    pub fn finish_phase(&mut self, label: impl Into<String>) -> PhaseStats {
        let compute_cycles =
            self.cores.iter().map(|c| c.counters().total_cycles()).max().unwrap_or(0).max(1);
        let dma_cycles = self.dma.busy_until();
        let cycles = compute_cycles.max(dma_cycles);

        let mut totals = PerfCounters::new();
        let mut per_core_utilization = Vec::with_capacity(self.cores.len());
        let mut util_sum = 0.0;
        let mut ipc_sum = 0.0;
        for core in &self.cores {
            let c = core.counters();
            totals.merge(c);
            let u = c.fpu_utilization();
            per_core_utilization.push(u);
            util_sum += u;
            ipc_sum += c.ipc();
        }
        let n = self.cores.len().max(1) as f64;
        let (dma_in, dma_out) = self.dma.bytes_moved();

        let stats = PhaseStats {
            label: label.into(),
            cycles,
            compute_cycles,
            dma_cycles,
            dma_busy_cycles: self.dma.busy_cycles(),
            fpu_utilization: util_sum / n,
            ipc: ipc_sum / n,
            totals,
            per_core_utilization,
            dma_bytes_in: dma_in,
            dma_bytes_out: dma_out,
        };

        for core in &mut self.cores {
            core.reset();
        }
        self.dma.reset();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_arch::fp::FpFormat;
    use snitch_arch::isa::{FpOp, StreamPattern};
    use snitch_arch::{SsrId, TraceOp};
    use snitch_mem::dma::DmaDirection;

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn phase_cycles_track_the_slowest_core() {
        let mut cl = cluster();
        for core in 0..cl.worker_cores() {
            let reps = if core == 3 { 1000 } else { 10 };
            cl.core_mut(core).exec(&TraceOp::SsrConfig {
                ssr: SsrId::Ssr0,
                pattern: StreamPattern::Indirect {
                    index_base: 0,
                    index_bytes: 2,
                    data_base: 0x1000,
                    elem_bytes: 8,
                    indices: (0..reps).collect(),
                },
                shadow: true,
            });
            cl.core_mut(core).exec(&TraceOp::Frep {
                reps,
                body: vec![TraceOp::fp_streamed(FpOp::Add, FpFormat::Fp16, SsrId::Ssr0)],
            });
        }
        let stats = cl.finish_phase("test");
        assert!(stats.compute_cycles >= 1000);
        assert_eq!(stats.cycles, stats.compute_cycles, "no DMA traffic issued");
        assert_eq!(stats.per_core_utilization.len(), 8);
    }

    #[test]
    fn dma_bound_phase_is_limited_by_dma() {
        let mut cl = cluster();
        cl.core_mut(0).exec(&TraceOp::alu());
        let done = cl.dma_issue(DmaRequest::contiguous(DmaDirection::In, 1 << 20), 0);
        let stats = cl.finish_phase("dma-bound");
        assert_eq!(stats.cycles, done);
        assert!(stats.dma_cycles > stats.compute_cycles);
        assert_eq!(stats.dma_bytes_in, 1 << 20);
    }

    #[test]
    fn finish_phase_resets_cores_and_dma() {
        let mut cl = cluster();
        cl.core_mut(0).exec(&TraceOp::alu());
        cl.dma_issue(DmaRequest::contiguous(DmaDirection::Out, 4096), 0);
        let first = cl.finish_phase("a");
        assert!(first.cycles > 1);
        let second = cl.finish_phase("b");
        assert_eq!(second.cycles, 1, "empty phases report the guaranteed one cycle");
        assert_eq!(second.compute_cycles, 1);
        assert_eq!(second.dma_bytes_out, 0);
    }

    #[test]
    fn code_fetch_charges_refills_once() {
        let mut cl = cluster();
        cl.fetch_code(0, 42, 512);
        let stall_first = cl.cores()[0].counters().stall_icache;
        assert!(stall_first > 0);
        cl.fetch_code(1, 42, 512);
        assert_eq!(cl.cores()[1].counters().stall_icache, 0, "second core hits");
    }

    #[test]
    fn phase_seconds_uses_clock() {
        let stats = PhaseStats {
            label: "x".into(),
            cycles: 1_000_000,
            compute_cycles: 1_000_000,
            dma_cycles: 0,
            dma_busy_cycles: 0,
            fpu_utilization: 0.5,
            ipc: 1.0,
            totals: PerfCounters::new(),
            per_core_utilization: vec![],
            dma_bytes_in: 0,
            dma_bytes_out: 0,
        };
        assert!((stats.seconds(1.0e9) - 1.0e-3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "invalid cluster configuration")]
    fn invalid_config_panics() {
        let cfg = ClusterConfig { spm_banks: 33, ..ClusterConfig::default() };
        let _ = ClusterModel::new(cfg, CostModel::default());
    }
}
