//! Stream-program interpreter.
//!
//! Executes an *exact* [`StreamProgram`] on a [`ClusterModel`]: DMA phases
//! go to the cluster's DMA engine (double-buffered transfers overlap
//! compute, prologue loads gate it, epilogue write-backs wait for it),
//! compute phases distribute their work items over the worker cores by
//! workload stealing — always handing the next item to the core whose
//! pipeline is the least advanced in time, exactly the atomic `next_rf`
//! scheme of the paper's Fig. 2b — and every [`KernelOp`] lowers to the
//! trace operations of the per-core timing model.
//!
//! The analytic backend prices the *same* programs with
//! `spikestream_ir::CostIntegrator`; this module is the other consumer of
//! the IR, and the two are pinned against each other by the
//! `ir_equivalence` property tests at the repository root.

use snitch_arch::fp::FpFormat;
use snitch_arch::TraceOp;
use snitch_mem::dma::DmaDirection;
use spikestream_ir::{KernelOp, Phase, StreamProgram};

use crate::cluster::ClusterModel;
use crate::core_model::WorkerCoreModel;

/// Execute one exact stream program on the cluster.
///
/// Timing accumulates in the cluster's cores and DMA engine; close the
/// phase with [`ClusterModel::finish_phase`] to collect the statistics.
///
/// # Panics
///
/// Panics if the program is symbolic (fractional repetition counts or
/// expected-length streams) — symbolic programs can only be integrated.
pub fn execute_program(cluster: &mut ClusterModel, program: &StreamProgram) {
    assert!(
        !program.is_symbolic(),
        "symbolic programs cannot be interpreted; use the analytic cost integration"
    );
    let format = program.format;
    let mut prologue_floor = 0u64;

    for phase in &program.phases {
        match phase {
            Phase::Dma(d) => {
                let at = if d.direction == DmaDirection::Out && !d.double_buffered {
                    // Epilogue write-back: wait for the compute stream.
                    compute_time(cluster)
                } else {
                    // Prologue loads and double-buffered transfers issue as
                    // early as the engine allows.
                    0
                };
                let done = cluster.dma_issue(d.request(), at);
                if d.direction == DmaDirection::In && !d.double_buffered {
                    prologue_floor = prologue_floor.max(done);
                }
            }
            Phase::Compute(c) => {
                cluster.stall_cores_until_dma(prologue_floor);
                for item in &c.items {
                    for _ in 0..item.instances as u64 {
                        let core = cluster.least_busy_core();
                        for region in &c.code {
                            cluster.fetch_code(core, region.id, region.bytes);
                        }
                        let model = cluster.core_mut(core);
                        for op in &item.ops {
                            exec_op(model, op, format);
                        }
                    }
                }
                // Implicit end-of-phase barrier: every core joins its
                // outstanding FP work.
                for core in 0..cluster.worker_cores() {
                    cluster.core_mut(core).exec(&TraceOp::Barrier);
                }
            }
        }
    }
}

/// Completion time of the slowest worker core so far.
fn compute_time(cluster: &ClusterModel) -> u64 {
    cluster.cores().iter().map(|c| c.counters().total_cycles()).max().unwrap_or(0)
}

fn exec_op(core: &mut WorkerCoreModel, op: &KernelOp, format: FpFormat) {
    match op {
        KernelOp::Int { op, addr: _, reps } => {
            core.exec_int_repeated(*op, int_reps(*reps));
        }
        KernelOp::Fp { op, addr: _, reps } => {
            core.exec_fp_repeated(*op, format, int_reps(*reps));
        }
        KernelOp::Loop { body, reps } => {
            let reps = int_reps(*reps);
            if reps == 0 {
                return;
            }
            if let Some(block) = straight_line_block(body, format) {
                core.exec_repeated(&block, reps);
            } else {
                for _ in 0..reps {
                    for inner in body {
                        exec_op(core, inner, format);
                    }
                }
            }
        }
        KernelOp::Stream { ssrs, op } => core.exec_stream(ssrs, *op, format),
        KernelOp::Barrier => core.exec(&TraceOp::Barrier),
    }
}

/// Expand a straight-line `Int`/`Fp` body into the trace block consumed by
/// the repetition fast path; `None` if the body contains control flow.
fn straight_line_block(body: &[KernelOp], format: FpFormat) -> Option<Vec<TraceOp>> {
    let mut block = Vec::with_capacity(body.len());
    for op in body {
        match op {
            KernelOp::Int { op, addr, reps } => {
                let trace = TraceOp::Int { op: *op, addr: *addr };
                for _ in 0..int_reps(*reps) {
                    block.push(trace.clone());
                }
            }
            KernelOp::Fp { op, addr, reps } => {
                let trace = TraceOp::Fp { op: *op, format, ssr_srcs: Vec::new(), addr: *addr };
                for _ in 0..int_reps(*reps) {
                    block.push(trace.clone());
                }
            }
            _ => return None,
        }
    }
    Some(block)
}

fn int_reps(reps: f64) -> u64 {
    debug_assert!(reps.fract() == 0.0, "exact programs carry integral repetition counts");
    reps as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_arch::isa::FpOp;
    use snitch_arch::{ClusterConfig, CostModel, SsrId};
    use spikestream_ir::{
        CodeRegion, ComputePhase, CostIntegrator, DmaPhase, IndexStream, StreamSpec, WorkItem,
    };

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    fn stream_item(n: u32) -> WorkItem {
        WorkItem::new(vec![
            KernelOp::amo(0),
            KernelOp::branch(),
            KernelOp::Stream {
                ssrs: vec![(
                    SsrId::Ssr0,
                    StreamSpec::Indirect {
                        index_base: 0x100,
                        index_bytes: 2,
                        data_base: 0x1000,
                        elem_bytes: 8,
                        indices: IndexStream::Exact((0..n).collect()),
                    },
                )],
                op: FpOp::Add,
            },
        ])
    }

    fn program(items: Vec<WorkItem>) -> StreamProgram {
        let mut p = StreamProgram::new("test", FpFormat::Fp16);
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 4096, false)));
        p.push(Phase::Compute(ComputePhase {
            code: vec![CodeRegion { id: 0x99, bytes: 512 }],
            items,
        }));
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::Out, 256, false)));
        p
    }

    #[test]
    fn interpreter_and_integrator_agree_exactly_on_totals() {
        let p = program((0..32).map(|_| stream_item(128)).collect());
        let mut cl = cluster();
        execute_program(&mut cl, &p);
        let stats = cl.finish_phase("x");

        let cost = CostIntegrator::snitch().integrate(&p);
        assert_eq!(stats.totals.int_instrs as f64, cost.int_instrs);
        assert_eq!(stats.totals.fp_instrs as f64, cost.fp_instrs);
        assert_eq!(stats.totals.flops as f64, cost.flops);
        assert_eq!(stats.totals.stream_elements as f64, cost.stream_elements);
        assert_eq!(stats.dma_bytes_in, cost.dma_bytes_in);
        assert_eq!(stats.dma_bytes_out, cost.dma_bytes_out);
        // Cycle counts track each other closely (distribution is identical
        // here, so the only slack is bookkeeping).
        let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
            / stats.compute_cycles as f64;
        assert!(
            rel < 0.02,
            "compute cycles within 2%: sim {} vs ir {}",
            stats.compute_cycles,
            cost.compute_cycles
        );
    }

    #[test]
    fn prologue_load_gates_compute() {
        let mut p = StreamProgram::new("gate", FpFormat::Fp16);
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 1 << 16, false)));
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::new(vec![KernelOp::alu()])],
        }));
        let mut cl = cluster();
        execute_program(&mut cl, &p);
        let stats = cl.finish_phase("gate");
        assert!(stats.compute_cycles > 1000, "cores wait for the tile load");
        assert!(stats.totals.stall_dma_wait > 0);
    }

    #[test]
    fn double_buffered_transfers_overlap_compute() {
        let mut p = StreamProgram::new("db", FpFormat::Fp16);
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 1 << 14, false)));
        for _ in 0..4 {
            p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::In, 1 << 14, true)));
        }
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: (0..64).map(|_| stream_item(256)).collect(),
        }));
        let mut cl = cluster();
        execute_program(&mut cl, &p);
        let stats = cl.finish_phase("db");
        assert!(
            stats.cycles < stats.compute_cycles + stats.dma_busy_cycles,
            "double-buffered tiles must hide behind compute: cycles {} compute {} dma busy {}",
            stats.cycles,
            stats.compute_cycles,
            stats.dma_busy_cycles
        );
    }

    #[test]
    fn epilogue_writeback_waits_for_compute() {
        let mut p = StreamProgram::new("ep", FpFormat::Fp16);
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: (0..8).map(|_| stream_item(512)).collect(),
        }));
        p.push(Phase::Dma(DmaPhase::contiguous(DmaDirection::Out, 4096, false)));
        let mut cl = cluster();
        execute_program(&mut cl, &p);
        let stats = cl.finish_phase("ep");
        assert!(stats.dma_cycles > stats.compute_cycles, "write-back lands after compute");
        assert_eq!(stats.cycles, stats.dma_cycles);
    }

    #[test]
    #[should_panic(expected = "symbolic programs")]
    fn symbolic_program_is_rejected() {
        let mut p = StreamProgram::new("sym", FpFormat::Fp16);
        p.push(Phase::Compute(ComputePhase {
            code: vec![],
            items: vec![WorkItem::new(vec![KernelOp::alu().times(0.5)])],
        }));
        execute_program(&mut cluster(), &p);
    }

    #[test]
    fn work_items_spread_over_all_cores() {
        let p = program((0..16).map(|_| stream_item(64)).collect());
        let mut cl = cluster();
        execute_program(&mut cl, &p);
        assert!(cl.cores().iter().all(|c| c.counters().int_instrs > 0), "every core claims work");
    }
}
