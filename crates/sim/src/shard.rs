//! Multi-cluster sharding: N independent clusters fed from one sample
//! stream.
//!
//! The paper evaluates a single Snitch cluster; fleet-scale batch serving
//! replicates that cluster N times and streams batch samples across the
//! replicas. This module models exactly the scheduling-relevant part of
//! that fabric: each [`ClusterShard`] keeps *occupancy counters* (samples
//! executed, busy cycles in simulated time) and a [`ShardSet`] hands every
//! incoming sample to the least-loaded shard — the same workload-stealing
//! policy the kernels use for receptive fields (`next_rf` in Fig. 2b of
//! the paper), lifted from cores-within-a-cluster to
//! clusters-within-a-fleet.
//!
//! Because the claim rule only depends on deterministic simulated cycle
//! counts (least accumulated busy cycles, ties broken by the lowest shard
//! id), the resulting assignment and all derived statistics (makespan,
//! per-shard utilization, imbalance) are reproducible regardless of how
//! the host machine parallelizes the actual sample evaluation.
//!
//! # Example
//!
//! ```
//! use snitch_sim::ShardSet;
//!
//! let mut set = ShardSet::new(2);
//! // A heavy sample lands on shard 0 ...
//! assert_eq!(set.assign(1000.0), 0);
//! // ... so the next two go to the idle shard 1.
//! assert_eq!(set.assign(400.0), 1);
//! assert_eq!(set.assign(400.0), 1);
//! assert_eq!(set.makespan_cycles(), 1000.0);
//! assert!(set.imbalance() > 1.0);
//! ```

use serde::{Deserialize, Serialize};

/// Occupancy counters of one simulated cluster replica.
///
/// Cycles are tracked as `f64` because the batch driver schedules on the
/// per-sample mean cycle counts reported by the execution backends, which
/// are floating point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterShard {
    id: usize,
    samples: u64,
    busy_cycles: f64,
}

impl ClusterShard {
    /// An idle shard with the given id.
    pub fn new(id: usize) -> Self {
        ClusterShard { id, samples: 0, busy_cycles: 0.0 }
    }

    /// Shard id (position in the fleet).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of samples this shard has executed.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Simulated cycles this shard has spent busy.
    pub fn busy_cycles(&self) -> f64 {
        self.busy_cycles
    }

    /// Charge one sample of `cycles` simulated cycles to this shard.
    pub fn record(&mut self, cycles: f64) {
        self.samples += 1;
        self.busy_cycles += cycles.max(0.0);
    }
}

/// A fleet of N independent cluster shards with least-loaded dispatch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardSet {
    shards: Vec<ClusterShard>,
    dispatch_cycles: f64,
}

impl ShardSet {
    /// Create a fleet of `n` idle shards (`n` is clamped to at least 1).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        ShardSet { shards: (0..n).map(ClusterShard::new).collect(), dispatch_cycles: 0.0 }
    }

    /// Charge `cycles` of dispatch overhead to a shard per claimed sample
    /// (models the atomic batch-counter bump across the fabric; zero by
    /// default).
    pub fn with_dispatch_cycles(mut self, cycles: f64) -> Self {
        self.dispatch_cycles = cycles.max(0.0);
        self
    }

    /// Number of shards in the fleet.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the fleet is empty (never true: `new` clamps to one shard).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The per-shard occupancy counters.
    pub fn shards(&self) -> &[ClusterShard] {
        &self.shards
    }

    /// The shard that steals the next sample: least accumulated busy
    /// cycles, ties broken by the lowest shard id. Purely a function of the
    /// counters, hence deterministic.
    pub fn claim(&self) -> usize {
        self.shards
            .iter()
            .min_by(|a, b| a.busy_cycles.partial_cmp(&b.busy_cycles).unwrap().then(a.id.cmp(&b.id)))
            .expect("a shard set holds at least one shard")
            .id
    }

    /// Charge one sample of `cycles` (plus the dispatch overhead) to
    /// `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn record(&mut self, shard: usize, cycles: f64) {
        self.shards[shard].record(cycles + self.dispatch_cycles);
    }

    /// Claim the next sample and charge it in one step; returns the shard
    /// that executed it.
    pub fn assign(&mut self, cycles: f64) -> usize {
        let shard = self.claim();
        self.record(shard, cycles);
        shard
    }

    /// Simulated wall time of the batch: the busiest shard's cycles.
    pub fn makespan_cycles(&self) -> f64 {
        self.shards.iter().map(|s| s.busy_cycles).fold(0.0, f64::max)
    }

    /// Total busy cycles over all shards.
    pub fn total_busy_cycles(&self) -> f64 {
        self.shards.iter().map(|s| s.busy_cycles).sum()
    }

    /// Fraction of the makespan that `shard` spent busy (0 when the fleet
    /// is idle).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn utilization(&self, shard: usize) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0.0 {
            0.0
        } else {
            self.shards[shard].busy_cycles / makespan
        }
    }

    /// Load imbalance: busiest shard's cycles over the mean (1.0 is
    /// perfectly balanced; 0 when the fleet is idle).
    pub fn imbalance(&self) -> f64 {
        let mean = self.total_busy_cycles() / self.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            self.makespan_cycles() / mean
        }
    }

    /// Effective parallel speedup of the fleet over one shard running the
    /// whole stream: total busy cycles over the makespan.
    pub fn batch_speedup(&self) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0.0 {
            0.0
        } else {
            self.total_busy_cycles() / makespan
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_clamps_to_one_shard() {
        let set = ShardSet::new(0);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
    }

    #[test]
    fn uniform_samples_round_robin_across_shards() {
        let mut set = ShardSet::new(4);
        let assigned: Vec<usize> = (0..8).map(|_| set.assign(100.0)).collect();
        assert_eq!(assigned, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        assert!(set.shards().iter().all(|s| s.samples() == 2));
        assert_eq!(set.imbalance(), 1.0);
        assert_eq!(set.batch_speedup(), 4.0);
    }

    #[test]
    fn heavy_sample_is_worked_around() {
        let mut set = ShardSet::new(2);
        assert_eq!(set.assign(10_000.0), 0);
        for _ in 0..4 {
            assert_eq!(set.assign(100.0), 1, "light samples steal around the busy shard");
        }
        assert_eq!(set.shards()[0].samples(), 1);
        assert_eq!(set.shards()[1].samples(), 4);
        assert_eq!(set.makespan_cycles(), 10_000.0);
        assert!((set.utilization(1) - 400.0 / 10_000.0).abs() < 1e-12);
        assert!(set.imbalance() > 1.9);
    }

    #[test]
    fn dispatch_overhead_is_charged_per_sample() {
        let mut set = ShardSet::new(1).with_dispatch_cycles(10.0);
        set.assign(90.0);
        set.assign(90.0);
        assert_eq!(set.total_busy_cycles(), 200.0);
        assert_eq!(set.shards()[0].samples(), 2);
    }

    #[test]
    fn idle_fleet_reports_zeroes() {
        let set = ShardSet::new(3);
        assert_eq!(set.makespan_cycles(), 0.0);
        assert_eq!(set.imbalance(), 0.0);
        assert_eq!(set.batch_speedup(), 0.0);
        assert_eq!(set.utilization(0), 0.0);
    }

    #[test]
    fn single_shard_absorbs_everything() {
        let mut set = ShardSet::new(1);
        for i in 0..10 {
            assert_eq!(set.assign(i as f64), 0);
        }
        assert_eq!(set.shards()[0].samples(), 10);
        assert_eq!(set.batch_speedup(), 1.0);
        assert_eq!(set.imbalance(), 1.0);
    }

    #[test]
    fn negative_cycles_are_clamped() {
        let mut shard = ClusterShard::new(0);
        shard.record(-5.0);
        assert_eq!(shard.busy_cycles(), 0.0);
        assert_eq!(shard.samples(), 1);
    }
}
