//! Deterministic gateway observability: [`GatewayStats`].
//!
//! Counters live in relaxed atomics on the gateway's shared state, so a
//! monitoring thread snapshots them without ever contending with
//! submitters or dispatchers — the same discipline as
//! [`Session::stats_snapshot`](spikestream::Session::stats_snapshot).
//! Every counter is a deterministic function of the request/batch/publish
//! history, never of wall-clock timing, so a paced driver (the
//! `serve-demo` CLI, the CI smoke) can pin a snapshot against a golden.

use std::sync::atomic::{AtomicU64, Ordering};

use spikestream::SessionStats;

/// Number of buckets in the batch-size histogram.
pub const BATCH_HIST_BUCKETS: usize = 8;

/// Labels of the batch-size histogram buckets, by samples per dispatched
/// batch: power-of-two ranges, last bucket open-ended.
pub const BATCH_HIST_LABELS: [&str; BATCH_HIST_BUCKETS] =
    ["1", "2", "3-4", "5-8", "9-16", "17-32", "33-64", "65+"];

/// The histogram bucket a batch of `samples` samples lands in.
pub fn batch_hist_bucket(samples: usize) -> usize {
    match samples {
        0 | 1 => 0,
        n => (usize::BITS - (n - 1).leading_zeros()).min(BATCH_HIST_BUCKETS as u32 - 1) as usize,
    }
}

/// A point-in-time snapshot of a gateway's counters (see
/// [`Gateway::stats`](crate::Gateway::stats)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GatewayStats {
    /// Requests accepted into a tenant queue.
    pub submitted: u64,
    /// Requests completed successfully (response delivered).
    pub completed: u64,
    /// Requests rejected because a tenant queue was at capacity (includes
    /// submitters that timed out waiting for space).
    pub rejected_full: u64,
    /// Micro-batches dispatched (each one `Session::run_gather` call).
    pub batches: u64,
    /// Requests that shared their batch with at least one other request.
    pub coalesced: u64,
    /// Publishes that replaced a live tenant's plan.
    pub hot_swaps: u64,
    /// Batches whose execution panicked, poisoning their tenant.
    pub panics: u64,
    /// Histogram of dispatched batch sizes in samples; bucket ranges in
    /// [`BATCH_HIST_LABELS`].
    pub batch_hist: [u64; BATCH_HIST_BUCKETS],
    /// Per-tenant state, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

/// Per-tenant slice of a [`GatewayStats`] snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TenantStats {
    /// Tenant name.
    pub name: String,
    /// Currently published plan version.
    pub version: u64,
    /// Plan version the tenant's dispatcher session is currently open on
    /// (lags `version` briefly during a hot swap; 0 before the first
    /// batch boundary).
    pub serving_version: u64,
    /// Requests waiting in the tenant queue right now.
    pub queue_depth: usize,
    /// Whether a panic poisoned this tenant (cleared by the next publish).
    pub poisoned: bool,
    /// Serving-session counters of the tenant's dispatcher, as of its last
    /// completed batch (all zero before the first).
    pub session: SessionStats,
}

/// The gateway-global atomic counter cells behind [`GatewayStats`].
#[derive(Debug, Default)]
pub(crate) struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected_full: AtomicU64,
    batches: AtomicU64,
    coalesced: AtomicU64,
    hot_swaps: AtomicU64,
    panics: AtomicU64,
    batch_hist: [AtomicU64; BATCH_HIST_BUCKETS],
}

impl Counters {
    pub(crate) fn on_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_completed(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_rejected_full(&self) {
        self.rejected_full.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_hot_swap(&self) {
        self.hot_swaps.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one dispatched batch of `requests` coalesced requests
    /// totalling `samples` samples.
    pub(crate) fn on_batch(&self, requests: usize, samples: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if requests > 1 {
            self.coalesced.fetch_add(requests as u64, Ordering::Relaxed);
        }
        self.batch_hist[batch_hist_bucket(samples)].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the global counters; the caller fills in `tenants`.
    pub(crate) fn snapshot(&self) -> GatewayStats {
        GatewayStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            rejected_full: self.rejected_full.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            hot_swaps: self.hot_swaps.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            batch_hist: std::array::from_fn(|i| self.batch_hist[i].load(Ordering::Relaxed)),
            tenants: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_cover_the_powers_of_two() {
        let cases = [
            (1, 0),
            (2, 1),
            (3, 2),
            (4, 2),
            (5, 3),
            (8, 3),
            (9, 4),
            (16, 4),
            (17, 5),
            (32, 5),
            (33, 6),
            (64, 6),
            (65, 7),
            (1000, 7),
        ];
        for (samples, bucket) in cases {
            assert_eq!(batch_hist_bucket(samples), bucket, "samples={samples}");
        }
    }

    #[test]
    fn counters_fold_into_a_snapshot() {
        let counters = Counters::default();
        counters.on_submitted();
        counters.on_submitted();
        counters.on_batch(2, 2);
        counters.on_batch(1, 64);
        counters.on_completed();
        counters.on_rejected_full();
        counters.on_hot_swap();
        let stats = counters.snapshot();
        assert_eq!(stats.submitted, 2);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.rejected_full, 1);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.coalesced, 2);
        assert_eq!(stats.hot_swaps, 1);
        assert_eq!(stats.batch_hist, [0, 1, 0, 0, 0, 0, 1, 0]);
    }
}
