//! The versioned multi-tenant plan store: [`PlanRegistry`].
//!
//! A registry maps tenant names to the plan currently serving them.
//! Publishing is a *hot swap*: the new plan is installed atomically under
//! the registry lock while readers that resolved the previous
//! [`VersionedPlan`] keep serving from their own `Arc` until they next
//! look the tenant up — nothing in flight is invalidated, and every
//! result can name the exact version it ran under.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use spikestream::Plan;

/// One published plan generation of a tenant: the immutable compiled
/// [`Plan`] plus the monotonically increasing version number the registry
/// stamped it with (first publish is version 1).
///
/// Holders of a `VersionedPlan` own the plan for as long as they keep the
/// `Arc` — a later [`PlanRegistry::publish`] never tears a generation out
/// from under a dispatcher that is mid-batch on it.
#[derive(Debug, Clone)]
pub struct VersionedPlan {
    /// The compiled plan of this generation.
    pub plan: Arc<Plan>,
    /// Monotonic per-tenant publish counter (1 for the first publish).
    pub version: u64,
}

/// A thread-safe map from tenant name to the current [`VersionedPlan`].
///
/// All methods take `&self`; the registry is shared across submitter and
/// dispatcher threads behind one `Arc`. Lookups clone an `Arc`, so the
/// lock is held only for the map access, never for serving.
#[derive(Debug, Default)]
pub struct PlanRegistry {
    slots: Mutex<BTreeMap<String, Arc<VersionedPlan>>>,
}

impl PlanRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install `plan` as tenant `name`'s current generation, creating the
    /// tenant on first publish. Returns the new version number: 1 for a
    /// new tenant, `previous + 1` for a hot swap.
    pub fn publish(&self, name: &str, plan: Plan) -> u64 {
        let mut slots = self.slots.lock().expect("plan registry poisoned");
        let version = slots.get(name).map_or(1, |prev| prev.version + 1);
        slots.insert(name.to_string(), Arc::new(VersionedPlan { plan: Arc::new(plan), version }));
        version
    }

    /// The current generation of tenant `name`, if published.
    pub fn get(&self, name: &str) -> Option<Arc<VersionedPlan>> {
        self.slots.lock().expect("plan registry poisoned").get(name).cloned()
    }

    /// The current version of tenant `name`, if published. Cheaper than
    /// [`PlanRegistry::get`] for the dispatcher's batch-boundary staleness
    /// check.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.slots.lock().expect("plan registry poisoned").get(name).map(|v| v.version)
    }

    /// All published tenant names, in sorted order.
    pub fn names(&self) -> Vec<String> {
        self.slots.lock().expect("plan registry poisoned").keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant};

    fn plan() -> Plan {
        Engine::svgg11(1).compile(&InferenceConfig {
            batch: 2,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        })
    }

    #[test]
    fn versions_are_monotonic_per_tenant() {
        let registry = PlanRegistry::new();
        assert_eq!(registry.publish("a", plan()), 1);
        assert_eq!(registry.publish("b", plan()), 1);
        assert_eq!(registry.publish("a", plan()), 2);
        assert_eq!(registry.version("a"), Some(2));
        assert_eq!(registry.version("b"), Some(1));
        assert_eq!(registry.version("c"), None);
        assert_eq!(registry.names(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn old_generations_survive_a_hot_swap() {
        let registry = PlanRegistry::new();
        registry.publish("a", plan());
        let old = registry.get("a").expect("published");
        registry.publish("a", plan());
        // The swapped-out generation is still fully usable through the
        // retained Arc — in-flight batches finish on it.
        assert_eq!(old.version, 1);
        let report = old.plan.open_session().infer(&spikestream::Request::batch(2));
        assert!(report.total_cycles() > 0.0);
        assert_eq!(registry.get("a").expect("published").version, 2);
    }
}
