//! The concurrent serving front end: [`Gateway`].
//!
//! One dispatcher thread per tenant owns that tenant's [`Session`] and
//! drains a bounded submission queue, coalescing compatible waiting
//! requests into a single dynamically micro-batched
//! [`Session::run_gather`] call — closed on batch size or linger
//! deadline, whichever comes first — and demultiplexing per-slot results
//! back to each caller's [`ResponseHandle`]. Samples are independently
//! seeded by the core, so coalescing can never change a result: every
//! per-request response is bit-identical to serving that request alone on
//! a bare session.
//!
//! The threading idiom is the same parked epoch/condvar discipline as
//! `spikestream`'s worker pool: submitters park on `space` when a queue
//! is full, the dispatcher parks on `work` when its queue is empty, and
//! all cross-thread signalling runs through those two condvars — no
//! async runtime, no channels.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use spikestream::{
    attribute_shards, InferenceReport, LayerSample, Plan, Request, ResultSink, Session,
    SessionStatsHandle,
};

use crate::registry::{PlanRegistry, VersionedPlan};
use crate::stats::{Counters, GatewayStats, TenantStats};
use crate::{GatewayConfig, ServeError};

/// Per-request serving options, mirroring the [`Request`] knobs a bare
/// session caller would set. Requests are coalescible into one batch only
/// if their `timesteps` agree (shard attribution is a pure per-request
/// fold over cycle totals, so differing `shards` never split a batch).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SubmitOptions {
    /// Temporal-pipeline override, as in [`Request::timesteps`].
    pub timesteps: Option<usize>,
    /// Attribute this request to a simulated shard fleet, as in
    /// [`Request::shards`]; the [`ShardSummary`](spikestream::ShardSummary)
    /// lands in [`GatewayResponse::report`].
    pub shards: Option<usize>,
}

impl SubmitOptions {
    /// Override the temporal timestep count.
    pub fn with_timesteps(mut self, timesteps: usize) -> Self {
        self.timesteps = Some(timesteps.max(1));
        self
    }

    /// Attribute the request to `shards` simulated cluster shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }
}

type ResponseSlot = Option<Result<GatewayResponse, ServeError>>;

/// The rendezvous cell a dispatcher fulfills and a client waits on.
#[derive(Default)]
struct ResponseCell {
    slot: Mutex<ResponseSlot>,
    ready: Condvar,
}

impl ResponseCell {
    fn fulfill(&self, result: Result<GatewayResponse, ServeError>) {
        *self.slot.lock().expect("response cell poisoned") = Some(result);
        self.ready.notify_all();
    }
}

/// A claim on one submitted request's eventual result (see
/// [`Gateway::submit`]).
pub struct ResponseHandle {
    cell: Arc<ResponseCell>,
}

impl ResponseHandle {
    /// Block until the request completes, consuming the handle.
    pub fn wait(self) -> Result<GatewayResponse, ServeError> {
        let mut slot = self.cell.slot.lock().expect("response cell poisoned");
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.cell.ready.wait(slot).expect("response cell poisoned");
        }
    }

    /// Whether the result has already arrived ([`ResponseHandle::wait`]
    /// would not block).
    pub fn is_ready(&self) -> bool {
        self.cell.slot.lock().expect("response cell poisoned").is_some()
    }
}

/// One completed request: the raw per-sample measurements plus everything
/// needed to fold them into the exact [`InferenceReport`] a bare
/// [`Session`] would have produced.
///
/// The fold is deferred to [`GatewayResponse::report`] so the dispatcher's
/// demultiplex step stays a plain slice copy — callers that only need raw
/// layer samples ([`GatewayResponse::layers`]) never pay for a report.
pub struct GatewayResponse {
    plan: Arc<VersionedPlan>,
    opts: SubmitOptions,
    samples: usize,
    layers: Vec<LayerSample>,
    cycles: Vec<f64>,
    batch_samples: usize,
    batch_requests: usize,
}

impl GatewayResponse {
    /// The plan version this request was evaluated under.
    pub fn plan_version(&self) -> u64 {
        self.plan.version
    }

    /// Number of samples this request asked for.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Raw per-layer measurements, sample-major then step-major — the
    /// exact stream a bare session would have delivered to a
    /// [`ResultSink`].
    pub fn layers(&self) -> &[LayerSample] {
        &self.layers
    }

    /// Per-sample cycle totals, in request order.
    pub fn cycles(&self) -> &[f64] {
        &self.cycles
    }

    /// Total samples in the coalesced batch this request rode in.
    pub fn batch_samples(&self) -> usize {
        self.batch_samples
    }

    /// Number of requests coalesced into that batch.
    pub fn batch_requests(&self) -> usize {
        self.batch_requests
    }

    /// Fold this request's samples into the [`InferenceReport`] a bare
    /// `Session::infer` over the same samples and options would return —
    /// byte-identical, including the deterministic shard attribution.
    pub fn report(&self) -> InferenceReport {
        let mut request = Request::batch(self.samples);
        if let Some(timesteps) = self.opts.timesteps {
            request = request.with_timesteps(timesteps);
        }
        let mut report = self.plan.plan.fold_report(&request, &self.layers, self.samples);
        if let Some(shards) = self.opts.shards {
            report.shards = Some(attribute_shards(&self.cycles, shards));
        }
        report
    }
}

/// One queued request awaiting dispatch.
struct Pending {
    samples: Vec<usize>,
    opts: SubmitOptions,
    cell: Arc<ResponseCell>,
}

/// Mutable per-tenant state, guarded by [`Tenant::state`].
#[derive(Default)]
struct TenantState {
    queue: VecDeque<Pending>,
    paused: bool,
    shutdown: bool,
    dispatcher_alive: bool,
    poisoned: Option<String>,
    serving_version: u64,
    session_stats: Option<SessionStatsHandle>,
}

/// One tenant: a bounded queue plus the two condvars its dispatcher and
/// submitters park on.
struct Tenant {
    name: String,
    state: Mutex<TenantState>,
    /// Dispatcher parks here while the queue is empty (or paused);
    /// submitters and [`Gateway::publish`]/[`Gateway::resume`] signal it.
    work: Condvar,
    /// Submitters park here while the queue is at capacity; the
    /// dispatcher signals it as it pops.
    space: Condvar,
}

impl Tenant {
    fn new(name: &str) -> Self {
        Tenant {
            name: name.to_string(),
            state: Mutex::new(TenantState::default()),
            work: Condvar::new(),
            space: Condvar::new(),
        }
    }
}

/// State shared between the gateway handle and every dispatcher thread.
struct Shared {
    config: GatewayConfig,
    registry: Arc<PlanRegistry>,
    tenants: Mutex<BTreeMap<String, Arc<Tenant>>>,
    counters: Counters,
    closed: AtomicBool,
}

impl Shared {
    fn tenant(&self, name: &str) -> Result<Arc<Tenant>, ServeError> {
        self.tenants
            .lock()
            .expect("tenant map poisoned")
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::UnknownTenant(name.to_string()))
    }
}

/// The serving gateway: a [`PlanRegistry`] of named, versioned tenants,
/// each served by its own dispatcher thread that dynamically micro-batches
/// queued requests (see the [crate docs](crate)).
///
/// Dropping the gateway shuts it down: queues drain, dispatchers join.
pub struct Gateway {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Gateway {
    /// An empty gateway; add tenants with [`Gateway::publish`].
    pub fn new(config: GatewayConfig) -> Self {
        Gateway {
            shared: Arc::new(Shared {
                config,
                registry: Arc::new(PlanRegistry::new()),
                tenants: Mutex::new(BTreeMap::new()),
                counters: Counters::default(),
                closed: AtomicBool::new(false),
            }),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The underlying plan registry (for version lookups; publish through
    /// [`Gateway::publish`] so dispatcher lifecycle stays managed).
    pub fn registry(&self) -> Arc<PlanRegistry> {
        Arc::clone(&self.shared.registry)
    }

    /// Install `plan` as tenant `tenant`'s current generation and return
    /// the new version number (1 on first publish).
    ///
    /// Hot swap: a republish over a live tenant never drops queued
    /// requests. The dispatcher finishes its in-flight batch on the old
    /// plan (those results carry the old version), then reopens its
    /// session on the new generation — everything still queued, and every
    /// later submission, runs on the new version. Publishing also clears a
    /// poisoned tenant (see [`ServeError::Poisoned`]) by restarting its
    /// dispatcher on the fresh plan.
    pub fn publish(&self, tenant: &str, plan: Plan) -> Result<u64, ServeError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let version = self.shared.registry.publish(tenant, plan);
        if version > 1 {
            self.shared.counters.on_hot_swap();
        }
        let tenant = {
            let mut tenants = self.shared.tenants.lock().expect("tenant map poisoned");
            Arc::clone(
                tenants.entry(tenant.to_string()).or_insert_with(|| Arc::new(Tenant::new(tenant))),
            )
        };
        let mut state = tenant.state.lock().expect("tenant state poisoned");
        state.poisoned = None;
        if state.dispatcher_alive {
            // Wake the parked dispatcher so it notices the version bump at
            // its next batch boundary.
            tenant.work.notify_all();
        } else {
            state.dispatcher_alive = true;
            let shared = Arc::clone(&self.shared);
            let worker = Arc::clone(&tenant);
            let handle = std::thread::Builder::new()
                .name(format!("serve-{}", tenant.name))
                .spawn(move || run_dispatcher(&shared, &worker))
                .expect("failed to spawn gateway dispatcher thread");
            self.handles.lock().expect("handle list poisoned").push(handle);
        }
        Ok(version)
    }

    /// Submit `samples` to tenant `tenant` with default options. Fails
    /// fast with [`ServeError::Full`] when the tenant queue is at
    /// capacity.
    pub fn submit(&self, tenant: &str, samples: &[usize]) -> Result<ResponseHandle, ServeError> {
        self.enqueue(tenant, samples, SubmitOptions::default(), None)
    }

    /// [`Gateway::submit`] with explicit per-request options.
    pub fn submit_with(
        &self,
        tenant: &str,
        samples: &[usize],
        opts: SubmitOptions,
    ) -> Result<ResponseHandle, ServeError> {
        self.enqueue(tenant, samples, opts, None)
    }

    /// [`Gateway::submit_with`], but park up to `timeout` for queue space
    /// instead of failing fast; [`ServeError::Timeout`] if none opens up.
    pub fn submit_timeout(
        &self,
        tenant: &str,
        samples: &[usize],
        opts: SubmitOptions,
        timeout: Duration,
    ) -> Result<ResponseHandle, ServeError> {
        self.enqueue(tenant, samples, opts, Some(timeout))
    }

    fn enqueue(
        &self,
        name: &str,
        samples: &[usize],
        opts: SubmitOptions,
        wait: Option<Duration>,
    ) -> Result<ResponseHandle, ServeError> {
        if samples.is_empty() {
            return Err(ServeError::EmptyRequest);
        }
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Shutdown);
        }
        let tenant = self.shared.tenant(name)?;
        let cap = self.shared.config.queue_cap.max(1);
        let deadline = wait.map(|timeout| Instant::now() + timeout);
        let mut state = tenant.state.lock().expect("tenant state poisoned");
        loop {
            if state.shutdown {
                return Err(ServeError::Shutdown);
            }
            if let Some(message) = &state.poisoned {
                return Err(ServeError::Poisoned(message.clone()));
            }
            if state.queue.len() < cap {
                break;
            }
            let Some(deadline) = deadline else {
                self.shared.counters.on_rejected_full();
                return Err(ServeError::Full { tenant: name.to_string(), cap });
            };
            let now = Instant::now();
            if now >= deadline {
                self.shared.counters.on_rejected_full();
                return Err(ServeError::Timeout { tenant: name.to_string() });
            }
            let (guard, _timed_out) =
                tenant.space.wait_timeout(state, deadline - now).expect("tenant state poisoned");
            state = guard;
        }
        let cell = Arc::new(ResponseCell::default());
        state.queue.push_back(Pending { samples: samples.to_vec(), opts, cell: Arc::clone(&cell) });
        self.shared.counters.on_submitted();
        tenant.work.notify_all();
        Ok(ResponseHandle { cell })
    }

    /// Hold tenant `tenant`'s dispatcher: submissions still queue (and
    /// still backpressure), nothing dispatches until
    /// [`Gateway::resume`]. Deterministic drivers (tests, benches, the
    /// demo CLI) use this to pin exact batch compositions.
    pub fn pause(&self, tenant: &str) -> Result<(), ServeError> {
        let tenant = self.shared.tenant(tenant)?;
        tenant.state.lock().expect("tenant state poisoned").paused = true;
        Ok(())
    }

    /// Release a paused tenant's dispatcher.
    pub fn resume(&self, tenant: &str) -> Result<(), ServeError> {
        let tenant = self.shared.tenant(tenant)?;
        tenant.state.lock().expect("tenant state poisoned").paused = false;
        tenant.work.notify_all();
        Ok(())
    }

    /// Snapshot the gateway counters (see [`GatewayStats`]): the global
    /// cells are relaxed atomic loads, and each tenant's entry takes that
    /// tenant's queue lock only for the length/flag reads — session
    /// counters come from the lock-free
    /// [`stats handle`](spikestream::Session::stats_handle) mirror.
    pub fn stats(&self) -> GatewayStats {
        let mut stats = self.shared.counters.snapshot();
        let tenants = self.shared.tenants.lock().expect("tenant map poisoned");
        for (name, tenant) in tenants.iter() {
            let state = tenant.state.lock().expect("tenant state poisoned");
            stats.tenants.push(TenantStats {
                name: name.clone(),
                version: self.shared.registry.version(name).unwrap_or(0),
                serving_version: state.serving_version,
                queue_depth: state.queue.len(),
                poisoned: state.poisoned.is_some(),
                session: state
                    .session_stats
                    .as_ref()
                    .map(SessionStatsHandle::snapshot)
                    .unwrap_or_default(),
            });
        }
        stats
    }

    /// Drain every tenant queue and join every dispatcher. Idempotent;
    /// also runs on drop. Later submissions and publishes fail with
    /// [`ServeError::Shutdown`].
    pub fn shutdown(&self) {
        self.shared.closed.store(true, Ordering::Release);
        {
            let tenants = self.shared.tenants.lock().expect("tenant map poisoned");
            for tenant in tenants.values() {
                let mut state = tenant.state.lock().expect("tenant state poisoned");
                state.shutdown = true;
                tenant.work.notify_all();
                tenant.space.notify_all();
            }
        }
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut *self.handles.lock().expect("handle list poisoned"));
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Gateway {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for Gateway {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gateway")
            .field("config", &self.shared.config)
            .field("tenants", &self.shared.registry.names())
            .finish_non_exhaustive()
    }
}

/// The slot-addressed demultiplex sink of one coalesced batch: every
/// sample lands at its slot of one flat buffer, with per-slot cycle
/// totals recorded for per-request shard attribution.
struct FlatSink {
    units: usize,
    flat: Vec<LayerSample>,
    cycles: Vec<f64>,
}

impl ResultSink for FlatSink {
    fn on_sample(&mut self, _sample: usize, _layers: &[LayerSample]) {
        unreachable!("the gateway sink is slot-addressed");
    }

    fn on_slot(&mut self, slot: usize, _sample: usize, layers: &[LayerSample]) {
        let at = slot * self.units;
        debug_assert_eq!(layers.len(), self.units, "one LayerSample per layer per timestep");
        self.flat[at..at + self.units].copy_from_slice(layers);
        self.cycles[slot] = layers.iter().map(|l| l.cycles).sum();
    }
}

/// Why a dispatcher left its current plan generation.
enum EraExit {
    /// A newer version was published; reopen the session on it.
    Swap,
    /// The gateway is shutting down and the queue is drained.
    Shutdown,
    /// A batch panicked; the tenant is poisoned until the next publish.
    Poisoned,
}

/// Dispatcher thread body: serve plan generation after plan generation
/// until shutdown or poison.
fn run_dispatcher(shared: &Shared, tenant: &Tenant) {
    loop {
        let Some(era) = shared.registry.get(&tenant.name) else {
            tenant.state.lock().expect("tenant state poisoned").dispatcher_alive = false;
            return;
        };
        let plan = Arc::clone(&era.plan);
        let mut session = plan.open_session();
        {
            let mut state = tenant.state.lock().expect("tenant state poisoned");
            state.serving_version = era.version;
            state.session_stats = Some(session.stats_handle());
        }
        match serve_era(shared, tenant, &era, &mut session) {
            EraExit::Swap => continue,
            EraExit::Shutdown | EraExit::Poisoned => return,
        }
    }
}

/// Serve micro-batches on one plan generation until it is superseded, the
/// gateway shuts down, or a batch panics.
fn serve_era(
    shared: &Shared,
    tenant: &Tenant,
    era: &Arc<VersionedPlan>,
    session: &mut Session<'_>,
) -> EraExit {
    let max_batch = shared.config.max_batch.max(1);
    let linger = Duration::from_micros(shared.config.linger_us);
    loop {
        let mut batch: Vec<Pending>;
        let total: usize;
        {
            let mut state = tenant.state.lock().expect("tenant state poisoned");
            loop {
                if state.shutdown && state.queue.is_empty() {
                    state.dispatcher_alive = false;
                    return EraExit::Shutdown;
                }
                // Batch-boundary staleness check: a publish happened, so
                // hand back to `run_dispatcher` to reopen on the new
                // generation. Everything still queued runs on it.
                if shared.registry.version(&tenant.name) != Some(era.version) {
                    return EraExit::Swap;
                }
                if (!state.paused || state.shutdown) && !state.queue.is_empty() {
                    break;
                }
                state = tenant.work.wait(state).expect("tenant state poisoned");
            }

            // Open the micro-batch on the queue head, then linger —
            // coalescing the compatible FIFO prefix — until it is full,
            // blocked by an incompatible request, or the deadline passes.
            let head = state.queue.pop_front().expect("queue is non-empty");
            let key = head.opts.timesteps;
            let mut count = head.samples.len();
            batch = vec![head];
            tenant.space.notify_all();
            let deadline = Instant::now() + linger;
            loop {
                let mut blocked = false;
                while count < max_batch {
                    match state.queue.front() {
                        Some(next)
                            if next.opts.timesteps == key
                                && count + next.samples.len() <= max_batch =>
                        {
                            let next = state.queue.pop_front().expect("queue is non-empty");
                            count += next.samples.len();
                            batch.push(next);
                            tenant.space.notify_all();
                        }
                        Some(_) => {
                            // FIFO strictness: an incompatible request at
                            // the head closes the batch rather than being
                            // overtaken by later compatible ones.
                            blocked = true;
                            break;
                        }
                        None => break,
                    }
                }
                if count >= max_batch || blocked || state.shutdown || state.paused {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, _timed_out) =
                    tenant.work.wait_timeout(state, deadline - now).expect("tenant state poisoned");
                state = guard;
            }
            total = count;
        }

        // Execute outside the queue lock: submitters keep queueing while
        // the batch runs.
        let gather: Vec<usize> =
            batch.iter().flat_map(|pending| pending.samples.iter().copied()).collect();
        let mut request = Request::batch(total);
        if let Some(timesteps) = batch[0].opts.timesteps {
            request = request.with_timesteps(timesteps);
        }
        let units = era.plan.network().len() * era.plan.effective_config(&request).timesteps();
        let mut sink = FlatSink {
            units,
            flat: vec![LayerSample::default(); total * units],
            cycles: vec![0.0; total],
        };
        let run =
            catch_unwind(AssertUnwindSafe(|| session.run_gather(&request, &gather, &mut sink)));
        match run {
            Ok(()) => {
                shared.counters.on_batch(batch.len(), total);
                let requests = batch.len();
                let mut at = 0usize;
                for pending in batch {
                    let n = pending.samples.len();
                    let response = GatewayResponse {
                        plan: Arc::clone(era),
                        opts: pending.opts,
                        samples: n,
                        layers: sink.flat[at * units..(at + n) * units].to_vec(),
                        cycles: sink.cycles[at..at + n].to_vec(),
                        batch_samples: total,
                        batch_requests: requests,
                    };
                    at += n;
                    shared.counters.on_completed();
                    pending.cell.fulfill(Ok(response));
                }
            }
            Err(payload) => {
                // Panic containment: fail this batch and everything queued
                // behind it, poison the tenant, and retire the dispatcher.
                // Other tenants' threads are untouched; the next publish
                // restarts this one on a fresh plan and session.
                let message = panic_message(payload.as_ref());
                shared.counters.on_panic();
                let error = ServeError::Poisoned(message.clone());
                for pending in batch {
                    pending.cell.fulfill(Err(error.clone()));
                }
                let mut state = tenant.state.lock().expect("tenant state poisoned");
                state.poisoned = Some(message);
                state.dispatcher_alive = false;
                while let Some(pending) = state.queue.pop_front() {
                    pending.cell.fulfill(Err(error.clone()));
                }
                tenant.space.notify_all();
                return EraExit::Poisoned;
            }
        }
    }
}

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant};

    fn plan(batch: usize) -> Plan {
        Engine::svgg11(1).compile(&InferenceConfig {
            batch,
            ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
        })
    }

    #[test]
    fn submit_routes_through_a_published_tenant() {
        let gateway = Gateway::new(GatewayConfig::default());
        assert_eq!(gateway.publish("svgg11", plan(4)), Ok(1));
        let handle = gateway.submit("svgg11", &[0, 1]).expect("submit");
        let response = handle.wait().expect("serve");
        assert_eq!(response.plan_version(), 1);
        assert_eq!(response.samples(), 2);
        assert_eq!(response.cycles().len(), 2);
        let report = response.report();
        assert_eq!(report.batch, 2);
        assert!(report.total_cycles() > 0.0);
        let stats = gateway.stats();
        assert_eq!((stats.submitted, stats.completed), (1, 1));
        assert_eq!(stats.tenants.len(), 1);
        assert_eq!(stats.tenants[0].name, "svgg11");
    }

    #[test]
    fn unknown_tenants_and_empty_requests_are_rejected() {
        let gateway = Gateway::new(GatewayConfig::default());
        assert_eq!(
            gateway.submit("nope", &[0]).err(),
            Some(ServeError::UnknownTenant("nope".to_string()))
        );
        gateway.publish("svgg11", plan(2)).expect("publish");
        assert_eq!(gateway.submit("svgg11", &[]).err(), Some(ServeError::EmptyRequest));
    }

    #[test]
    fn pause_coalesces_and_resume_drains() {
        let gateway = Gateway::new(GatewayConfig { max_batch: 8, linger_us: 0, queue_cap: 16 });
        gateway.publish("svgg11", plan(8)).expect("publish");
        gateway.pause("svgg11").expect("pause");
        let handles: Vec<ResponseHandle> =
            (0..4).map(|i| gateway.submit("svgg11", &[i]).expect("submit")).collect();
        gateway.resume("svgg11").expect("resume");
        for handle in handles {
            let response = handle.wait().expect("serve");
            assert_eq!(response.batch_samples(), 4);
            assert_eq!(response.batch_requests(), 4);
        }
        let stats = gateway.stats();
        assert_eq!(stats.batches, 1);
        assert_eq!(stats.coalesced, 4);
        assert_eq!(stats.batch_hist[2], 1, "one batch of four samples");
    }

    #[test]
    fn shutdown_rejects_later_submissions() {
        let gateway = Gateway::new(GatewayConfig::default());
        gateway.publish("svgg11", plan(2)).expect("publish");
        gateway.shutdown();
        assert_eq!(gateway.submit("svgg11", &[0]).err(), Some(ServeError::Shutdown));
    }
}
