//! `spikestream-serve`: a concurrent serving gateway over `spikestream`'s
//! compile-once serving core.
//!
//! The crate turns the single-caller [`Session`](spikestream::Session)
//! into a multi-tenant service front end, in three pieces:
//!
//! - [`PlanRegistry`] — named tenants, each holding the current
//!   [`Plan`](spikestream::Plan) generation with a monotonically
//!   increasing version. [`Gateway::publish`] hot-swaps a tenant's plan
//!   under live traffic: in-flight batches finish on the old generation
//!   (their results name the version they ran under), queued and later
//!   requests run on the new one, and nothing is dropped.
//! - [`Gateway`] — clients on any thread call [`Gateway::submit`] and
//!   park on the returned [`ResponseHandle`]. Requests land in a bounded
//!   per-tenant queue ([`ServeError::Full`] / timeout backpressure); a
//!   per-tenant dispatcher thread coalesces the compatible FIFO prefix
//!   into one dynamically micro-batched `Session::run_gather` call,
//!   closing the batch at `max_batch` samples or after `linger_us`
//!   microseconds, whichever comes first. Samples are independently
//!   seeded by the core, so a coalesced request's results are
//!   byte-identical to running it alone on a bare session.
//! - [`GatewayStats`] — deterministic counters (submissions, batches and
//!   their size histogram, rejections, hot swaps, per-tenant queue
//!   depth), all readable without contending with serving.
//!
//! Everything is std threads and condvars — the same parked epoch/condvar
//! idiom as the core's worker pool; no async runtime.
//!
//! ```
//! use spikestream::{Engine, FpFormat, InferenceConfig, KernelVariant};
//! use spikestream_serve::{Gateway, GatewayConfig};
//!
//! let plan = Engine::svgg11(1).compile(&InferenceConfig {
//!     batch: 8,
//!     ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
//! });
//! let gateway = Gateway::new(GatewayConfig::default());
//! gateway.publish("svgg11", plan).unwrap();
//! let handle = gateway.submit("svgg11", &[0, 1]).unwrap();
//! let response = handle.wait().unwrap();
//! assert_eq!(response.plan_version(), 1);
//! assert!(response.report().total_cycles() > 0.0);
//! ```

mod gateway;
mod registry;
mod stats;

pub use gateway::{Gateway, GatewayResponse, ResponseHandle, SubmitOptions};
pub use registry::{PlanRegistry, VersionedPlan};
pub use stats::{
    batch_hist_bucket, GatewayStats, TenantStats, BATCH_HIST_BUCKETS, BATCH_HIST_LABELS,
};

/// Gateway-wide serving policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// Close a micro-batch once it holds this many samples. A single
    /// request larger than the cap still runs, alone.
    pub max_batch: usize,
    /// Close a non-full micro-batch this many microseconds after its
    /// first request was picked up. `0` dispatches immediately.
    pub linger_us: u64,
    /// Bounded per-tenant queue capacity, in requests. Submissions beyond
    /// it fail fast ([`ServeError::Full`]) or park with a timeout
    /// ([`Gateway::submit_timeout`]).
    pub queue_cap: usize,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig { max_batch: 64, linger_us: 200, queue_cap: 256 }
    }
}

/// Everything that can go wrong between submission and response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// No plan has been published under this tenant name.
    UnknownTenant(String),
    /// A request must name at least one sample.
    EmptyRequest,
    /// The tenant's bounded queue is at capacity (fail-fast submission).
    Full {
        /// Tenant whose queue was full.
        tenant: String,
        /// The configured queue capacity.
        cap: usize,
    },
    /// The tenant's queue stayed full for the whole submission timeout.
    Timeout {
        /// Tenant whose queue stayed full.
        tenant: String,
    },
    /// A batch panicked and poisoned the tenant; the payload message is
    /// preserved. Publishing a new plan clears the poison.
    Poisoned(String),
    /// The gateway has been shut down.
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::UnknownTenant(name) => write!(f, "unknown tenant `{name}`"),
            ServeError::EmptyRequest => write!(f, "request names no samples"),
            ServeError::Full { tenant, cap } => {
                write!(f, "tenant `{tenant}` queue is full ({cap} requests)")
            }
            ServeError::Timeout { tenant } => {
                write!(f, "timed out waiting for space in tenant `{tenant}` queue")
            }
            ServeError::Poisoned(message) => {
                write!(f, "tenant poisoned by a panicked batch: {message}")
            }
            ServeError::Shutdown => write!(f, "gateway is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}
