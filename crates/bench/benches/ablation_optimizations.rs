//! Bench for experiment E8: ablation over the streaming design choices.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::experiments::ablation;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    c.bench_function("ablation_optimizations", |b| {
        b.iter(|| {
            let rows = ablation(std::hint::black_box(2));
            assert_eq!(rows.len(), 4);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
