//! Bench for experiment E2 (Fig. 3b): FPU utilization and IPC per layer.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::experiments::fig3b_utilization;
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    c.bench_function("fig3b_utilization", |b| {
        b.iter(|| {
            let rows = fig3b_utilization(std::hint::black_box(BENCH_BATCH));
            assert!(rows.iter().all(|r| r.util_spikestream > r.util_baseline));
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
