//! Bench for experiment E3 (Fig. 3c): per-layer speedups.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::experiments::fig3c_speedup;
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    c.bench_function("fig3c_speedup", |b| {
        b.iter(|| {
            let rows = fig3c_speedup(std::hint::black_box(BENCH_BATCH));
            assert!(rows.iter().all(|r| r.spikestream_fp16_over_baseline > 1.0));
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
