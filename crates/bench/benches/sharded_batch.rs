//! Bench for the serving batch driver.
//!
//! Two properties are guarded here:
//!
//! * the fleet path must not cost more than the plain parallel fan-out it
//!   refines, and
//! * **plan reuse must beat per-call compilation**: `serve_plan_reuse`
//!   serves repeated requests from one compiled [`Plan`] (lowering and
//!   cost integration amortized into `Engine::compile` and the warm
//!   program cache), while `serve_compile_per_request` pays the
//!   compile-and-lower path on every request — the regression the
//!   compile/serve split exists to eliminate.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, Request, TimingModel, WorkloadMode,
};
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn config() -> InferenceConfig {
    InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch: BENCH_BATCH * 4,
        seed: 0xC1FA,
        mode: WorkloadMode::Synthetic,
    }
}

fn bench(c: &mut Criterion) {
    let engine = Engine::svgg11(1);
    let cfg = config();

    // The serving steady state: one plan, one long-lived session, request
    // after request. After the first request every (layer, sparsity
    // bucket) binding is a cache hit — the per-sample loop only reads
    // integrated costs.
    let plan = engine.compile(&cfg);
    let mut session = plan.open_session();
    session.infer(&Request::batch(cfg.batch)); // warm the bucket cache
    c.bench_function("serve_plan_reuse", |b| {
        b.iter(|| session.infer(std::hint::black_box(&Request::batch(cfg.batch))))
    });

    // The pre-redesign behavior: every request re-builds the execution
    // context and re-lowers every layer program from scratch.
    c.bench_function("serve_compile_per_request", |b| {
        b.iter(|| engine.compile(std::hint::black_box(&cfg)).run())
    });

    for shards in [1usize, 8] {
        let name = format!("batch_sharded_{shards}");
        c.bench_function(name.as_str(), |b| {
            b.iter(|| {
                let report = session
                    .infer(std::hint::black_box(&Request::batch(cfg.batch).with_shards(shards)));
                assert_eq!(report.shards.as_ref().map(|s| s.shards.len()), Some(shards));
                report
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
