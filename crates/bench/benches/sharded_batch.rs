//! Bench for the sharded batch driver: the fleet path must not cost more
//! than the plain parallel fan-out it refines.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{
    AnalyticBackend, Engine, FpFormat, InferenceConfig, KernelVariant, TimingModel, WorkloadMode,
};
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn config() -> InferenceConfig {
    InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch: BENCH_BATCH * 4,
        seed: 0xC1FA,
        mode: WorkloadMode::Synthetic,
    }
}

fn bench(c: &mut Criterion) {
    let engine = Engine::svgg11(1);
    let cfg = config();

    c.bench_function("batch_parallel_fanout", |b| {
        b.iter(|| engine.run_with_backend(&AnalyticBackend, std::hint::black_box(&cfg)))
    });

    for shards in [1usize, 8] {
        let name = format!("batch_sharded_{shards}");
        c.bench_function(name.as_str(), |b| {
            b.iter(|| {
                let report =
                    engine.run_sharded(&AnalyticBackend, std::hint::black_box(&cfg), shards);
                assert_eq!(report.shards.as_ref().map(|s| s.shards.len()), Some(shards));
                report
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
