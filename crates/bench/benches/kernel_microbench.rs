//! Cycle-level kernel microbenchmark: one conv-layer invocation of both
//! code variants on a representative small layer, measuring the host-side
//! cost of the trace-driven simulation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikestream::{ClusterConfig, CostModel, FpFormat, KernelVariant};
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{CompressedIfmap, ConvSpec, Layer, LayerKind, NeuronState};
use std::time::Duration;

fn setup() -> (Layer, ConvSpec, CompressedIfmap) {
    let spec = ConvSpec {
        input: TensorShape::new(10, 10, 64),
        out_channels: 64,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("bench", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
    let mut rng = StdRng::seed_from_u64(7);
    layer.randomize_weights(&mut rng, 0.1);
    let shape = spec.padded_input();
    let mut map = SpikeMap::silent(shape);
    for h in 1..shape.h - 1 {
        for w in 1..shape.w - 1 {
            for c in 0..shape.c {
                if rng.gen_bool(0.25) {
                    map.set(h, w, c, true);
                }
            }
        }
    }
    (layer, spec, CompressedIfmap::from_spike_map(&map))
}

fn bench(c: &mut Criterion) {
    let (layer, spec, input) = setup();
    let mut group = c.benchmark_group("conv_kernel_cycle_level");
    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        group.bench_function(format!("{variant}"), |b| {
            b.iter(|| {
                let mut cluster =
                    snitch_sim::ClusterModel::new(ClusterConfig::default(), CostModel::default());
                let mut state = NeuronState::lif(spec.conv_output().len());
                let kernel = spikestream_kernels::ConvKernel::new(variant, FpFormat::Fp16);
                kernel.run(&mut cluster, &layer, &input, &mut state);
                cluster.finish_phase("bench").cycles
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
