//! Bench for the temporal inference pipeline: per-timestep spike
//! propagation with persistent membranes (cycle-level) and the per-step
//! symbolic integration of the analytic backend must both stay cheap
//! enough to sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, NetworkChoice, Request, TemporalEncoding,
    TimingModel,
};
use std::time::Duration;

fn config(timing: TimingModel, batch: usize, timesteps: usize) -> InferenceConfig {
    InferenceConfig {
        timing,
        batch,
        seed: 0xC1FA,
        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    }
    .temporal(timesteps, TemporalEncoding::Rate)
}

fn bench(c: &mut Criterion) {
    // Cycle-level: the tiny CNN, four real timesteps per sample.
    let (network, profile) = NetworkChoice::TinyCnn.build(7);
    let tiny = Engine::new(network, profile);
    let cycle_cfg = config(TimingModel::CycleLevel, 1, 4);
    let tiny_plan = tiny.compile(&cycle_cfg);
    let mut tiny_session = tiny_plan.open_session();
    c.bench_function("temporal_tiny_cycle_t4", |b| {
        b.iter(|| {
            let report = tiny_session.infer(std::hint::black_box(&Request::batch(1)));
            assert_eq!(report.timesteps.as_ref().map(Vec::len), Some(4));
            report
        })
    });

    // Analytic: the full S-VGG11, per-step symbolic integration. Serving
    // from one plan (warm bucket cache) against compiling per request
    // makes the amortized lowering directly visible.
    let svgg = Engine::svgg11(1);
    let analytic_cfg = config(TimingModel::Analytic, 4, 4);
    let svgg_plan = svgg.compile(&analytic_cfg);
    let mut svgg_session = svgg_plan.open_session();
    svgg_session.infer(&Request::batch(4)); // warm the bucket cache
    c.bench_function("temporal_svgg11_analytic_t4_plan_reuse", |b| {
        b.iter(|| {
            let report = svgg_session.infer(std::hint::black_box(&Request::batch(4)));
            assert_eq!(report.layers.len(), 8);
            report
        })
    });
    c.bench_function("temporal_svgg11_analytic_t4_compile_each", |b| {
        b.iter(|| {
            let report = svgg.compile(std::hint::black_box(&analytic_cfg)).run();
            assert_eq!(report.layers.len(), 8);
            report
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
