//! Bench for the temporal inference pipeline: per-timestep spike
//! propagation with persistent membranes (cycle-level) and the per-step
//! symbolic integration of the analytic backend must both stay cheap
//! enough to sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, NetworkChoice, TemporalEncoding, TimingModel,
};
use std::time::Duration;

fn config(timing: TimingModel, batch: usize, timesteps: usize) -> InferenceConfig {
    InferenceConfig {
        timing,
        batch,
        seed: 0xC1FA,
        ..InferenceConfig::paper(KernelVariant::SpikeStream, FpFormat::Fp16)
    }
    .temporal(timesteps, TemporalEncoding::Rate)
}

fn bench(c: &mut Criterion) {
    // Cycle-level: the tiny CNN, four real timesteps per sample.
    let (network, profile) = NetworkChoice::TinyCnn.build(7);
    let tiny = Engine::new(network, profile);
    let cycle_cfg = config(TimingModel::CycleLevel, 1, 4);
    c.bench_function("temporal_tiny_cycle_t4", |b| {
        b.iter(|| {
            let report = tiny.run(std::hint::black_box(&cycle_cfg));
            assert_eq!(report.timesteps.as_ref().map(Vec::len), Some(4));
            report
        })
    });

    // Analytic: the full S-VGG11, per-step symbolic integration.
    let svgg = Engine::svgg11(1);
    let analytic_cfg = config(TimingModel::Analytic, 4, 4);
    c.bench_function("temporal_svgg11_analytic_t4", |b| {
        b.iter(|| {
            let report = svgg.run(std::hint::black_box(&analytic_cfg));
            assert_eq!(report.layers.len(), 8);
            report
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
