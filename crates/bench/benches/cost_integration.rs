//! Analytic cost-integration throughput benchmark.
//!
//! Prices the full set of symbolic S-VGG11 stream programs — every layer
//! at its paper firing rate, pre-lowered so only the integrator is on the
//! clock — through both integration paths:
//!
//! - `integrate` folds the replicated work items by core-equivalence
//!   class: the icache walk runs per core (it mutates shared residency
//!   state), but the exec-twice-extrapolate pricing math runs once per
//!   distinct (share, entry-state) class and every equivalent core copies
//!   the exit state.
//! - `integrate_reference` walks every core of every replicated item the
//!   long way.
//!
//! The two are pinned bit-for-bit by the `cost_folding` differential
//! suite; this benchmark guards the *speed* half of the contract — the
//! fold must stay well ahead of the reference on replicated symbolic
//! phases (the acceptance floor is 2x).

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{Engine, FpFormat, KernelVariant};
use spikestream_ir::{CostIntegrator, StreamProgram};
use spikestream_kernels::LayerExecutor;
use std::time::Duration;

/// Every S-VGG11 layer lowered symbolically at the paper firing profile.
fn svgg11_programs(variant: KernelVariant, format: FpFormat) -> Vec<StreamProgram> {
    let engine = Engine::svgg11(5);
    let integrator = CostIntegrator::snitch();
    let executor = LayerExecutor::new(variant, format);
    let n = engine.network().len();
    engine
        .network()
        .layers()
        .iter()
        .enumerate()
        .map(|(idx, layer)| {
            let input_rate = engine.profile().rates[idx];
            let output_rate = engine.profile().rates[(idx + 1).min(n - 1)];
            executor.lower_symbolic(integrator.config(), layer, input_rate, output_rate)
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let integrator = CostIntegrator::snitch();
    let mut group = c.benchmark_group("cost_integration");

    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        let programs = svgg11_programs(variant, FpFormat::Fp16);

        group.bench_function(format!("folded/{variant}"), |b| {
            b.iter(|| programs.iter().map(|p| integrator.integrate(p).compute_cycles).sum::<u64>())
        });

        group.bench_function(format!("reference/{variant}"), |b| {
            b.iter(|| {
                programs
                    .iter()
                    .map(|p| integrator.integrate_reference(p).compute_cycles)
                    .sum::<u64>()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
