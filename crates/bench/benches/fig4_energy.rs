//! Bench for experiment E4 (Fig. 4): per-layer energy and power.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::experiments::fig4_energy;
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    c.bench_function("fig4_energy", |b| {
        b.iter(|| {
            let rows = fig4_energy(std::hint::black_box(BENCH_BATCH));
            assert_eq!(rows.len(), 8);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
