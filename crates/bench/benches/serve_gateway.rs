//! Bench for the serving gateway's dynamic micro-batching.
//!
//! Three measurements over the same workload — 64 single-sample requests
//! against a warm analytic S-VGG11 FP16 plan:
//!
//! * `direct/64x1` — 64 sequential single-sample serves on a bare
//!   [`Session`](spikestream::Session): no queue, no threads, no demux.
//!   This is the in-process floor; on the analytic backend the evaluation
//!   itself dominates (per-call serve overhead is ~10 ns), so no serving
//!   stack can beat it.
//! * `uncoalesced/64x1` — the same 64 requests through the full gateway
//!   (submit → bounded queue → dispatcher → response handle) with
//!   `max_batch = 1`: one dispatch and two cross-thread handoffs per
//!   request.
//! * `coalesced/64x1` — identical submissions with `max_batch = 64`
//!   (paused submit + resume pins the composition): one micro-batched
//!   dispatch serves all 64.
//!
//! The measurable contract of dynamic micro-batching is
//! coalesced >= 1.5x over uncoalesced: coalescing amortizes the
//! per-dispatch wakeup/handoff cost across the whole batch, which is the
//! win a serving front end actually controls. Coalesced vs. `direct` is
//! expected to land near parity (the gateway adds one round trip per
//! *batch*); `tests/gateway.rs` pins that the bytes are identical either
//! way.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, LayerSample, Plan, Request, ResultSink,
    TimingModel, WorkloadMode,
};
use spikestream_serve::{Gateway, GatewayConfig};
use std::time::Duration;

/// Requests per round; also the coalesced micro-batch size.
const REQUESTS: usize = 64;

fn plan() -> Plan {
    Engine::svgg11(1).compile(&InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch: REQUESTS,
        seed: 0xC1FA,
        mode: WorkloadMode::Synthetic,
    })
}

/// Minimal sink for the bare-session floor: consume the stream the same
/// way the gateway's demux does, without folding reports.
struct DrainSink(f64);

impl ResultSink for DrainSink {
    fn on_sample(&mut self, _sample: usize, layers: &[LayerSample]) {
        self.0 += layers.iter().map(|l| l.cycles).sum::<f64>();
    }
}

/// One full gateway round: submit 64 single-sample requests, wait for all
/// 64 responses. `paced` pins a single 64-sample micro-batch by holding
/// the dispatcher while the queue fills.
fn round(gateway: &Gateway, paced: bool) {
    if paced {
        gateway.pause("svgg11").expect("pause");
    }
    let handles: Vec<_> =
        (0..REQUESTS).map(|i| gateway.submit("svgg11", &[i]).expect("submit")).collect();
    if paced {
        gateway.resume("svgg11").expect("resume");
    }
    for handle in handles {
        let response = handle.wait().expect("serve");
        std::hint::black_box(response.cycles());
    }
}

fn bench(c: &mut Criterion) {
    let direct_plan = plan();
    let mut session = direct_plan.open_session();
    let single = Request::batch(1);
    let mut sink = DrainSink(0.0);
    session.run_gather(&single, &[0], &mut sink); // warm: size arenas
    c.bench_function("gateway/direct/64x1", |b| {
        b.iter(|| {
            for i in 0..REQUESTS {
                session.run_gather(&single, &[i], &mut sink);
            }
            std::hint::black_box(sink.0);
        })
    });
    drop(session);

    let gateway = Gateway::new(GatewayConfig { max_batch: 1, linger_us: 0, queue_cap: 256 });
    gateway.publish("svgg11", plan()).expect("publish");
    round(&gateway, false); // warm: spawn dispatcher, size arenas
    c.bench_function("gateway/uncoalesced/64x1", |b| b.iter(|| round(&gateway, false)));
    gateway.shutdown();

    let gateway = Gateway::new(GatewayConfig { max_batch: REQUESTS, linger_us: 0, queue_cap: 256 });
    gateway.publish("svgg11", plan()).expect("publish");
    round(&gateway, true); // warm: spawn dispatcher, size arenas
    c.bench_function("gateway/coalesced/64x1", |b| b.iter(|| round(&gateway, true)));
    gateway.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
