//! Bench for experiment E1 (Fig. 3a): ifmap footprint AER vs CSR.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::experiments::fig3a_footprint;
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    c.bench_function("fig3a_footprint", |b| {
        b.iter(|| {
            let rows = fig3a_footprint(std::hint::black_box(BENCH_BATCH));
            assert_eq!(rows.len(), 8);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
