//! Bench for the serving hot path's worker-pool dispatch.
//!
//! Sweeps workers {1, 2, 4, 8} × batch {1, 64, 512} over one warm
//! analytic [`Session`] and measures the per-request latency of the
//! parked-pool executor (`pool/...`) against the legacy spawn-per-request
//! scoped executor (`spawn/...`) it replaced. The two paths produce
//! bit-identical reports (`tests/worker_pool.rs` asserts it); the only
//! difference is how the multi-worker claim loop reaches its threads —
//! one condvar wakeup versus an OS thread spawn/join per worker per
//! request. At the small-batch repeated-request scale the spawn cost
//! dominates, which is exactly the regime this bench pins.
//!
//! Single-worker requests bypass the pool entirely (slot 0 is the calling
//! thread), so `pool/w1/...` and `spawn/w1/...` double as the
//! no-overhead sanity baseline: they should be statistically identical.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::{
    Engine, FpFormat, InferenceConfig, KernelVariant, Request, TimingModel, WorkloadMode,
};
use std::time::Duration;

fn config(batch: usize) -> InferenceConfig {
    InferenceConfig {
        variant: KernelVariant::SpikeStream,
        format: FpFormat::Fp16,
        timing: TimingModel::Analytic,
        batch,
        seed: 0xC1FA,
        mode: WorkloadMode::Synthetic,
    }
}

fn bench(c: &mut Criterion) {
    let engine = Engine::svgg11(1);

    for &batch in &[1usize, 64, 512] {
        let cfg = config(batch);
        let plan = engine.compile(&cfg);
        for &workers in &[1usize, 2, 4, 8] {
            let request = Request::batch(batch).with_workers(workers);

            let mut pooled = plan.open_session();
            pooled.infer(&request); // warm: spawn pool threads, size arenas
            let name = format!("pool/w{workers}/b{batch}");
            c.bench_function(name.as_str(), |b| {
                b.iter(|| pooled.infer(std::hint::black_box(&request)))
            });
            drop(pooled);

            let mut spawning = plan.open_session().with_spawn_per_request(true);
            spawning.infer(&request); // warm: size arenas (threads still churn)
            let name = format!("spawn/w{workers}/b{batch}");
            c.bench_function(name.as_str(), |b| {
                b.iter(|| spawning.infer(std::hint::black_box(&request)))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
