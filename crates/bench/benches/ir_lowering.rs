//! Stream-program IR overhead benchmark.
//!
//! Guards against lowering-overhead regressions: per representative layer
//! it measures (a) lowering alone (emitting the exact stream program plus
//! the functional math), (b) lowering plus cycle-level interpretation —
//! the full per-layer cost of the post-IR cycle backend, directly
//! comparable to the pre-IR `kernel_microbench` numbers where the kernels
//! drove the core models without an intermediate program — and (c) the
//! symbolic lowering plus cost integration that one analytic-backend layer
//! evaluation costs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikestream::{ClusterConfig, CostModel, FpFormat, KernelVariant};
use spikestream_ir::CostIntegrator;
use spikestream_kernels::ConvKernel;
use spikestream_snn::neuron::LifParams;
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::{CompressedIfmap, ConvSpec, Layer, LayerKind, NeuronState};
use std::time::Duration;

fn setup() -> (Layer, ConvSpec, CompressedIfmap) {
    let spec = ConvSpec {
        input: TensorShape::new(10, 10, 64),
        out_channels: 64,
        kh: 3,
        kw: 3,
        stride: 1,
        padding: 1,
        pool: false,
    };
    let mut layer = Layer::new("bench", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
    let mut rng = StdRng::seed_from_u64(7);
    layer.randomize_weights(&mut rng, 0.1);
    let shape = spec.padded_input();
    let mut map = SpikeMap::silent(shape);
    for h in 1..shape.h - 1 {
        for w in 1..shape.w - 1 {
            for c in 0..shape.c {
                if rng.gen_bool(0.25) {
                    map.set(h, w, c, true);
                }
            }
        }
    }
    (layer, spec, CompressedIfmap::from_spike_map(&map))
}

fn bench(c: &mut Criterion) {
    let (layer, spec, input) = setup();
    let config = ClusterConfig::default();
    let mut group = c.benchmark_group("ir_lowering");

    for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
        let kernel = ConvKernel::new(variant, FpFormat::Fp16);

        group.bench_function(format!("lower_only/{variant}"), |b| {
            b.iter(|| {
                let mut state = NeuronState::lif(spec.conv_output().len());
                kernel.lower(&config, &layer, &input, &mut state).0.work_items()
            })
        });

        group.bench_function(format!("lower_and_interpret/{variant}"), |b| {
            b.iter(|| {
                let mut cluster =
                    snitch_sim::ClusterModel::new(config.clone(), CostModel::default());
                let mut state = NeuronState::lif(spec.conv_output().len());
                kernel.run(&mut cluster, &layer, &input, &mut state);
                cluster.finish_phase("bench").cycles
            })
        });

        group.bench_function(format!("symbolic_lower_and_integrate/{variant}"), |b| {
            let integrator = CostIntegrator::new(config.clone(), CostModel::default());
            b.iter(|| {
                let program =
                    kernel.lower_symbolic(&config, "bench", &spec, &layer.neuron, 0.25, 0.2);
                integrator.integrate(&program).compute_cycles
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
