//! Microbench of the bit-packed spike-map operations: packing, popcount
//! firing rates, CSR refill, and word iteration at the spike densities the
//! S-VGG11 layers actually exhibit (roughly 1%–30%). These pin the
//! word-parallel win independently of the end-to-end pipeline benches.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spikestream_snn::tensor::{SpikeMap, TensorShape};
use spikestream_snn::CompressedIfmap;
use std::time::Duration;

/// A 34x34x64 map (the padded early S-VGG11 ifmap) at the given density.
fn map_at_density(density: f64, seed: u64) -> SpikeMap {
    let mut rng = StdRng::seed_from_u64(seed);
    SpikeMap::from_fn(TensorShape::new(34, 34, 64), |_| rng.gen_bool(density))
}

fn bench(c: &mut Criterion) {
    let shape = TensorShape::new(34, 34, 64);
    let densities = [(0.01, "1pct"), (0.10, "10pct"), (0.30, "30pct")];

    for &(density, tag) in &densities {
        let map = map_at_density(density, 0x5EED ^ tag.len() as u64);
        let bools = map.to_bools();

        // Packing one bool per neuron into words (the from_vec path).
        c.bench_function(format!("pack_from_bools_{tag}"), |b| {
            b.iter(|| SpikeMap::from_vec(shape, std::hint::black_box(&bools).clone()))
        });

        // Popcount firing rate over the packed words.
        c.bench_function(format!("popcount_firing_rate_{tag}"), |b| {
            b.iter(|| std::hint::black_box(&map).firing_rate())
        });

        // CSR refill: the per-sample hot path of the serving pipeline.
        let mut csr = CompressedIfmap::from_spike_map(&map);
        c.bench_function(format!("csr_refill_{tag}"), |b| {
            b.iter(|| csr.refill_from(std::hint::black_box(&map)))
        });

        // Trailing-zeros iteration over all active indices.
        c.bench_function(format!("word_iterate_{tag}"), |b| {
            b.iter(|| std::hint::black_box(&map).iter_active().sum::<usize>())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench
}
criterion_main!(benches);
