//! Bench for experiments E5/E6 (Fig. 5): comparison with neuromorphic
//! accelerators on the 6th S-VGG11 layer over 500 timesteps.

use criterion::{criterion_group, criterion_main, Criterion};
use spikestream::experiments::fig5_accelerators;
use spikestream_bench::BENCH_BATCH;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    c.bench_function("fig5_accelerators", |b| {
        b.iter(|| {
            let rows = fig5_accelerators(500, std::hint::black_box(BENCH_BATCH));
            assert_eq!(rows.len(), 7);
            rows
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_secs(1));
    targets = bench
}
criterion_main!(benches);
