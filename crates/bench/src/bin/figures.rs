//! Regenerate the paper's figures as text tables.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p spikestream-bench --bin figures             # all figures, batch 128
//! cargo run --release -p spikestream-bench --bin figures -- --fig 3c # one figure
//! cargo run --release -p spikestream-bench --bin figures -- --batch 16
//! ```

use spikestream_bench::{all_figures, paper_batch, print_figure};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fig: Option<String> = None;
    let mut batch = paper_batch();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fig" => {
                fig = args.get(i + 1).cloned();
                i += 2;
            }
            "--batch" => {
                batch = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("invalid --batch value, falling back to {}", paper_batch());
                    paper_batch()
                });
                i += 2;
            }
            "--help" | "-h" => {
                println!("usage: figures [--fig 3a|3b|3c|4|5|headline|ablation] [--batch N]");
                return;
            }
            other => {
                eprintln!("ignoring unknown argument '{other}'");
                i += 1;
            }
        }
    }

    let figures: Vec<String> = match fig {
        Some(f) => vec![f],
        None => all_figures().iter().map(|s| s.to_string()).collect(),
    };
    println!("SpikeStream reproduction — batch size {batch}\n");
    let mut failed = false;
    for f in figures {
        match print_figure(&f, batch) {
            Ok(table) => println!("{table}"),
            Err(e) => {
                eprintln!("error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
