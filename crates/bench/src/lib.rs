//! Benchmark harness for the SpikeStream reproduction.
//!
//! The crate has two entry points:
//!
//! * the `figures` binary (`cargo run -p spikestream-bench --bin figures --release`)
//!   prints every figure of the paper as a text table (see
//!   [`print_figure`]);
//! * one Criterion bench per figure (`cargo bench -p spikestream-bench`)
//!   measures how long regenerating each figure takes and keeps the
//!   experiment drivers honest about their runtime.

use spikestream::experiments::{self, PAPER_BATCH};

/// Batch size used by the Criterion benches (small enough to iterate).
pub const BENCH_BATCH: usize = 8;

/// Render one figure as a text table. `fig` accepts `3a`, `3b`, `3c`, `4`,
/// `5a`, `5b`, `headline` or `ablation`.
///
/// # Errors
///
/// Returns an error string if `fig` names an unknown figure.
pub fn print_figure(fig: &str, batch: usize) -> Result<String, String> {
    let mut out = String::new();
    match fig {
        "3a" => {
            out.push_str("Fig. 3a — ifmap memory footprint (bytes) and firing activity\n");
            out.push_str(&format!(
                "{:<8} {:>12} {:>12} {:>10} {:>10}\n",
                "layer", "AER [B]", "CSR [B]", "ratio", "firing"
            ));
            for r in experiments::fig3a_footprint(batch) {
                out.push_str(&format!(
                    "{:<8} {:>12.0} {:>12.0} {:>10.2} {:>9.1}%\n",
                    r.layer,
                    r.aer_bytes,
                    r.csr_bytes,
                    r.reduction(),
                    r.firing_rate * 100.0
                ));
            }
        }
        "3b" => {
            out.push_str("Fig. 3b — FPU utilization and IPC (FP16)\n");
            out.push_str(&format!(
                "{:<8} {:>12} {:>14} {:>10} {:>12}\n",
                "layer", "util base", "util stream", "IPC base", "IPC stream"
            ));
            for r in experiments::fig3b_utilization(batch) {
                out.push_str(&format!(
                    "{:<8} {:>11.1}% {:>13.1}% {:>10.2} {:>12.2}\n",
                    r.layer,
                    r.util_baseline * 100.0,
                    r.util_spikestream * 100.0,
                    r.ipc_baseline,
                    r.ipc_spikestream
                ));
            }
        }
        "3c" => {
            out.push_str("Fig. 3c — per-layer speedups\n");
            out.push_str(&format!(
                "{:<8} {:>24} {:>18}\n",
                "layer", "SpikeStream16/Base16", "FP8/FP16"
            ));
            for r in experiments::fig3c_speedup(batch) {
                out.push_str(&format!(
                    "{:<8} {:>23.2}x {:>17.2}x\n",
                    r.layer, r.spikestream_fp16_over_baseline, r.fp8_over_fp16
                ));
            }
        }
        "4" => {
            out.push_str("Fig. 4 — per-layer energy [mJ] and power [W]\n");
            out.push_str(&format!(
                "{:<8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}\n",
                "layer", "E base", "E fp16", "E fp8", "P base", "P fp16", "P fp8"
            ));
            for r in experiments::fig4_energy(batch) {
                out.push_str(&format!(
                    "{:<8} {:>10.4} {:>10.4} {:>10.4} {:>8.3} {:>8.3} {:>8.3}\n",
                    r.layer,
                    r.energy_baseline_mj,
                    r.energy_fp16_mj,
                    r.energy_fp8_mj,
                    r.power_baseline_w,
                    r.power_fp16_w,
                    r.power_fp8_w
                ));
            }
        }
        "5a" | "5b" | "5" => {
            out.push_str("Fig. 5 — 6th S-VGG11 layer over 500 timesteps\n");
            out.push_str(&format!(
                "{:<32} {:>14} {:>14} {:>10} {:>8}\n",
                "platform", "latency [ms]", "energy [mJ]", "GSOP", "tech"
            ));
            for r in experiments::fig5_accelerators(500, batch) {
                out.push_str(&format!(
                    "{:<32} {:>14.2} {:>14.2} {:>10.1} {:>6}nm\n",
                    r.name, r.latency_ms, r.energy_mj, r.peak_gsop, r.technology_nm
                ));
            }
        }
        "headline" => {
            let h = experiments::headline(batch);
            out.push_str("Headline end-to-end numbers (S-VGG11)\n");
            out.push_str(&format!(
                "speedup FP16 {:.2}x | speedup FP8 {:.2}x | util {:.1}% -> {:.1}% | energy gain FP16 {:.2}x | FP8 {:.2}x\n",
                h.speedup_fp16,
                h.speedup_fp8,
                h.utilization_baseline * 100.0,
                h.utilization_spikestream * 100.0,
                h.energy_gain_fp16,
                h.energy_gain_fp8
            ));
        }
        "ablation" => {
            out.push_str("Ablation — optimization stages\n");
            for r in experiments::ablation(batch) {
                out.push_str(&format!(
                    "{:<32} {:>16.0} cycles {:>8.1}% util\n",
                    r.name,
                    r.cycles,
                    r.utilization * 100.0
                ));
            }
        }
        other => return Err(format!("unknown figure '{other}'")),
    }
    Ok(out)
}

/// All figure identifiers, in paper order.
pub fn all_figures() -> [&'static str; 7] {
    ["3a", "3b", "3c", "4", "5", "headline", "ablation"]
}

/// The default full-evaluation batch (re-exported for the binary).
pub fn paper_batch() -> usize {
    PAPER_BATCH
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_renders() {
        for fig in all_figures() {
            let table = print_figure(fig, 2).expect("figure renders");
            assert!(table.len() > 40, "{fig} produced an implausibly short table");
        }
    }

    #[test]
    fn unknown_figure_is_rejected() {
        assert!(print_figure("99", 2).is_err());
    }
}
