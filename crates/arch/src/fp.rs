//! Floating-point formats of the Snitch SIMD FPU.
//!
//! The Snitch FPU has a 64-bit datapath that can be split into SIMD lanes:
//! one FP64 lane, two FP32 lanes, four FP16 lanes or eight FP8 lanes.
//! SpikeStream evaluates FP16 and FP8 kernels, so this module provides
//! software implementations of IEEE 754 binary16 and of the OCP `E4M3`
//! 8-bit format (the format used by Snitch's `minifloat` FPU slices),
//! without any external dependency.
//!
//! Values are always *computed* in `f32` precision and then rounded to the
//! storage format, which mirrors how narrow formats behave inside an FPU
//! with a wider internal datapath.

use serde::{Deserialize, Serialize};

/// Width of the FPU datapath in bits (one physical FP register).
pub const FPU_DATAPATH_BITS: u32 = 64;

/// A floating-point storage format supported by the SIMD FPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FpFormat {
    /// IEEE 754 binary64 (one lane per register).
    Fp64,
    /// IEEE 754 binary32 (two lanes per register).
    Fp32,
    /// IEEE 754 binary16 (four lanes per register).
    Fp16,
    /// 8-bit `E4M3` minifloat (eight lanes per register).
    Fp8,
}

impl FpFormat {
    /// Storage width of one element in bits.
    pub fn bits(self) -> u32 {
        match self {
            FpFormat::Fp64 => 64,
            FpFormat::Fp32 => 32,
            FpFormat::Fp16 => 16,
            FpFormat::Fp8 => 8,
        }
    }

    /// Storage width of one element in bytes.
    pub fn bytes(self) -> u32 {
        self.bits() / 8
    }

    /// Number of SIMD lanes that fit in the 64-bit FPU datapath.
    ///
    /// This is the data-parallel width used by the SpikeStream kernels to
    /// batch output channels (Section III-C of the paper).
    pub fn simd_lanes(self) -> u32 {
        FPU_DATAPATH_BITS / self.bits()
    }

    /// Round an `f32` value to this storage format and back.
    ///
    /// This models the precision loss of storing a value in the format.
    pub fn quantize(self, value: f32) -> f32 {
        match self {
            FpFormat::Fp64 | FpFormat::Fp32 => value,
            FpFormat::Fp16 => f16_to_f32(f32_to_f16(value)),
            FpFormat::Fp8 => f8_to_f32(f32_to_f8(value)),
        }
    }

    /// All formats, widest first.
    pub fn all() -> [FpFormat; 4] {
        [FpFormat::Fp64, FpFormat::Fp32, FpFormat::Fp16, FpFormat::Fp8]
    }
}

impl std::fmt::Display for FpFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            FpFormat::Fp64 => "FP64",
            FpFormat::Fp32 => "FP32",
            FpFormat::Fp16 => "FP16",
            FpFormat::Fp8 => "FP8",
        };
        f.write_str(name)
    }
}

/// Convert an `f32` to IEEE 754 binary16 bits (round-to-nearest-even).
pub fn f32_to_f16(value: f32) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Infinity or NaN.
        if mant == 0 {
            return sign | 0x7c00;
        }
        // Preserve a quiet NaN payload bit so NaN stays NaN.
        return sign | 0x7e00;
    }

    // Re-bias exponent from 127 to 15.
    let unbiased = exp - 127;
    let new_exp = unbiased + 15;

    if new_exp >= 0x1f {
        // Overflow to infinity.
        return sign | 0x7c00;
    }
    if new_exp <= 0 {
        // Subnormal or underflow to zero.
        if new_exp < -10 {
            return sign;
        }
        // Add the implicit bit and shift into the subnormal range.
        let mant = mant | 0x0080_0000;
        let shift = (14 - new_exp) as u32;
        let half_mant = mant >> shift;
        // Round to nearest even.
        let round_bit = 1u32 << (shift - 1);
        let remainder = mant & (round_bit | (round_bit - 1));
        let mut result = half_mant as u16;
        if remainder > round_bit || (remainder == round_bit && (half_mant & 1) == 1) {
            result += 1;
        }
        return sign | result;
    }

    // Normalized: round mantissa from 23 to 10 bits, nearest even.
    let mant10 = mant >> 13;
    let remainder = mant & 0x1fff;
    let mut result = ((new_exp as u16) << 10) | mant10 as u16;
    if remainder > 0x1000 || (remainder == 0x1000 && (mant10 & 1) == 1) {
        result += 1; // carry may roll into the exponent, which is correct
    }
    sign | result
}

/// Convert IEEE 754 binary16 bits to an `f32`.
pub fn f16_to_f32(bits: u16) -> f32 {
    let sign = ((bits & 0x8000) as u32) << 16;
    let exp = ((bits >> 10) & 0x1f) as u32;
    let mant = (bits & 0x03ff) as u32;

    let out = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: normalize.
            let mut exp = 127 - 15 + 1;
            let mut mant = mant;
            while mant & 0x0400 == 0 {
                mant <<= 1;
                exp -= 1;
            }
            let mant = (mant & 0x03ff) << 13;
            sign | ((exp as u32) << 23) | mant
        }
    } else if exp == 0x1f {
        if mant == 0 {
            sign | 0x7f80_0000
        } else {
            sign | 0x7fc0_0000 | (mant << 13)
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(out)
}

/// Largest finite magnitude representable in `E4M3`.
pub const F8_E4M3_MAX: f32 = 448.0;

/// Convert an `f32` to `E4M3` minifloat bits (round-to-nearest-even, saturating).
///
/// `E4M3` has a sign bit, 4 exponent bits (bias 7) and 3 mantissa bits. The
/// all-ones exponent with all-ones mantissa encodes NaN; there is no
/// infinity, so overflow saturates to the maximum finite value, as in the
/// OCP specification and in hardware minifloat units.
pub fn f32_to_f8(value: f32) -> u8 {
    let bits = value.to_bits();
    let sign = ((bits >> 24) & 0x80) as u8;
    if value.is_nan() {
        return sign | 0x7f;
    }
    let abs = value.abs();
    if abs >= F8_E4M3_MAX {
        // Saturate (also covers +/- infinity).
        return sign | 0x7e;
    }
    if abs == 0.0 {
        return sign;
    }

    let exp = ((bits >> 23) & 0xff) as i32 - 127; // unbiased
    let new_exp = exp + 7;
    let mant = bits & 0x007f_ffff;

    if new_exp <= 0 {
        // Subnormal range: smallest subnormal is 2^-9.
        if new_exp < -3 {
            return sign;
        }
        let mant = mant | 0x0080_0000;
        let shift = (20 + (1 - new_exp)) as u32;
        let small = mant >> shift;
        let round_bit = 1u32 << (shift - 1);
        let remainder = mant & (round_bit | (round_bit - 1));
        let mut result = small as u8;
        if remainder > round_bit || (remainder == round_bit && (small & 1) == 1) {
            result += 1;
        }
        return sign | result;
    }

    // Normalized: keep 3 mantissa bits.
    let mant3 = mant >> 20;
    let remainder = mant & 0x000f_ffff;
    let mut result = ((new_exp as u8) << 3) | mant3 as u8;
    if remainder > 0x8_0000 || (remainder == 0x8_0000 && (mant3 & 1) == 1) {
        result += 1;
    }
    // Rounding may have produced the NaN encoding (exp=15, mant=7); that means
    // the value rounded above the max finite, so saturate instead.
    if (result & 0x7f) == 0x7f {
        result = (result & 0x80) | 0x7e;
    }
    sign | result
}

/// Convert `E4M3` minifloat bits to an `f32`.
pub fn f8_to_f32(bits: u8) -> f32 {
    let sign = if bits & 0x80 != 0 { -1.0f32 } else { 1.0f32 };
    let exp = ((bits >> 3) & 0x0f) as i32;
    let mant = (bits & 0x07) as f32;
    if exp == 0x0f && (bits & 0x07) == 0x07 {
        return f32::NAN;
    }
    if exp == 0 {
        // Subnormal: mant * 2^-9.
        sign * mant * (2.0f32).powi(-9)
    } else {
        sign * (1.0 + mant / 8.0) * (2.0f32).powi(exp - 7)
    }
}

/// A 64-bit SIMD register value holding `simd_lanes()` elements of a format.
///
/// Lane values are kept as `f32` for convenience; every arithmetic helper
/// re-quantizes its result to the storage format so narrow-format rounding
/// behaviour is preserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimdVector {
    format: FpFormat,
    lanes: Vec<f32>,
}

impl SimdVector {
    /// A vector of zeros in the given format.
    pub fn zeros(format: FpFormat) -> Self {
        SimdVector { format, lanes: vec![0.0; format.simd_lanes() as usize] }
    }

    /// Build a vector from lane values, quantizing each to the format.
    ///
    /// # Panics
    ///
    /// Panics if `lanes.len()` does not equal `format.simd_lanes()`.
    pub fn from_lanes(format: FpFormat, lanes: &[f32]) -> Self {
        assert_eq!(
            lanes.len(),
            format.simd_lanes() as usize,
            "lane count must match the SIMD width of {format}"
        );
        SimdVector { format, lanes: lanes.iter().map(|&v| format.quantize(v)).collect() }
    }

    /// Broadcast a scalar into all lanes.
    pub fn splat(format: FpFormat, value: f32) -> Self {
        let q = format.quantize(value);
        SimdVector { format, lanes: vec![q; format.simd_lanes() as usize] }
    }

    /// The storage format of this vector.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Lane values (already quantized to the storage format).
    pub fn lanes(&self) -> &[f32] {
        &self.lanes
    }

    /// Lane-wise addition (`vfadd`), quantized to the storage format.
    pub fn add(&self, other: &SimdVector) -> SimdVector {
        self.zip_with(other, |a, b| a + b)
    }

    /// Lane-wise multiplication (`vfmul`).
    pub fn mul(&self, other: &SimdVector) -> SimdVector {
        self.zip_with(other, |a, b| a * b)
    }

    /// Lane-wise fused multiply-add `self * other + acc` (`vfmac`).
    pub fn fma(&self, other: &SimdVector, acc: &SimdVector) -> SimdVector {
        assert_eq!(self.format, other.format);
        assert_eq!(self.format, acc.format);
        let lanes = self
            .lanes
            .iter()
            .zip(other.lanes.iter())
            .zip(acc.lanes.iter())
            .map(|((&a, &b), &c)| self.format.quantize(a * b + c))
            .collect();
        SimdVector { format: self.format, lanes }
    }

    /// Lane-wise greater-or-equal comparison against a scalar threshold,
    /// producing a boolean mask (used by the LIF thresholding step).
    pub fn ge_mask(&self, threshold: f32) -> Vec<bool> {
        self.lanes.iter().map(|&v| v >= threshold).collect()
    }

    /// Lane-wise scaling by a scalar (used for the leak factor `alpha`).
    pub fn scale(&self, factor: f32) -> SimdVector {
        let lanes = self.lanes.iter().map(|&v| self.format.quantize(v * factor)).collect();
        SimdVector { format: self.format, lanes }
    }

    fn zip_with(&self, other: &SimdVector, f: impl Fn(f32, f32) -> f32) -> SimdVector {
        assert_eq!(self.format, other.format, "SIMD formats must match");
        let lanes = self
            .lanes
            .iter()
            .zip(other.lanes.iter())
            .map(|(&a, &b)| self.format.quantize(f(a, b)))
            .collect();
        SimdVector { format: self.format, lanes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simd_lane_counts_match_snitch_datapath() {
        assert_eq!(FpFormat::Fp64.simd_lanes(), 1);
        assert_eq!(FpFormat::Fp32.simd_lanes(), 2);
        assert_eq!(FpFormat::Fp16.simd_lanes(), 4);
        assert_eq!(FpFormat::Fp8.simd_lanes(), 8);
    }

    #[test]
    fn f16_round_trips_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25, 1024.0] {
            assert_eq!(f16_to_f32(f32_to_f16(v)), v, "value {v}");
        }
    }

    #[test]
    fn f16_handles_special_values() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
        assert_eq!(f16_to_f32(f32_to_f16(f32::INFINITY)), f32::INFINITY);
        assert_eq!(f16_to_f32(f32_to_f16(f32::NEG_INFINITY)), f32::NEG_INFINITY);
        // Overflow saturates to infinity in binary16.
        assert_eq!(f16_to_f32(f32_to_f16(1.0e6)), f32::INFINITY);
        // Tiny values underflow to (signed) zero.
        assert_eq!(f16_to_f32(f32_to_f16(1.0e-12)), 0.0);
    }

    #[test]
    fn f16_subnormals_are_representable() {
        let smallest_subnormal = 5.960_464_5e-8f32; // 2^-24
        let rt = f16_to_f32(f32_to_f16(smallest_subnormal));
        assert!((rt - smallest_subnormal).abs() < 1e-9);
    }

    #[test]
    fn f16_rounding_is_nearest_even() {
        // 1 + 2^-11 is exactly between 1.0 and the next representable value;
        // round-to-nearest-even keeps 1.0.
        let v = 1.0 + (2.0f32).powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(v)), 1.0);
        // 1 + 3*2^-11 is halfway between 1+2^-10 (odd mantissa) and
        // 1+2^-9 (even mantissa); ties-to-even picks the latter.
        let v = 1.0 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(f16_to_f32(f32_to_f16(v)), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn f8_round_trips_exact_values() {
        for v in [0.0f32, 1.0, -1.0, 0.5, 2.0, 448.0, -448.0, 0.125, 16.0] {
            assert_eq!(f8_to_f32(f32_to_f8(v)), v, "value {v}");
        }
    }

    #[test]
    fn f8_saturates_instead_of_overflowing() {
        assert_eq!(f8_to_f32(f32_to_f8(1.0e9)), F8_E4M3_MAX);
        assert_eq!(f8_to_f32(f32_to_f8(-1.0e9)), -F8_E4M3_MAX);
        assert_eq!(f8_to_f32(f32_to_f8(f32::INFINITY)), F8_E4M3_MAX);
    }

    #[test]
    fn f8_preserves_nan() {
        assert!(f8_to_f32(f32_to_f8(f32::NAN)).is_nan());
    }

    #[test]
    fn f8_subnormals() {
        // Smallest E4M3 subnormal is 2^-9.
        let v = (2.0f32).powi(-9);
        assert_eq!(f8_to_f32(f32_to_f8(v)), v);
        // Below half of that, the value flushes to zero.
        assert_eq!(f8_to_f32(f32_to_f8(v / 4.0)), 0.0);
    }

    #[test]
    fn quantize_is_identity_for_wide_formats() {
        let v = 1.234_567_9_f32;
        assert_eq!(FpFormat::Fp64.quantize(v), v);
        assert_eq!(FpFormat::Fp32.quantize(v), v);
        assert_ne!(FpFormat::Fp8.quantize(v), v);
    }

    #[test]
    fn simd_add_quantizes_to_format() {
        let a = SimdVector::splat(FpFormat::Fp8, 1.0);
        let b = SimdVector::splat(FpFormat::Fp8, 0.01);
        // 1.01 is not representable in E4M3; rounds back to 1.0.
        let c = a.add(&b);
        assert!(c.lanes().iter().all(|&v| v == 1.0));
    }

    #[test]
    fn simd_fma_matches_scalar() {
        let a = SimdVector::from_lanes(FpFormat::Fp32, &[1.5, -2.0]);
        let b = SimdVector::from_lanes(FpFormat::Fp32, &[2.0, 0.5]);
        let c = SimdVector::from_lanes(FpFormat::Fp32, &[1.0, 1.0]);
        let r = a.fma(&b, &c);
        assert_eq!(r.lanes(), &[4.0, 0.0]);
    }

    #[test]
    fn ge_mask_thresholds_lanes() {
        let v = SimdVector::from_lanes(FpFormat::Fp16, &[0.5, 1.0, 1.5, -1.0]);
        assert_eq!(v.ge_mask(1.0), vec![false, true, true, false]);
    }

    #[test]
    #[should_panic(expected = "lane count")]
    fn from_lanes_panics_on_wrong_width() {
        let _ = SimdVector::from_lanes(FpFormat::Fp16, &[1.0, 2.0]);
    }
}
