//! Per-operation latency / occupancy cost model.
//!
//! The simulator charges cycles per dynamic operation according to this
//! table. The defaults follow the published Snitch micro-architecture: a
//! single-issue in-order integer pipeline where ALU ops retire in one cycle,
//! scratchpad loads have a two-cycle use latency, taken branches cost an
//! extra flush cycle, and a fully pipelined FPU that can accept one (SIMD)
//! operation per cycle. Accumulation-style dependent chains are modelled
//! with a configurable issue interval so that the streamed SpVA can sustain
//! one accumulate per cycle as in the paper's near-ideal regions.

use serde::{Deserialize, Serialize};

use crate::isa::{FpOp, IntOp};

/// Cycle costs of individual operations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Cycles for a simple integer ALU operation.
    pub int_alu: u64,
    /// Cycles for an integer multiply.
    pub int_mul: u64,
    /// Use-latency of a scratchpad load on the integer core (no conflict).
    pub int_load: u64,
    /// Cycles for a store (fire and forget into the interconnect).
    pub int_store: u64,
    /// Cycles for a non-taken branch.
    pub branch_not_taken: u64,
    /// Cycles for a taken branch (includes the pipeline flush bubble).
    pub branch_taken: u64,
    /// Cycles for an atomic read-modify-write on the scratchpad.
    pub int_amo: u64,
    /// Cycles for a CSR / SSR configuration write.
    pub int_csr: u64,
    /// Cycles for an int<->FP move (explicit synchronization).
    pub int_move: u64,
    /// Issue interval of an FPU op in cycles (1 = fully pipelined).
    pub fpu_issue: u64,
    /// Extra cycles of result latency for the first op of a dependent chain
    /// (pipeline fill); sustained dependent accumulation issues every
    /// `fpu_issue` cycles thereafter.
    pub fpu_latency: u64,
    /// Cycles for a non-streamed FP load (`fld`) issued via the int core.
    pub fp_load: u64,
    /// Cycles for a non-streamed FP store.
    pub fp_store: u64,
    /// Extra cycles charged when a scratchpad access loses bank arbitration.
    pub bank_conflict_penalty: u64,
    /// Cycles to refill one instruction cache line from global memory.
    pub icache_refill: u64,
    /// Integer-core cycles to launch an `frep` hardware loop.
    pub frep_launch: u64,
    /// Integer-core cycles per SSR configuration write (bound/stride/base);
    /// a full indirect-stream setup issues several of these.
    pub ssr_config_write: u64,
    /// Cycles between the start of a stream and its first delivered element
    /// (index fetch plus gather latency for indirect streams).
    pub stream_startup: u64,
    /// Sustained delivery interval of an *affine* stream in cycles per
    /// element (1.0 = one element per cycle).
    pub affine_stream_interval: f64,
    /// Sustained delivery interval of an *indirect* stream in cycles per
    /// element. Each indirect element needs an index fetch and a gather
    /// through the same scratchpad port, so sustained throughput stays
    /// below one element per cycle; this single constant is the main
    /// calibration knob for the SpikeStream utilization ceiling.
    pub indirect_stream_interval: f64,
    /// Expected extra stall cycles per scratchpad access caused by
    /// contention with the other cores of the cluster. The value is a
    /// calibration constant: with eight cores issuing roughly two stream
    /// accesses per cycle into 32 banks, a few percent of accesses lose
    /// arbitration. Shared by the cycle-level core model and the analytic
    /// cost integration so both charge the same interference.
    pub cross_conflict_per_access: f64,
}

impl CostModel {
    /// The default cost model used for the paper reproduction.
    pub fn snitch() -> Self {
        CostModel {
            int_alu: 1,
            int_mul: 2,
            int_load: 2,
            int_store: 1,
            branch_not_taken: 1,
            branch_taken: 2,
            int_amo: 4,
            int_csr: 1,
            int_move: 1,
            fpu_issue: 1,
            fpu_latency: 3,
            fp_load: 2,
            fp_store: 1,
            bank_conflict_penalty: 1,
            icache_refill: 30,
            frep_launch: 1,
            ssr_config_write: 1,
            stream_startup: 4,
            affine_stream_interval: 1.0,
            indirect_stream_interval: 1.55,
            cross_conflict_per_access: 0.04,
        }
    }

    /// Integer-pipeline occupancy of an operation, excluding memory stalls.
    pub fn int_cycles(&self, op: IntOp) -> u64 {
        match op {
            IntOp::Alu => self.int_alu,
            IntOp::Mul => self.int_mul,
            IntOp::Load => self.int_load,
            IntOp::Store => self.int_store,
            IntOp::Branch => self.branch_taken,
            IntOp::Amo => self.int_amo,
            IntOp::Csr => self.int_csr,
            IntOp::Move => self.int_move,
        }
    }

    /// FPU occupancy of an operation (issue slots, not latency).
    pub fn fp_cycles(&self, op: FpOp) -> u64 {
        match op {
            FpOp::Add | FpOp::Mul | FpOp::Fma | FpOp::Cmp | FpOp::Cvt | FpOp::Move => {
                self.fpu_issue
            }
            FpOp::Load => self.fp_load,
            FpOp::Store => self.fp_store,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::snitch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_single_issue_friendly() {
        let c = CostModel::default();
        assert_eq!(c.int_cycles(IntOp::Alu), 1);
        assert_eq!(c.fp_cycles(FpOp::Add), 1);
        assert!(c.int_cycles(IntOp::Load) >= 1);
        assert!(c.branch_taken >= c.branch_not_taken);
    }

    #[test]
    fn baseline_spva_element_cost_matches_listing_1b() {
        // Listing 1b: lw, slli, add, fld, addi, addi, fadd, bne -> the
        // integer pipeline alone needs ~9-10 cycles per element with the
        // default cost model, which yields the ~10% FPU utilization the
        // paper reports for the non-streamed baseline.
        let c = CostModel::default();
        let int_cycles = c.int_cycles(IntOp::Load)
            + 3 * c.int_cycles(IntOp::Alu)
            + c.fp_load
            + c.int_cycles(IntOp::Branch);
        assert!(int_cycles >= 8, "got {int_cycles}");
    }
}
