//! Cluster configuration parameters.
//!
//! The defaults reproduce the Snitch cluster instance used in the
//! SpikeStream paper: eight RV32G worker cores plus one DMA core, a 128 KiB
//! scratchpad organized in 32 banks behind a single-cycle logarithmic
//! interconnect, an 8 KiB shared L1 instruction cache, a 512-bit DMA data
//! path to global memory, and a 1 GHz clock in GlobalFoundries 12LP+.

use serde::{Deserialize, Serialize};

/// Static configuration of a simulated Snitch cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute (worker) cores with FPU and SSRs.
    pub worker_cores: usize,
    /// Number of stream semantic registers per worker core.
    pub ssrs_per_core: usize,
    /// Scratchpad (TCDM) capacity in bytes.
    pub spm_bytes: u32,
    /// Number of scratchpad banks.
    pub spm_banks: u32,
    /// Width of one scratchpad bank port in bytes (one 64-bit word).
    pub spm_bank_width_bytes: u32,
    /// Shared L1 instruction cache capacity in bytes.
    pub icache_bytes: u32,
    /// Instruction cache line size in bytes.
    pub icache_line_bytes: u32,
    /// Width of the DMA engine data path in bits.
    pub dma_width_bits: u32,
    /// Latency of a DMA transfer setup (cycles before the first beat).
    pub dma_setup_cycles: u64,
    /// Global-memory bandwidth available to the DMA engine, bytes per cycle.
    pub global_mem_bytes_per_cycle: f64,
    /// Cluster clock frequency in Hz.
    pub clock_hz: f64,
    /// Depth of the FPU sequencer buffer that lets the integer core run
    /// ahead of outstanding FP instructions (pseudo dual issue).
    pub sequencer_depth: usize,
}

impl ClusterConfig {
    /// The configuration evaluated in the paper (Section II-B / IV).
    pub fn snitch_cluster() -> Self {
        ClusterConfig {
            worker_cores: 8,
            ssrs_per_core: 3,
            spm_bytes: 128 * 1024,
            spm_banks: 32,
            spm_bank_width_bytes: 8,
            icache_bytes: 8 * 1024,
            icache_line_bytes: 64,
            dma_width_bits: 512,
            dma_setup_cycles: 20,
            global_mem_bytes_per_cycle: 64.0,
            clock_hz: 1.0e9,
            sequencer_depth: 16,
        }
    }

    /// DMA beat width in bytes.
    pub fn dma_width_bytes(&self) -> u32 {
        self.dma_width_bits / 8
    }

    /// Total number of cores including the DMA core.
    pub fn total_cores(&self) -> usize {
        self.worker_cores + 1
    }

    /// Duration of one clock cycle in seconds.
    pub fn cycle_time_s(&self) -> f64 {
        1.0 / self.clock_hz
    }

    /// Validate internal consistency of the configuration.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated constraint
    /// (zero cores, non-power-of-two bank count, SPM not divisible by the
    /// bank layout, or a zero clock).
    pub fn validate(&self) -> Result<(), String> {
        if self.worker_cores == 0 {
            return Err("cluster must have at least one worker core".into());
        }
        if !self.spm_banks.is_power_of_two() {
            return Err(format!("SPM bank count {} must be a power of two", self.spm_banks));
        }
        if !self.spm_bytes.is_multiple_of(self.spm_banks * self.spm_bank_width_bytes) {
            return Err("SPM size must be a multiple of banks * bank width".into());
        }
        if self.clock_hz <= 0.0 {
            return Err("clock frequency must be positive".into());
        }
        if self.ssrs_per_core == 0 {
            return Err("worker cores need at least one SSR for streaming kernels".into());
        }
        Ok(())
    }
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self::snitch_cluster()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_cluster() {
        let c = ClusterConfig::default();
        assert_eq!(c.worker_cores, 8);
        assert_eq!(c.spm_bytes, 128 * 1024);
        assert_eq!(c.spm_banks, 32);
        assert_eq!(c.icache_bytes, 8 * 1024);
        assert_eq!(c.dma_width_bits, 512);
        assert_eq!(c.clock_hz, 1.0e9);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let c = ClusterConfig { worker_cores: 0, ..ClusterConfig::default() };
        assert!(c.validate().is_err());

        let c = ClusterConfig { spm_banks: 30, ..ClusterConfig::default() };
        assert!(c.validate().is_err());

        let c = ClusterConfig { clock_hz: 0.0, ..ClusterConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn derived_quantities() {
        let c = ClusterConfig::default();
        assert_eq!(c.dma_width_bytes(), 64);
        assert_eq!(c.total_cores(), 9);
        assert!((c.cycle_time_s() - 1e-9).abs() < 1e-18);
    }
}
