//! Architectural model of the Snitch RISC-V compute cluster.
//!
//! This crate holds everything that both the simulator (`snitch-sim`) and
//! the kernel generators (`spikestream-kernels`) need to agree on:
//!
//! * the floating-point formats supported by the SIMD FPU ([`fp`]),
//! * the dynamic instruction / trace-operation vocabulary ([`isa`]),
//! * the cluster configuration parameters ([`config`]), and
//! * the per-operation latency and occupancy cost model ([`cost`]).
//!
//! The modelled machine is the open-source Snitch cluster used by the
//! SpikeStream paper: eight RV32G worker cores, each pairing a tiny
//! single-issue integer pipeline with a 64-bit SIMD-capable FPU, three
//! stream semantic registers (SSRs, two of which support indirect
//! streams), and an FP hardware loop (FREP) that decouples FPU and
//! integer execution. A ninth core drives a 512-bit DMA engine.
//!
//! # Example
//!
//! ```
//! use snitch_arch::config::ClusterConfig;
//! use snitch_arch::fp::FpFormat;
//!
//! let cfg = ClusterConfig::default();
//! assert_eq!(cfg.worker_cores, 8);
//! // The 64-bit FPU datapath fits eight FP8 lanes.
//! assert_eq!(FpFormat::Fp8.simd_lanes(), 8);
//! ```

pub mod config;
pub mod cost;
pub mod fp;
pub mod isa;

pub use config::ClusterConfig;
pub use cost::CostModel;
pub use fp::{FpFormat, SimdVector};
pub use isa::{FpOp, IntOp, SsrId, TraceOp};
