//! Dynamic-trace instruction vocabulary shared by kernels and simulator.
//!
//! The SpikeStream kernels are *trace generators*: instead of compiling C
//! through the Snitch LLVM toolchain, they emit the dynamic sequence of
//! operations the compiled inner loops would execute (the paper gives the
//! exact inner-loop instruction sequences in Listing 1b/1c). The simulator
//! in `snitch-sim` consumes these traces and charges cycles according to
//! the [`crate::cost::CostModel`].
//!
//! Functional results are computed by the kernels themselves (both code
//! variants are functionally identical; only their instruction structure
//! and therefore their timing differs), so trace operations carry memory
//! *addresses* — needed for bank-conflict and DMA modelling — but not data.

use serde::{Deserialize, Serialize};

use crate::fp::FpFormat;

/// Identifier of one of the three stream semantic registers of a worker core.
///
/// `Ssr0` and `Ssr1` support indirect (gather) streams in addition to affine
/// streams; `Ssr2` is affine-only, mirroring the sparse-SSR extension used by
/// the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SsrId {
    /// Stream register 0 (affine + indirect capable).
    Ssr0,
    /// Stream register 1 (affine + indirect capable).
    Ssr1,
    /// Stream register 2 (affine only).
    Ssr2,
}

impl SsrId {
    /// Whether this SSR supports indirect (indexed gather/scatter) streams.
    pub fn supports_indirect(self) -> bool {
        matches!(self, SsrId::Ssr0 | SsrId::Ssr1)
    }

    /// Index of the SSR (0..3).
    pub fn index(self) -> usize {
        match self {
            SsrId::Ssr0 => 0,
            SsrId::Ssr1 => 1,
            SsrId::Ssr2 => 2,
        }
    }
}

/// Integer-pipeline operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IntOp {
    /// Simple ALU operation (add, shift, logic, compare).
    Alu,
    /// Integer multiply / divide.
    Mul,
    /// Load from the scratchpad or global memory.
    Load,
    /// Store to the scratchpad or global memory.
    Store,
    /// Conditional branch.
    Branch,
    /// Atomic read-modify-write (used by the workload-stealing scheduler).
    Amo,
    /// CSR access / SSR configuration write from the integer side.
    Csr,
    /// Move between integer and FP register files (explicit synchronization).
    Move,
}

/// Floating-point operation kinds executed by the (SIMD) FPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FpOp {
    /// Lane-wise addition (the SpVA accumulate).
    Add,
    /// Lane-wise multiply.
    Mul,
    /// Lane-wise fused multiply-accumulate (dense matmul inner op).
    Fma,
    /// Lane-wise maximum / comparison (LIF thresholding).
    Cmp,
    /// Format conversion or packing/unpacking of SIMD lanes.
    Cvt,
    /// FP load issued through the integer core (non-streamed `fld`).
    Load,
    /// FP store issued through the integer core (`fsd`).
    Store,
    /// Register move / sign injection.
    Move,
}

/// Address-generation pattern of a stream semantic register.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StreamPattern {
    /// Up-to-4D affine stream: `addr = base + Σ idx_d * stride_d`.
    Affine {
        /// Base byte address of the stream in the scratchpad.
        base: u32,
        /// Byte strides of each nesting level, innermost first.
        strides: Vec<i64>,
        /// Trip counts of each nesting level, innermost first.
        bounds: Vec<u32>,
        /// Element width in bytes.
        elem_bytes: u32,
    },
    /// 1D indirect (gather) stream: `addr = data_base + index[i] * elem_bytes`.
    Indirect {
        /// Byte address of the index array in the scratchpad.
        index_base: u32,
        /// Width of each index element in bytes (1, 2 or 4).
        index_bytes: u32,
        /// Base byte address of the gathered data.
        data_base: u32,
        /// Element width of the gathered data in bytes.
        elem_bytes: u32,
        /// The index values of this stream, as resolved by the kernel.
        ///
        /// Shared (`Arc<[u32]>`) rather than owned: the same resolved
        /// gather list flows from the kernel IR through every
        /// `SsrConfig` trace op and pattern clone without copying the
        /// index words.
        indices: std::sync::Arc<[u32]>,
    },
}

impl StreamPattern {
    /// Number of elements produced by the stream.
    pub fn length(&self) -> u64 {
        match self {
            StreamPattern::Affine { bounds, .. } => {
                bounds.iter().map(|&b| b as u64).product::<u64>()
            }
            StreamPattern::Indirect { indices, .. } => indices.len() as u64,
        }
    }

    /// Byte addresses touched by the stream, in issue order.
    ///
    /// For indirect streams this is the *gather* address sequence; the index
    /// fetches themselves are sequential reads starting at `index_base`.
    pub fn data_addresses(&self) -> Vec<u32> {
        match self {
            StreamPattern::Affine { base, strides, bounds, elem_bytes: _ } => {
                let mut addrs = Vec::with_capacity(self.length() as usize);
                let dims = bounds.len();
                let mut idx = vec![0u32; dims];
                loop {
                    let offset: i64 =
                        idx.iter().zip(strides.iter()).map(|(&i, &s)| i as i64 * s).sum();
                    addrs.push((*base as i64 + offset) as u32);
                    // Increment the innermost-first counter vector.
                    let mut d = 0;
                    loop {
                        if d == dims {
                            return addrs;
                        }
                        idx[d] += 1;
                        if idx[d] < bounds[d] {
                            break;
                        }
                        idx[d] = 0;
                        d += 1;
                    }
                }
            }
            StreamPattern::Indirect { data_base, elem_bytes, indices, .. } => {
                indices.iter().map(|&i| data_base.wrapping_add(i * elem_bytes)).collect()
            }
        }
    }
}

/// One operation of a dynamic trace executed by a worker core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// An integer-pipeline operation. `addr` carries the byte address of a
    /// load/store/AMO (for bank-conflict accounting) and is `None` otherwise.
    Int {
        /// The operation kind.
        op: IntOp,
        /// Byte address accessed, if the op touches memory.
        addr: Option<u32>,
    },
    /// A floating-point operation issued to the FPU through the sequencer.
    Fp {
        /// The operation kind.
        op: FpOp,
        /// Storage format (determines SIMD lane count, for statistics).
        format: FpFormat,
        /// SSRs read as source operands by this op.
        ssr_srcs: Vec<SsrId>,
        /// Byte address for a non-streamed FP load/store, if any.
        addr: Option<u32>,
    },
    /// Configuration of a stream semantic register from the integer core.
    ///
    /// Writing configuration occupies the integer pipeline (a few CSR writes);
    /// with `shadow` set the configuration lands in the shadow registers and
    /// becomes active when the running stream finishes, which is how
    /// SpikeStream overlaps setup with computation.
    SsrConfig {
        /// The configured stream register.
        ssr: SsrId,
        /// Address pattern of the stream.
        pattern: StreamPattern,
        /// Whether the shadow (double-buffered) config registers are used.
        shadow: bool,
    },
    /// A hardware-loop (`frep`) region: the FPU sequencer autonomously
    /// repeats the `body` FP operations `reps` times without involving the
    /// integer core. `body_issue_cost` is the single integer instruction
    /// that launches the loop.
    Frep {
        /// Repetition count.
        reps: u32,
        /// FP operations of one loop body iteration.
        body: Vec<TraceOp>,
    },
    /// Explicit barrier: wait until all outstanding FP and stream operations
    /// of this core have completed (used at kernel-phase boundaries).
    Barrier,
}

impl TraceOp {
    /// Convenience constructor for an ALU op.
    pub fn alu() -> Self {
        TraceOp::Int { op: IntOp::Alu, addr: None }
    }

    /// Convenience constructor for an integer load from `addr`.
    pub fn load(addr: u32) -> Self {
        TraceOp::Int { op: IntOp::Load, addr: Some(addr) }
    }

    /// Convenience constructor for an integer store to `addr`.
    pub fn store(addr: u32) -> Self {
        TraceOp::Int { op: IntOp::Store, addr: Some(addr) }
    }

    /// Convenience constructor for a branch.
    pub fn branch() -> Self {
        TraceOp::Int { op: IntOp::Branch, addr: None }
    }

    /// Convenience constructor for a non-streamed FP op without memory access.
    pub fn fp(op: FpOp, format: FpFormat) -> Self {
        TraceOp::Fp { op, format, ssr_srcs: Vec::new(), addr: None }
    }

    /// Convenience constructor for an FP op that reads one SSR source.
    pub fn fp_streamed(op: FpOp, format: FpFormat, ssr: SsrId) -> Self {
        TraceOp::Fp { op, format, ssr_srcs: vec![ssr], addr: None }
    }

    /// Whether this operation is (or contains) FPU work.
    pub fn is_fp(&self) -> bool {
        matches!(self, TraceOp::Fp { .. } | TraceOp::Frep { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssr_indirect_capability() {
        assert!(SsrId::Ssr0.supports_indirect());
        assert!(SsrId::Ssr1.supports_indirect());
        assert!(!SsrId::Ssr2.supports_indirect());
    }

    #[test]
    fn affine_stream_addresses_1d() {
        let p =
            StreamPattern::Affine { base: 0x100, strides: vec![8], bounds: vec![4], elem_bytes: 8 };
        assert_eq!(p.length(), 4);
        assert_eq!(p.data_addresses(), vec![0x100, 0x108, 0x110, 0x118]);
    }

    #[test]
    fn affine_stream_addresses_2d() {
        let p = StreamPattern::Affine {
            base: 0,
            strides: vec![4, 64],
            bounds: vec![2, 3],
            elem_bytes: 4,
        };
        assert_eq!(p.length(), 6);
        assert_eq!(p.data_addresses(), vec![0, 4, 64, 68, 128, 132]);
    }

    #[test]
    fn indirect_stream_gathers_by_index() {
        let p = StreamPattern::Indirect {
            index_base: 0x200,
            index_bytes: 2,
            data_base: 0x1000,
            elem_bytes: 8,
            indices: [3, 0, 7].into(),
        };
        assert_eq!(p.length(), 3);
        assert_eq!(p.data_addresses(), vec![0x1018, 0x1000, 0x1038]);
    }

    #[test]
    fn trace_op_classification() {
        assert!(!TraceOp::alu().is_fp());
        assert!(TraceOp::fp(FpOp::Add, FpFormat::Fp16).is_fp());
        assert!(TraceOp::Frep { reps: 4, body: vec![] }.is_fp());
    }
}
