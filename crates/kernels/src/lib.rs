//! SNN inference kernels for the Snitch cluster.
//!
//! This crate implements the paper's two code variants as *emitters* onto
//! the unified stream-program IR (`spikestream-ir`):
//!
//! * the **baseline** kernel (Section III-A to III-D): compressed ifmaps,
//!   task parallelization with workload stealing, SIMD data parallelism
//!   over output channels, tiling and double buffering — but scalar
//!   indirection loops for the weight gathers (Listing 1b);
//! * the **SpikeStream** kernel (Section III-E): the same structure with
//!   the Sparse Vector Accumulations mapped onto indirect stream semantic
//!   registers and FREP hardware loops (Listing 1c), and the dense
//!   spike-encoding first layer mapped onto two affine SSRs.
//!
//! Every kernel *lowers* a layer invocation into a
//! [`StreamProgram`](spikestream_ir::StreamProgram) — in **exact** form
//! from a concrete compressed input (interpreted on the `snitch-sim`
//! cluster by the cycle-level backend), or in **symbolic** form from
//! expected firing rates (integrated by
//! [`CostIntegrator`](spikestream_ir::CostIntegrator) in the analytic
//! backend). Both variants are functionally identical; they differ only in
//! the instruction structure they emit, which is what produces the paper's
//! utilization and speedup differences. The shared op templates live in
//! the private `emit` module, so the inner-loop structure of Listings
//! 1a-1c is written down exactly once.
//!
//! Execution backends drive the kernels through the uniform
//! [`executor::LayerExecutor`] entry point rather than invoking
//! [`ConvKernel`], [`FcKernel`], [`PoolKernel`] and
//! [`DenseEncodingKernel`] directly. Single-shot synthetic evaluation uses
//! [`LayerExecutor::run_with_scratch`] (membranes reset per invocation);
//! the T-timestep temporal pipeline uses
//! [`LayerExecutor::run_temporal_step`], which advances the per-layer
//! persistent membrane states owned by [`executor::LayerScratch`] and
//! returns each layer's output spike map so the caller can feed it to the
//! next layer — per-step stream lengths and DMA traffic then reflect the
//! *emergent* sparsity of the step instead of an injected profile.

mod emit;

pub mod conv;
pub mod dense;
pub mod executor;
pub mod fc;
pub mod pool;
pub mod tiling;

pub use conv::{ConvKernel, ConvKernelOutput};
pub use dense::DenseEncodingKernel;
pub use executor::{LayerExecution, LayerExecutor, LayerInput, LayerScratch};
pub use fc::FcKernel;
pub use pool::{PoolKernel, PoolKernelOutput};
pub use tiling::{LayerTilePlan, TilingPlanner};

use serde::{Deserialize, Serialize};

/// Which code variant a kernel emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelVariant {
    /// Compressed, parallel, SIMD baseline without stream registers
    /// (optimizations TC + TP + DP + DB of the paper).
    Baseline,
    /// Baseline plus streaming acceleration with SSRs and FREP (SA).
    SpikeStream,
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelVariant::Baseline => f.write_str("Baseline"),
            KernelVariant::SpikeStream => f.write_str("SpikeStream"),
        }
    }
}
