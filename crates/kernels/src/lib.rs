//! SNN inference kernels for the Snitch cluster.
//!
//! This crate implements the paper's two code variants as drivers of the
//! `snitch-sim` timing model:
//!
//! * the **baseline** kernel (Section III-A to III-D): compressed ifmaps,
//!   task parallelization with workload stealing, SIMD data parallelism
//!   over output channels, tiling and double buffering — but scalar
//!   indirection loops for the weight gathers (Listing 1b);
//! * the **SpikeStream** kernel (Section III-E): the same structure with
//!   the Sparse Vector Accumulations mapped onto indirect stream semantic
//!   registers and FREP hardware loops (Listing 1c), and the dense
//!   spike-encoding first layer mapped onto two affine SSRs.
//!
//! Both variants are functionally identical; they differ only in the
//! instruction structure they emit, which is what produces the paper's
//! utilization and speedup differences.
//!
//! For full-network, full-batch reproduction runs the crate also provides
//! an [`analytic`] layer-timing model derived from the same architectural
//! constants, cross-checked against the cycle-level kernels in the tests.
//!
//! Execution backends drive the cycle-level kernels through the uniform
//! [`executor::LayerExecutor`] entry point rather than invoking
//! [`ConvKernel`], [`FcKernel`] and [`DenseEncodingKernel`] directly.

pub mod analytic;
pub mod conv;
pub mod dense;
pub mod executor;
pub mod fc;
pub mod schedule;
pub mod tiling;

pub use analytic::{AnalyticLayerModel, LayerTiming};
pub use conv::{ConvKernel, ConvKernelOutput};
pub use dense::DenseEncodingKernel;
pub use executor::{LayerExecution, LayerExecutor, LayerInput, LayerScratch};
pub use fc::FcKernel;
pub use schedule::WorkStealingScheduler;
pub use tiling::{LayerTilePlan, TilingPlanner};

use serde::{Deserialize, Serialize};

/// Which code variant a kernel emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KernelVariant {
    /// Compressed, parallel, SIMD baseline without stream registers
    /// (optimizations TC + TP + DP + DB of the paper).
    Baseline,
    /// Baseline plus streaming acceleration with SSRs and FREP (SA).
    SpikeStream,
}

impl std::fmt::Display for KernelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelVariant::Baseline => f.write_str("Baseline"),
            KernelVariant::SpikeStream => f.write_str("SpikeStream"),
        }
    }
}
