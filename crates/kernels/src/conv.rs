//! Compressed spiking convolution kernels (baseline and SpikeStream).
//!
//! Both variants implement the dataflow of Fig. 2b of the paper: receptive
//! fields (output spatial positions) are distributed over the worker cores
//! by workload stealing; within a receptive field, each SIMD group of
//! output channels accumulates, for every filter position, the weights
//! selected by the active input channels of the compressed ifmap (one
//! Sparse Vector Accumulation, SpVA, per filter position); the LIF
//! activation is fused at the end of each group and the output spikes are
//! written back in compressed form.
//!
//! The two variants differ only in how the SpVA is executed:
//!
//! * **Baseline** — the scalar indirection loop of Listing 1b: per element,
//!   seven integer instructions surround a single useful `fadd`.
//! * **SpikeStream** — Listing 1c: an indirect stream register gathers the
//!   weights while an FREP hardware loop keeps the FPU accumulating, so
//!   the integer core merely sets up the next stream.

use snitch_arch::fp::FpFormat;
use snitch_arch::isa::{FpOp, IntOp, StreamPattern};
use snitch_arch::{SsrId, TraceOp};
use snitch_sim::ClusterModel;
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::reference::max_pool_2x2;
use spikestream_snn::{CompressedIfmap, ConvSpec, Layer, LayerKind, LifState, SpikeMap, Tensor3};

use crate::schedule::WorkStealingScheduler;
use crate::tiling::TilingPlanner;
use crate::KernelVariant;

/// Approximate code footprints (bytes) of the kernel regions, used by the
/// instruction-cache model.
const CODE_REGION_CONV_BASELINE: (u64, u32) = (0x10, 1280);
const CODE_REGION_CONV_SPIKESTREAM: (u64, u32) = (0x11, 1792);
const CODE_REGION_ACTIVATION: (u64, u32) = (0x12, 640);

/// Functional and structural result of one convolutional layer invocation.
#[derive(Debug, Clone)]
pub struct ConvKernelOutput {
    /// Accumulated input currents of every output neuron (quantized to the
    /// kernel's storage format).
    pub currents: Tensor3,
    /// Output spikes before pooling.
    pub spikes: SpikeMap,
    /// Output spikes after the optional 2x2 pooling stage.
    pub output: SpikeMap,
    /// Compressed form of [`Self::output`], ready for the next layer.
    pub compressed: CompressedIfmap,
}

/// A spiking convolution kernel bound to a code variant and storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvKernel {
    variant: KernelVariant,
    format: FpFormat,
}

impl ConvKernel {
    /// Create a kernel for the given variant and floating-point format.
    pub fn new(variant: KernelVariant, format: FpFormat) -> Self {
        ConvKernel { variant, format }
    }

    /// The code variant this kernel emits.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The storage format of weights and activations.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Run one convolutional layer on the cluster.
    ///
    /// `input` must be the compressed, padded ifmap of the layer and
    /// `state` the dense membrane state of its output neurons. The call
    /// advances the per-core timing models of `cluster`; obtain the layer's
    /// statistics with [`ClusterModel::finish_phase`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not convolutional, if the input shape does not
    /// match the padded layer input, or if the neuron state has the wrong
    /// size.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: &CompressedIfmap,
        state: &mut LifState,
    ) -> ConvKernelOutput {
        let LayerKind::Conv(spec) = &layer.kind else {
            panic!("ConvKernel requires a convolutional layer");
        };
        assert_eq!(input.shape(), spec.padded_input(), "input must be padded");
        let out_shape = spec.conv_output();
        assert_eq!(state.len(), out_shape.len(), "neuron state size mismatch");

        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_channels.div_ceil(lanes);
        let elem_bytes = self.format.bytes();

        // Tiling, double buffering and DMA traffic.
        let plan = TilingPlanner::new(cluster.config()).plan_conv(spec, self.format, input);
        plan.issue_dma(cluster);

        let weights_base = plan.weights.base;
        let idcs_base = plan.ifmap_idcs.base;
        let sptr_base = plan.ifmap_sptr.base;
        let state_base = plan.neuron_state.base;
        let spm_bytes = cluster.config().spm_bytes.max(1);
        // Byte address of the SIMD weight group for (kh, kw, group): the
        // grouped weight layout stores, per filter position and group, the
        // `in_c` gatherable SIMD words contiguously.
        let group_words = spec.input.c as u32;
        let word_bytes = (lanes as u32) * elem_bytes;
        let weight_group_base = |kh: usize, kw: usize, g: usize| -> u32 {
            let offset = (((kh * spec.kw + kw) * groups + g) as u32) * group_words * word_bytes;
            weights_base.wrapping_add(offset % spm_bytes)
        };

        let mut scheduler = WorkStealingScheduler::new(cluster.worker_cores());
        let mut currents = Tensor3::zeros(out_shape);
        let mut spikes = SpikeMap::silent(out_shape);

        let (region_id, region_bytes) = match self.variant {
            KernelVariant::Baseline => CODE_REGION_CONV_BASELINE,
            KernelVariant::SpikeStream => CODE_REGION_CONV_SPIKESTREAM,
        };

        for oh in 0..out_shape.h {
            for ow in 0..out_shape.w {
                let core = scheduler.claim(cluster);
                cluster.fetch_code(core, region_id, region_bytes);
                cluster.fetch_code(core, CODE_REGION_ACTIVATION.0, CODE_REGION_ACTIVATION.1);

                // Active input channels at every filter position of this RF.
                let rf_active: Vec<&[u16]> = (0..spec.kh * spec.kw)
                    .map(|k| {
                        let (kh, kw) = (k / spec.kw, k % spec.kw);
                        input.active_at(oh * spec.stride + kh, ow * spec.stride + kw)
                    })
                    .collect();

                for g in 0..groups {
                    self.run_group(
                        cluster,
                        core,
                        layer,
                        spec,
                        input,
                        &rf_active,
                        oh,
                        ow,
                        g,
                        lanes,
                        GroupAddresses {
                            weights_base: &weight_group_base,
                            idcs_base,
                            sptr_base,
                            state_base,
                        },
                        &mut currents,
                        &mut spikes,
                        state,
                    );
                }
            }
        }

        // Every core joins its outstanding FP work at the end of the layer.
        for core in 0..cluster.worker_cores() {
            cluster.core_mut(core).exec(&TraceOp::Barrier);
        }

        let output = if spec.pool { max_pool_2x2(&spikes) } else { spikes.clone() };
        let compressed = CompressedIfmap::from_spike_map(&output);
        ConvKernelOutput { currents, spikes, output, compressed }
    }

    /// Process one SIMD output-channel group of one receptive field.
    #[allow(clippy::too_many_arguments)]
    fn run_group(
        &self,
        cluster: &mut ClusterModel,
        core: usize,
        layer: &Layer,
        spec: &ConvSpec,
        input: &CompressedIfmap,
        rf_active: &[&[u16]],
        oh: usize,
        ow: usize,
        g: usize,
        lanes: usize,
        addrs: GroupAddresses<'_>,
        currents: &mut Tensor3,
        spikes: &mut SpikeMap,
        state: &mut LifState,
    ) -> usize {
        let out_shape = spec.conv_output();
        let core_model = cluster.core_mut(core);

        // Load the membrane potentials of the group into an FP register and
        // compute the group's weight base address.
        core_model.exec(&TraceOp::Fp {
            op: FpOp::Load,
            format: self.format,
            ssr_srcs: vec![],
            addr: Some(addrs.state_base),
        });
        core_model.exec(&TraceOp::alu());
        core_model.exec(&TraceOp::alu());

        for (k, &active) in rf_active.iter().enumerate() {
            let (kh, kw) = (k / spec.kw, k % spec.kw);
            let s_len = active.len();

            // Outer-loop control of Listing 1a: row-pointer bookkeeping,
            // spatial-coordinate computation and the two `s_ptr` loads that
            // give the stream base address and length.
            let coo = (oh * spec.stride + kh) * input.shape().w + (ow * spec.stride + kw);
            let sptr_addr = addrs.sptr_base + (coo as u32) * INDEX_BYTES as u32;
            core_model.exec(&TraceOp::branch());
            core_model.exec(&TraceOp::alu());
            core_model.exec(&TraceOp::alu());
            core_model.exec(&TraceOp::load(sptr_addr));
            core_model.exec(&TraceOp::load(sptr_addr + INDEX_BYTES as u32));
            core_model.exec(&TraceOp::alu());

            // Functional accumulation: every active input channel adds its
            // SIMD group of weights to the group's currents.
            for &ci in active {
                for lane in 0..lanes {
                    let co = g * lanes + lane;
                    if co >= spec.out_channels {
                        break;
                    }
                    let w = self
                        .format
                        .quantize(layer.weights[spec.weight_index(kh, kw, ci as usize, co)]);
                    let v = currents.get(oh, ow, co) + w;
                    currents.set(oh, ow, co, v);
                }
            }

            // Timing of the SpVA itself.
            if s_len == 0 {
                continue;
            }
            match self.variant {
                KernelVariant::Baseline => {
                    let block = [
                        TraceOp::load(addrs.idcs_base),
                        TraceOp::alu(),
                        TraceOp::alu(),
                        TraceOp::Fp {
                            op: FpOp::Load,
                            format: self.format,
                            ssr_srcs: vec![],
                            addr: None,
                        },
                        TraceOp::alu(),
                        TraceOp::alu(),
                        TraceOp::fp(FpOp::Add, self.format),
                        TraceOp::branch(),
                    ];
                    core_model.exec_repeated(&block, s_len as u64);
                }
                KernelVariant::SpikeStream => {
                    let index_base = addrs.idcs_base + input.s_ptr()[coo] * INDEX_BYTES as u32;
                    core_model.exec(&TraceOp::SsrConfig {
                        ssr: SsrId::Ssr0,
                        pattern: StreamPattern::Indirect {
                            index_base,
                            index_bytes: INDEX_BYTES as u32,
                            data_base: (addrs.weights_base)(kh, kw, g),
                            elem_bytes: (lanes as u32) * self.format.bytes(),
                            indices: active.iter().map(|&c| c as u32).collect(),
                        },
                        shadow: true,
                    });
                    core_model.exec(&TraceOp::Frep {
                        reps: s_len as u32,
                        body: vec![TraceOp::fp_streamed(FpOp::Add, self.format, SsrId::Ssr0)],
                    });
                }
            }
        }

        // Fused LIF activation of the group (Section III-B/III-C): decay and
        // integrate on the FPU, then threshold and unpack the SIMD lanes
        // with bit masking and branches; spiking lanes atomically update the
        // compressed ofmap buffers.
        let core_model = cluster.core_mut(core);
        core_model.exec(&TraceOp::fp(FpOp::Fma, self.format)); // v*alpha + i
        core_model.exec(&TraceOp::fp(FpOp::Cmp, self.format)); // >= v_th
        core_model.exec(&TraceOp::Int { op: IntOp::Move, addr: None });
        let mut group_spikes = 0usize;
        for lane in 0..lanes {
            let co = g * lanes + lane;
            if co >= spec.out_channels {
                break;
            }
            core_model.exec(&TraceOp::alu()); // mask extraction
            core_model.exec(&TraceOp::branch());
            let neuron = out_shape.index(oh, ow, co);
            let current = self.format.quantize(currents.get(oh, ow, co));
            let fired = state.step_single(&layer.lif, neuron, current);
            if fired {
                spikes.set(oh, ow, co, true);
                group_spikes += 1;
                core_model.exec(&TraceOp::store(addrs.idcs_base));
                core_model.exec(&TraceOp::Int { op: IntOp::Amo, addr: Some(addrs.sptr_base) });
            }
        }
        // Write the updated membrane potentials back.
        core_model.exec(&TraceOp::Fp {
            op: FpOp::Store,
            format: self.format,
            ssr_srcs: vec![],
            addr: Some(addrs.state_base),
        });
        group_spikes
    }
}

/// Scratchpad base addresses used while processing one group.
struct GroupAddresses<'a> {
    weights_base: &'a dyn Fn(usize, usize, usize) -> u32,
    idcs_base: u32,
    sptr_base: u32,
    state_base: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::{Layer, ReferenceEngine};

    fn test_layer(in_c: usize, out_c: usize, hw: usize, pool: bool) -> (Layer, ConvSpec) {
        let spec = ConvSpec {
            input: TensorShape::new(hw, hw, in_c),
            out_channels: out_c,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool,
        };
        let mut layer = Layer::new("test", LayerKind::Conv(spec), LifParams::new(0.5, 0.2));
        let mut rng = StdRng::seed_from_u64(11);
        layer.randomize_weights(&mut rng, 0.1);
        (layer, spec)
    }

    fn random_input(spec: &ConvSpec, rate: f64, seed: u64) -> CompressedIfmap {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = spec.padded_input();
        let mut map = SpikeMap::silent(shape);
        for h in 1..shape.h - 1 {
            for w in 1..shape.w - 1 {
                for c in 0..shape.c {
                    if rand::Rng::gen_bool(&mut rng, rate) {
                        map.set(h, w, c, true);
                    }
                }
            }
        }
        CompressedIfmap::from_spike_map(&map)
    }

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn fp32_kernel_matches_reference_currents_and_spikes() {
        let (layer, spec) = test_layer(8, 8, 6, false);
        let input = random_input(&spec, 0.3, 3);
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let mut cluster = cluster();
            let mut state = LifState::new(spec.conv_output().len());
            let kernel = ConvKernel::new(variant, FpFormat::Fp32);
            let out = kernel.run(&mut cluster, &layer, &input, &mut state);

            let eng = ReferenceEngine::new();
            let mut ref_state = LifState::new(spec.conv_output().len());
            let ref_currents = eng.conv_currents(&layer, &spec, &input.decompress());
            let ref_spikes = eng.activate_conv(&layer, &spec, &ref_currents, &mut ref_state);

            for (a, b) in out.currents.data().iter().zip(ref_currents.data()) {
                assert!((a - b).abs() < 1e-4, "{variant} current mismatch: {a} vs {b}");
            }
            assert_eq!(out.spikes, ref_spikes, "{variant} spike mismatch");
        }
    }

    #[test]
    fn both_variants_are_functionally_identical() {
        let (layer, spec) = test_layer(16, 8, 6, true);
        let input = random_input(&spec, 0.25, 5);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = LifState::new(spec.conv_output().len());
        let mut s2 = LifState::new(spec.conv_output().len());
        let base = ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &input, &mut s1);
        let fast = ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &input, &mut s2);
        assert_eq!(base.spikes, fast.spikes);
        assert_eq!(base.output, fast.output);
        assert_eq!(base.compressed, fast.compressed);
        assert_eq!(s1.membrane(), s2.membrane());
    }

    #[test]
    fn spikestream_is_faster_and_better_utilized_than_baseline() {
        let (layer, spec) = test_layer(64, 32, 8, false);
        let input = random_input(&spec, 0.3, 7);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = LifState::new(spec.conv_output().len());
        let mut s2 = LifState::new(spec.conv_output().len());
        ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &input, &mut s1);
        ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &input, &mut s2);
        let base = c1.finish_phase("baseline");
        let fast = c2.finish_phase("spikestream");
        let speedup = base.cycles as f64 / fast.cycles as f64;
        assert!(speedup > 2.5, "expected a clear streaming speedup, got {speedup:.2}x");
        assert!(
            fast.fpu_utilization > 2.0 * base.fpu_utilization,
            "utilization should rise markedly: {:.3} -> {:.3}",
            base.fpu_utilization,
            fast.fpu_utilization
        );
        assert!(base.fpu_utilization < 0.2, "baseline stays integer-bound");
    }

    #[test]
    fn fp8_is_faster_than_fp16_for_spikestream() {
        let (layer, spec) = test_layer(32, 32, 8, false);
        let input = random_input(&spec, 0.3, 9);
        let mut c16 = cluster();
        let mut c8 = cluster();
        let mut s16 = LifState::new(spec.conv_output().len());
        let mut s8 = LifState::new(spec.conv_output().len());
        ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c16, &layer, &input, &mut s16);
        ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp8)
            .run(&mut c8, &layer, &input, &mut s8);
        let t16 = c16.finish_phase("fp16").cycles as f64;
        let t8 = c8.finish_phase("fp8").cycles as f64;
        let speedup = t16 / t8;
        assert!(
            speedup > 1.3 && speedup < 2.2,
            "FP8 halves the SIMD groups but pays extra unpacking, got {speedup:.2}x"
        );
    }

    #[test]
    fn empty_input_produces_no_spikes_but_still_runs() {
        let (layer, spec) = test_layer(8, 8, 4, false);
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let mut cl = cluster();
        let mut state = LifState::new(spec.conv_output().len());
        let out = ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut cl, &layer, &input, &mut state);
        assert_eq!(out.spikes.count_spikes(), 0);
        assert!(out.currents.data().iter().all(|&v| v == 0.0));
        let stats = cl.finish_phase("empty");
        assert!(stats.cycles > 0, "control overhead and DMA still cost cycles");
    }

    #[test]
    fn pooling_shrinks_the_compressed_output() {
        let (layer, spec) = test_layer(8, 8, 6, true);
        let input = random_input(&spec, 0.4, 13);
        let mut cl = cluster();
        let mut state = LifState::new(spec.conv_output().len());
        let out = ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut cl, &layer, &input, &mut state);
        assert_eq!(out.output.shape(), TensorShape::new(3, 3, 8));
        assert_eq!(out.compressed.shape(), out.output.shape());
    }

    #[test]
    #[should_panic(expected = "must be padded")]
    fn unpadded_input_is_rejected() {
        let (layer, spec) = test_layer(4, 4, 4, false);
        let wrong = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.input));
        let mut cl = cluster();
        let mut state = LifState::new(spec.conv_output().len());
        ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut cl, &layer, &wrong, &mut state);
    }
}
