//! Compressed spiking convolution kernels (baseline and SpikeStream).
//!
//! Both variants implement the dataflow of Fig. 2b of the paper: receptive
//! fields (output spatial positions) are distributed over the worker cores
//! by workload stealing; within a receptive field, each SIMD group of
//! output channels accumulates, for every filter position, the weights
//! selected by the active input channels of the compressed ifmap (one
//! Sparse Vector Accumulation, SpVA, per filter position); the LIF
//! activation is fused at the end of each group and the output spikes are
//! written back in compressed form.
//!
//! The two variants differ only in how the SpVA is executed:
//!
//! * **Baseline** — the scalar indirection loop of Listing 1b: per element,
//!   seven integer instructions surround a single useful `fadd`.
//! * **SpikeStream** — Listing 1c: an indirect stream register gathers the
//!   weights while an FREP hardware loop keeps the FPU accumulating, so
//!   the integer core merely sets up the next stream.
//!
//! The kernel is an *emitter*: [`ConvKernel::lower`] turns one layer
//! invocation into a [`StreamProgram`] (computing the functional results
//! along the way) and [`ConvKernel::lower_symbolic`] emits the same
//! structure from expected firing rates for the analytic backend.
//! [`ConvKernel::run`] is lower-then-interpret on the cluster model.

use snitch_arch::fp::FpFormat;
use snitch_arch::ClusterConfig;
use snitch_sim::{execute_program, ClusterModel};
use spikestream_ir::{
    CodeRegion, ComputePhase, IndexStream, KernelOp, Phase, StreamProgram, WorkItem,
};
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::reference::max_pool_2x2;
use spikestream_snn::{
    CompressedIfmap, ConvSpec, Layer, LayerKind, NeuronModel, NeuronState, SpikeMap, Tensor3,
};

use crate::emit;
use crate::tiling::TilingPlanner;
use crate::KernelVariant;

/// Approximate code footprints (bytes) of the kernel regions, used by the
/// instruction-cache model.
const CODE_REGION_CONV_BASELINE: CodeRegion = CodeRegion { id: 0x10, bytes: 1280 };
const CODE_REGION_CONV_SPIKESTREAM: CodeRegion = CodeRegion { id: 0x11, bytes: 1792 };
pub(crate) const CODE_REGION_ACTIVATION: CodeRegion = CodeRegion { id: 0x12, bytes: 640 };

/// Widest SIMD group any format produces (FP8 lanes on the 64-bit
/// datapath); bounds the stack-allocated lane accumulators of the emitters.
pub(crate) const MAX_SIMD_LANES: usize = (snitch_arch::fp::FPU_DATAPATH_BITS / 8) as usize;

/// Functional and structural result of one convolutional layer invocation.
#[derive(Debug, Clone)]
pub struct ConvKernelOutput {
    /// Accumulated input currents of every output neuron (quantized to the
    /// kernel's storage format).
    pub currents: Tensor3,
    /// Output spikes before pooling.
    pub spikes: SpikeMap,
    /// Output spikes after the optional 2x2 pooling stage.
    pub output: SpikeMap,
    /// Compressed form of [`Self::output`], ready for the next layer.
    pub compressed: CompressedIfmap,
}

/// A spiking convolution kernel bound to a code variant and storage format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvKernel {
    variant: KernelVariant,
    format: FpFormat,
}

/// Scratchpad base addresses of one conv lowering.
struct ConvAddresses {
    idcs_base: u32,
    sptr_base: u32,
    state_base: u32,
    /// Base of the recovery-variable tile (upper half of the neuron-state
    /// buffer; only dereferenced by two-variable models).
    u_base: u32,
    weights_base: u32,
    group_words: u32,
    word_bytes: u32,
    spm_bytes: u32,
}

impl ConvAddresses {
    /// Byte address of the SIMD weight group for `(kh, kw, g)`: the grouped
    /// weight layout stores, per filter position and group, the `in_c`
    /// gatherable SIMD words contiguously.
    fn weight_group_base(
        &self,
        spec: &ConvSpec,
        groups: usize,
        kh: usize,
        kw: usize,
        g: usize,
    ) -> u32 {
        let offset =
            (((kh * spec.kw + kw) * groups + g) as u32) * self.group_words * self.word_bytes;
        self.weights_base.wrapping_add(offset % self.spm_bytes)
    }
}

impl ConvKernel {
    /// Create a kernel for the given variant and floating-point format.
    pub fn new(variant: KernelVariant, format: FpFormat) -> Self {
        ConvKernel { variant, format }
    }

    /// The code variant this kernel emits.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The storage format of weights and activations.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// The instruction-cache regions this kernel's programs fetch.
    fn code_regions(&self) -> Vec<CodeRegion> {
        let region = match self.variant {
            KernelVariant::Baseline => CODE_REGION_CONV_BASELINE,
            KernelVariant::SpikeStream => CODE_REGION_CONV_SPIKESTREAM,
        };
        vec![region, CODE_REGION_ACTIVATION]
    }

    /// Run one convolutional layer on the cluster: lower it to a stream
    /// program and interpret that program on the timing model.
    ///
    /// `input` must be the compressed, padded ifmap of the layer and
    /// `state` the dense membrane state of its output neurons. The call
    /// advances the per-core timing models of `cluster`; obtain the layer's
    /// statistics with [`ClusterModel::finish_phase`] afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not convolutional, if the input shape does not
    /// match the padded layer input, or if the neuron state has the wrong
    /// size.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: &CompressedIfmap,
        state: &mut NeuronState,
    ) -> ConvKernelOutput {
        let (program, output) = self.lower(cluster.config(), layer, input, state);
        execute_program(cluster, &program);
        output
    }

    /// Lower one layer invocation into its exact stream program, computing
    /// the functional results (currents, spikes, compressed output) along
    /// the way.
    ///
    /// # Panics
    ///
    /// Same contract as [`ConvKernel::run`].
    pub fn lower(
        &self,
        config: &ClusterConfig,
        layer: &Layer,
        input: &CompressedIfmap,
        state: &mut NeuronState,
    ) -> (StreamProgram, ConvKernelOutput) {
        let LayerKind::Conv(spec) = &layer.kind else {
            panic!("ConvKernel requires a convolutional layer");
        };
        assert_eq!(input.shape(), spec.padded_input(), "input must be padded");
        let out_shape = spec.conv_output();
        assert_eq!(state.len(), out_shape.len(), "neuron state size mismatch");

        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_channels.div_ceil(lanes);

        let plan = TilingPlanner::new(config).plan_conv(
            spec,
            self.format,
            input,
            layer.neuron.state_vars(),
        );
        let addrs = ConvAddresses {
            idcs_base: plan.ifmap_idcs.base,
            sptr_base: plan.ifmap_sptr.base,
            state_base: plan.neuron_state.base,
            u_base: plan.neuron_state.base + (out_shape.len() * 4) as u32,
            weights_base: plan.weights.base,
            group_words: spec.input.c as u32,
            word_bytes: lanes as u32 * self.format.bytes(),
            spm_bytes: config.spm_bytes.max(1),
        };

        let mut program = StreamProgram::new(&layer.name, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }

        let mut currents = Tensor3::zeros(out_shape);
        let mut spikes = SpikeMap::silent(out_shape);
        let mut items = Vec::with_capacity(out_shape.h * out_shape.w);
        // Weights are static across the layer: round them to the storage
        // format once instead of per (spike, lane) inside the RF loop.
        let qweights: Vec<f32> = layer.weights.iter().map(|&w| self.format.quantize(w)).collect();
        let mut rf_active: Vec<&[u16]> = Vec::with_capacity(spec.kh * spec.kw);
        let mut rf_indices: Vec<IndexStream> = Vec::with_capacity(spec.kh * spec.kw);

        for oh in 0..out_shape.h {
            for ow in 0..out_shape.w {
                let mut ops = emit::claim();

                // Active input channels at every filter position of this RF,
                // plus one shared gather-index list per position (every SIMD
                // group streams through the same indices, so the program
                // holds each list once).
                rf_active.clear();
                rf_active.extend((0..spec.kh * spec.kw).map(|k| {
                    let (kh, kw) = (k / spec.kw, k % spec.kw);
                    input.active_at(oh * spec.stride + kh, ow * spec.stride + kw)
                }));
                rf_indices.clear();
                rf_indices.extend(
                    rf_active
                        .iter()
                        .map(|active| IndexStream::exact(active.iter().map(|&c| c as u32))),
                );

                for g in 0..groups {
                    self.lower_group(
                        &mut ops,
                        layer,
                        spec,
                        input,
                        &qweights,
                        &rf_active,
                        &rf_indices,
                        (oh, ow, g),
                        lanes,
                        groups,
                        &addrs,
                        &mut currents,
                        &mut spikes,
                        state,
                    );
                }
                items.push(WorkItem::new(ops));
            }
        }
        program.push(Phase::Compute(ComputePhase { code: self.code_regions(), items }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }

        let output = if spec.pool { max_pool_2x2(&spikes) } else { spikes.clone() };
        let compressed = CompressedIfmap::from_spike_map(&output);
        (program, ConvKernelOutput { currents, spikes, output, compressed })
    }

    /// Expected stream length of one SpVA under `input_rate`: the active
    /// input channels of one filter position. This is the continuous
    /// scalar the plan cache re-binds across sparsity buckets, so it must
    /// be computed by exactly one expression.
    pub fn expected_stream_len(spec: &ConvSpec, input_rate: f64) -> f64 {
        spec.input.c as f64 * input_rate.clamp(0.0, 1.0)
    }

    /// Expected compressed-ifmap spike count under `input_rate` — the
    /// discretized quantity the tiling planner sizes buffers and DMA
    /// traffic from. The padded border is silent, so the expectation
    /// covers the interior.
    pub fn expected_ifmap_spikes(spec: &ConvSpec, input_rate: f64) -> usize {
        let padded = spec.padded_input();
        let interior = if padded.h > 2 * spec.padding {
            (padded.h - 2 * spec.padding) * (padded.w - 2 * spec.padding) * padded.c
        } else {
            padded.len()
        };
        (interior as f64 * input_rate.clamp(0.0, 1.0)).round() as usize
    }

    /// Lower one layer symbolically from expected firing rates: the same
    /// emitter structure with a single representative receptive field
    /// replicated over all output positions, expected-length streams and
    /// expected firing counts. The analytic backend integrates the result.
    /// `model` selects the activation head and the width of the
    /// neuron-state tile, exactly as `layer.neuron` does in the exact path.
    pub fn lower_symbolic(
        &self,
        config: &ClusterConfig,
        label: &str,
        spec: &ConvSpec,
        model: &NeuronModel,
        input_rate: f64,
        output_rate: f64,
    ) -> StreamProgram {
        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_channels.div_ceil(lanes);
        let out = spec.conv_output();
        let kk = spec.kh * spec.kw;
        let output_rate = output_rate.clamp(0.0, 1.0);
        let s_len = Self::expected_stream_len(spec, input_rate);
        let expected_spikes = Self::expected_ifmap_spikes(spec, input_rate);

        let plan = TilingPlanner::new(config).plan_conv_spikes(
            spec,
            self.format,
            expected_spikes,
            model.state_vars(),
        );
        let addrs = ConvAddresses {
            idcs_base: plan.ifmap_idcs.base,
            sptr_base: plan.ifmap_sptr.base,
            state_base: plan.neuron_state.base,
            u_base: plan.neuron_state.base + (out.len() * 4) as u32,
            weights_base: plan.weights.base,
            group_words: spec.input.c as u32,
            word_bytes: lanes as u32 * self.format.bytes(),
            spm_bytes: config.spm_bytes.max(1),
        };

        let mut program = StreamProgram::new(label, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }

        // One representative filter position...
        let mut position = Vec::new();
        emit::position_control(&mut position, addrs.sptr_base);
        if s_len > 0.0 {
            position.push(match self.variant {
                KernelVariant::Baseline => emit::baseline_spva(addrs.idcs_base, s_len),
                KernelVariant::SpikeStream => emit::streamed_spva(
                    addrs.idcs_base,
                    addrs.weight_group_base(spec, groups, 0, 0, 0),
                    addrs.word_bytes,
                    IndexStream::Expected(s_len),
                ),
            });
        }

        // ... inside one representative SIMD group ...
        let mut group = Vec::new();
        emit::model_group_prologue(&mut group, model, addrs.state_base, addrs.u_base);
        group.push(KernelOp::Loop { body: position, reps: kk as f64 });
        emit::model_activation_head(&mut group, model);
        emit::activation_tail_symbolic(
            &mut group,
            lanes as f64,
            lanes as f64 * output_rate,
            addrs.idcs_base,
            addrs.sptr_base,
        );
        emit::model_state_writeback(&mut group, model, addrs.state_base, addrs.u_base);

        // ... inside one representative receptive field, replicated over
        // every output position.
        let mut ops = emit::claim();
        ops.push(KernelOp::Loop { body: group, reps: groups as f64 });
        program.push(Phase::Compute(ComputePhase {
            code: self.code_regions(),
            items: vec![WorkItem::replicated((out.h * out.w) as f64, ops)],
        }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }
        program
    }

    /// Emit one SIMD output-channel group of one receptive field, updating
    /// the functional state.
    #[allow(clippy::too_many_arguments)]
    #[allow(clippy::too_many_arguments)]
    fn lower_group(
        &self,
        ops: &mut Vec<KernelOp>,
        layer: &Layer,
        spec: &ConvSpec,
        input: &CompressedIfmap,
        qweights: &[f32],
        rf_active: &[&[u16]],
        rf_indices: &[IndexStream],
        rf: (usize, usize, usize),
        lanes: usize,
        groups: usize,
        addrs: &ConvAddresses,
        currents: &mut Tensor3,
        spikes: &mut SpikeMap,
        state: &mut NeuronState,
    ) {
        let (oh, ow, g) = rf;
        let out_shape = spec.conv_output();
        let lane_base = g * lanes;
        let lane_n = lanes.min(spec.out_channels - lane_base);
        let mut acc = [0.0f32; MAX_SIMD_LANES];
        emit::model_group_prologue(ops, &layer.neuron, addrs.state_base, addrs.u_base);

        for (k, &active) in rf_active.iter().enumerate() {
            let (kh, kw) = (k / spec.kw, k % spec.kw);
            let s_len = active.len();

            let coo = (oh * spec.stride + kh) * input.shape().w + (ow * spec.stride + kw);
            let sptr_addr = addrs.sptr_base + (coo as u32) * INDEX_BYTES as u32;
            emit::position_control(ops, sptr_addr);

            // Functional accumulation: every active input channel adds its
            // SIMD group of (channel-contiguous, pre-quantized) weights to
            // the group's lane accumulators — same per-lane addition order
            // as the former scalar current updates.
            for &ci in active {
                let row = spec.weight_index(kh, kw, ci as usize, lane_base);
                for (a, &w) in acc[..lane_n].iter_mut().zip(&qweights[row..row + lane_n]) {
                    *a += w;
                }
            }

            // Timing of the SpVA itself.
            if s_len == 0 {
                continue;
            }
            ops.push(match self.variant {
                KernelVariant::Baseline => emit::baseline_spva(addrs.idcs_base, s_len as f64),
                KernelVariant::SpikeStream => emit::streamed_spva(
                    addrs.idcs_base + input.s_ptr()[coo] * INDEX_BYTES as u32,
                    addrs.weight_group_base(spec, groups, kh, kw, g),
                    addrs.word_bytes,
                    rf_indices[k].clone(),
                ),
            });
        }

        for (lane, &v) in acc[..lane_n].iter().enumerate() {
            currents.set(oh, ow, lane_base + lane, v);
        }

        // Fused activation of the group (Section III-B/III-C): the model's
        // state update runs on the FPU, then threshold and unpack the SIMD
        // lanes with bit masking and branches; spiking lanes atomically
        // update the compressed ofmap buffers.
        emit::model_activation_head(ops, &layer.neuron);
        for lane in 0..lanes {
            let co = g * lanes + lane;
            if co >= spec.out_channels {
                break;
            }
            emit::lane_unpack(ops);
            let neuron = out_shape.index(oh, ow, co);
            let current = self.format.quantize(currents.get(oh, ow, co));
            if state.step_single(&layer.neuron, neuron, current) {
                spikes.set(oh, ow, co, true);
                emit::fired_update(ops, addrs.idcs_base, addrs.sptr_base);
            }
        }
        emit::model_state_writeback(ops, &layer.neuron, addrs.state_base, addrs.u_base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_ir::CostIntegrator;
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::{Layer, ReferenceEngine};

    fn test_layer(in_c: usize, out_c: usize, hw: usize, pool: bool) -> (Layer, ConvSpec) {
        let spec = ConvSpec {
            input: TensorShape::new(hw, hw, in_c),
            out_channels: out_c,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool,
        };
        let mut layer = Layer::new("test", LayerKind::Conv(spec), LifParams::new(0.5, 0.2));
        let mut rng = StdRng::seed_from_u64(11);
        layer.randomize_weights(&mut rng, 0.1);
        (layer, spec)
    }

    fn random_input(spec: &ConvSpec, rate: f64, seed: u64) -> CompressedIfmap {
        let mut rng = StdRng::seed_from_u64(seed);
        let shape = spec.padded_input();
        let mut map = SpikeMap::silent(shape);
        for h in 1..shape.h - 1 {
            for w in 1..shape.w - 1 {
                for c in 0..shape.c {
                    if rand::Rng::gen_bool(&mut rng, rate) {
                        map.set(h, w, c, true);
                    }
                }
            }
        }
        CompressedIfmap::from_spike_map(&map)
    }

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn fp32_kernel_matches_reference_currents_and_spikes() {
        let (layer, spec) = test_layer(8, 8, 6, false);
        let input = random_input(&spec, 0.3, 3);
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let mut cluster = cluster();
            let mut state = NeuronState::lif(spec.conv_output().len());
            let kernel = ConvKernel::new(variant, FpFormat::Fp32);
            let out = kernel.run(&mut cluster, &layer, &input, &mut state);

            let eng = ReferenceEngine::new();
            let mut ref_state = NeuronState::lif(spec.conv_output().len());
            let ref_currents = eng.conv_currents(&layer, &spec, &input.decompress());
            let ref_spikes = eng.activate_conv(&layer, &spec, &ref_currents, &mut ref_state);

            for (a, b) in out.currents.data().iter().zip(ref_currents.data()) {
                assert!((a - b).abs() < 1e-4, "{variant} current mismatch: {a} vs {b}");
            }
            assert_eq!(out.spikes, ref_spikes, "{variant} spike mismatch");
        }
    }

    #[test]
    fn both_variants_are_functionally_identical() {
        let (layer, spec) = test_layer(16, 8, 6, true);
        let input = random_input(&spec, 0.25, 5);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = NeuronState::lif(spec.conv_output().len());
        let mut s2 = NeuronState::lif(spec.conv_output().len());
        let base = ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &input, &mut s1);
        let fast = ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &input, &mut s2);
        assert_eq!(base.spikes, fast.spikes);
        assert_eq!(base.output, fast.output);
        assert_eq!(base.compressed, fast.compressed);
        assert_eq!(s1.membrane(), s2.membrane());
    }

    #[test]
    fn spikestream_is_faster_and_better_utilized_than_baseline() {
        let (layer, spec) = test_layer(64, 32, 8, false);
        let input = random_input(&spec, 0.3, 7);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = NeuronState::lif(spec.conv_output().len());
        let mut s2 = NeuronState::lif(spec.conv_output().len());
        ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &input, &mut s1);
        ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &input, &mut s2);
        let base = c1.finish_phase("baseline");
        let fast = c2.finish_phase("spikestream");
        let speedup = base.cycles as f64 / fast.cycles as f64;
        assert!(speedup > 2.5, "expected a clear streaming speedup, got {speedup:.2}x");
        assert!(
            fast.fpu_utilization > 2.0 * base.fpu_utilization,
            "utilization should rise markedly: {:.3} -> {:.3}",
            base.fpu_utilization,
            fast.fpu_utilization
        );
        assert!(base.fpu_utilization < 0.2, "baseline stays integer-bound");
    }

    #[test]
    fn fp8_is_faster_than_fp16_for_spikestream() {
        let (layer, spec) = test_layer(32, 32, 8, false);
        let input = random_input(&spec, 0.3, 9);
        let mut c16 = cluster();
        let mut c8 = cluster();
        let mut s16 = NeuronState::lif(spec.conv_output().len());
        let mut s8 = NeuronState::lif(spec.conv_output().len());
        ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c16, &layer, &input, &mut s16);
        ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp8)
            .run(&mut c8, &layer, &input, &mut s8);
        let t16 = c16.finish_phase("fp16").cycles as f64;
        let t8 = c8.finish_phase("fp8").cycles as f64;
        let speedup = t16 / t8;
        assert!(
            speedup > 1.3 && speedup < 2.2,
            "FP8 halves the SIMD groups but pays extra unpacking, got {speedup:.2}x"
        );
    }

    #[test]
    fn empty_input_produces_no_spikes_but_still_runs() {
        let (layer, spec) = test_layer(8, 8, 4, false);
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.conv_output().len());
        let out = ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut cl, &layer, &input, &mut state);
        assert_eq!(out.spikes.count_spikes(), 0);
        assert!(out.currents.data().iter().all(|&v| v == 0.0));
        let stats = cl.finish_phase("empty");
        assert!(stats.cycles > 0, "control overhead and DMA still cost cycles");
    }

    #[test]
    fn pooling_shrinks_the_compressed_output() {
        let (layer, spec) = test_layer(8, 8, 6, true);
        let input = random_input(&spec, 0.4, 13);
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.conv_output().len());
        let out = ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut cl, &layer, &input, &mut state);
        assert_eq!(out.output.shape(), TensorShape::new(3, 3, 8));
        assert_eq!(out.compressed.shape(), out.output.shape());
    }

    #[test]
    #[should_panic(expected = "must be padded")]
    fn unpadded_input_is_rejected() {
        let (layer, spec) = test_layer(4, 4, 4, false);
        let wrong = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.input));
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.conv_output().len());
        ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut cl, &layer, &wrong, &mut state);
    }

    #[test]
    fn symbolic_lowering_tracks_the_exact_program() {
        // The symbolic program's integrated cost must sit close to the
        // interpreted exact program when the expected rate matches the
        // realized input.
        let (layer, spec) = test_layer(32, 32, 8, false);
        let input = random_input(&spec, 0.3, 21);
        let realized_rate = {
            let interior = (spec.input.h * spec.input.w * spec.input.c) as f64;
            input.spike_count() as f64 / interior
        };
        let config = ClusterConfig::default();
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let kernel = ConvKernel::new(variant, FpFormat::Fp16);
            let mut state = NeuronState::lif(spec.conv_output().len());
            let (program, out) = kernel.lower(&config, &layer, &input, &mut state);
            let mut cl = cluster();
            execute_program(&mut cl, &program);
            let stats = cl.finish_phase("exact");

            let out_rate = out.spikes.count_spikes() as f64 / spec.conv_output().len() as f64;
            let symbolic = kernel.lower_symbolic(
                &config,
                "sym",
                &spec,
                &layer.neuron,
                realized_rate,
                out_rate,
            );
            let cost =
                CostIntegrator::new(config.clone(), CostModel::default()).integrate(&symbolic);

            let rel = (stats.compute_cycles as f64 - cost.compute_cycles as f64).abs()
                / stats.compute_cycles as f64;
            assert!(
                rel < 0.25,
                "{variant}: symbolic {} vs exact {} ({:.1}% off)",
                cost.compute_cycles,
                stats.compute_cycles,
                100.0 * rel
            );
        }
    }
}
