//! Workload-stealing receptive-field scheduler.
//!
//! The compressed ifmap representation makes the work per receptive field
//! (RF) data dependent: positions with many spikes take longer. The paper
//! balances this with a workload-stealing scheme in which each core, after
//! finishing its RF, atomically bumps a shared `next_rf` counter and moves
//! on to the next unprocessed RF (Fig. 2b).
//!
//! In the trace-driven model this is equivalent to always handing the next
//! RF to the core whose integer pipeline is the least advanced in time, and
//! charging that core the atomic fetch-and-add.

use snitch_arch::isa::IntOp;
use snitch_arch::TraceOp;
use snitch_sim::ClusterModel;

/// Scheduler state for one kernel phase.
#[derive(Debug, Clone)]
pub struct WorkStealingScheduler {
    items_issued: usize,
    per_core_items: Vec<usize>,
}

impl WorkStealingScheduler {
    /// Create a scheduler for a cluster with `cores` worker cores.
    pub fn new(cores: usize) -> Self {
        WorkStealingScheduler { items_issued: 0, per_core_items: vec![0; cores] }
    }

    /// Claim the next work item: returns the core that steals it and charges
    /// the atomic `next_rf` bump to that core.
    pub fn claim(&mut self, cluster: &mut ClusterModel) -> usize {
        let core = (0..cluster.worker_cores())
            .min_by_key(|&i| {
                cluster.cores()[i].counters().total_cycles().max(cluster.cores()[i].int_time())
            })
            .expect("cluster has at least one core");
        // Atomic tag of the RF plus the bookkeeping branch of the stealing loop.
        cluster.core_mut(core).exec(&TraceOp::Int { op: IntOp::Amo, addr: Some(0) });
        cluster.core_mut(core).exec(&TraceOp::branch());
        self.items_issued += 1;
        self.per_core_items[core] += 1;
        core
    }

    /// Total number of items claimed so far.
    pub fn items_issued(&self) -> usize {
        self.items_issued
    }

    /// Number of items each core claimed.
    pub fn per_core_items(&self) -> &[usize] {
        &self.per_core_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snitch_arch::{ClusterConfig, CostModel};

    #[test]
    fn every_item_is_claimed_exactly_once() {
        let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
        let mut sched = WorkStealingScheduler::new(cluster.worker_cores());
        for _ in 0..100 {
            let core = sched.claim(&mut cluster);
            assert!(core < cluster.worker_cores());
        }
        assert_eq!(sched.items_issued(), 100);
        assert_eq!(sched.per_core_items().iter().sum::<usize>(), 100);
    }

    #[test]
    fn balanced_work_spreads_across_cores() {
        let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
        let mut sched = WorkStealingScheduler::new(cluster.worker_cores());
        for _ in 0..64 {
            let core = sched.claim(&mut cluster);
            // Identical work per item.
            for _ in 0..10 {
                cluster.core_mut(core).exec(&TraceOp::alu());
            }
        }
        let items = sched.per_core_items();
        assert!(items.iter().all(|&n| n == 8), "uniform work splits evenly: {items:?}");
    }

    #[test]
    fn imbalanced_work_is_stolen_by_idle_cores() {
        let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
        let mut sched = WorkStealingScheduler::new(cluster.worker_cores());
        for item in 0..64 {
            let core = sched.claim(&mut cluster);
            // Item 0 is pathologically heavy.
            let work = if item == 0 { 10_000 } else { 10 };
            for _ in 0..work {
                cluster.core_mut(core).exec(&TraceOp::alu());
            }
        }
        let items = sched.per_core_items();
        let min = items.iter().min().unwrap();
        let max = items.iter().max().unwrap();
        assert_eq!(*min, 1, "the core stuck on the heavy item claims nothing else");
        assert!(*max > 8, "other cores absorb the remaining items");
    }
}
