//! Shared emitter vocabulary.
//!
//! Every kernel lowers its layer onto the same handful of op templates —
//! the work-stealing claim, the SIMD-group prologue, the outer-loop control
//! of Listing 1a, the two SpVA bodies of Listings 1b/1c, and the fused LIF
//! activation — so the instruction structure of the paper's inner loops is
//! written down exactly once. Exact lowerings compose these templates with
//! resolved indices and per-lane firing decisions; symbolic lowerings
//! compose the *same* templates under `Loop` nodes with expected
//! (fractional) counts. This module is what replaced the duplicated
//! closed-form loop math of the old `analytic` module.

use snitch_arch::isa::FpOp;
use snitch_arch::SsrId;
use spikestream_ir::{IndexStream, KernelOp, StreamSpec};
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::NeuronModel;

/// The workload-stealing claim of one work item: the atomic `next_rf` bump
/// plus the bookkeeping branch of the stealing loop (Fig. 2b).
pub(crate) fn claim() -> Vec<KernelOp> {
    // Work items routinely reach dozens of ops; starting with real capacity
    // keeps the hot lowering loops from growing the vector step by step.
    let mut ops = Vec::with_capacity(96);
    ops.push(KernelOp::amo(0));
    ops.push(KernelOp::branch());
    ops
}

/// SIMD-group prologue: load the group's per-neuron state into FP
/// registers (one load per state variable — two-variable models pull the
/// recovery tile from `u_base`, the upper half of the state buffer) and
/// compute the group's weight base address.
pub(crate) fn model_group_prologue(
    ops: &mut Vec<KernelOp>,
    model: &NeuronModel,
    state_base: u32,
    u_base: u32,
) {
    ops.push(KernelOp::fp_at(FpOp::Load, state_base));
    if model.state_vars() > 1 {
        ops.push(KernelOp::fp_at(FpOp::Load, u_base));
    }
    ops.push(KernelOp::alu());
    ops.push(KernelOp::alu());
}

/// Outer-loop control per filter position (Listing 1a): row-pointer
/// bookkeeping, spatial-coordinate computation and the two `s_ptr` loads
/// that give the stream base address and length.
pub(crate) fn position_control(ops: &mut Vec<KernelOp>, sptr_addr: u32) {
    ops.push(KernelOp::branch());
    ops.push(KernelOp::alu());
    ops.push(KernelOp::alu());
    ops.push(KernelOp::load(sptr_addr));
    ops.push(KernelOp::load(sptr_addr + INDEX_BYTES as u32));
    ops.push(KernelOp::alu());
}

/// The scalar indirection loop of Listing 1b: per element, seven integer
/// instructions surround a single useful `fadd`.
pub(crate) fn baseline_spva(idcs_base: u32, s_len: f64) -> KernelOp {
    KernelOp::Loop {
        body: vec![
            KernelOp::load(idcs_base),
            KernelOp::alu(),
            KernelOp::alu(),
            KernelOp::fp(FpOp::Load),
            KernelOp::alu(),
            KernelOp::alu(),
            KernelOp::fp(FpOp::Add),
            KernelOp::branch(),
        ],
        reps: s_len,
    }
}

/// The streamed SpVA of Listing 1c: an indirect stream register gathers the
/// weights while an FREP hardware loop keeps the FPU accumulating.
pub(crate) fn streamed_spva(
    index_base: u32,
    data_base: u32,
    elem_bytes: u32,
    indices: IndexStream,
) -> KernelOp {
    KernelOp::Stream {
        ssrs: vec![(
            SsrId::Ssr0,
            StreamSpec::Indirect {
                index_base,
                index_bytes: INDEX_BYTES as u32,
                data_base,
                elem_bytes,
                indices,
            },
        )],
        op: FpOp::Add,
    }
}

/// The dense matmul inner loop of the spike-encoding layer, baseline
/// variant: two loads, one FMA, pointer bump and loop branch per element.
pub(crate) fn baseline_dense_dot(k_len: f64) -> KernelOp {
    KernelOp::Loop {
        body: vec![
            KernelOp::fp(FpOp::Load),
            KernelOp::fp(FpOp::Load),
            KernelOp::fp(FpOp::Fma),
            KernelOp::alu(),
            KernelOp::branch(),
        ],
        reps: k_len,
    }
}

/// The dense matmul inner loop, SpikeStream variant: two affine streams
/// (input row and weights) feed an FMA under FREP.
pub(crate) fn streamed_dense_dot(
    input_base: u32,
    weights_base: u32,
    lane_bytes: u32,
    k_len: u32,
) -> KernelOp {
    KernelOp::Stream {
        ssrs: vec![
            (
                SsrId::Ssr0,
                StreamSpec::Affine {
                    base: input_base,
                    strides: vec![4],
                    bounds: vec![k_len],
                    elem_bytes: 4,
                },
            ),
            (
                SsrId::Ssr1,
                StreamSpec::Affine {
                    base: weights_base,
                    strides: vec![lane_bytes as i64],
                    bounds: vec![k_len],
                    elem_bytes: lane_bytes,
                },
            ),
        ],
        op: FpOp::Fma,
    }
}

/// Head of the fused LIF activation (Section III-B/III-C): decay and
/// integrate on the FPU, threshold compare, then move the spike mask to the
/// integer core.
fn activation_head(ops: &mut Vec<KernelOp>) {
    ops.push(KernelOp::fp(FpOp::Fma)); // v*alpha + i
    ops.push(KernelOp::fp(FpOp::Cmp)); // >= v_th
    ops.push(KernelOp::mov());
}

/// Head of the fused Izhikevich activation: the quadratic membrane update
/// `v += 0.04v^2 + 5v + 140 - u + I`, the recovery update
/// `u += a(b*v' - u)`, the threshold compare, and the predicated spike
/// resets (`v <- c`, `u <- u' + d`) committed on the FPU before the spike
/// mask moves to the integer core. The op count is fixed per group — the
/// resets are predicated selects, not branches — so exact and symbolic
/// lowerings emit identical sequences by construction.
fn izhikevich_activation_head(ops: &mut Vec<KernelOp>) {
    ops.push(KernelOp::fp(FpOp::Fma)); // 0.04*v + 5
    ops.push(KernelOp::fp(FpOp::Fma)); // (.)*v + 140
    ops.push(KernelOp::fp(FpOp::Add)); // - u
    ops.push(KernelOp::fp(FpOp::Add)); // + I
    ops.push(KernelOp::fp(FpOp::Add)); // v' = v + dv
    ops.push(KernelOp::fp(FpOp::Fma)); // b*v' - u
    ops.push(KernelOp::fp(FpOp::Fma)); // u' = u + a*(.)
    ops.push(KernelOp::fp(FpOp::Cmp)); // v' >= v_th
    ops.push(KernelOp::fp(FpOp::Add)); // u' + d (spike-reset operand)
    ops.push(KernelOp::fp(FpOp::Move)); // select v' / c
    ops.push(KernelOp::fp(FpOp::Move)); // select u' / u'+d
    ops.push(KernelOp::mov());
}

/// Model-dispatching activation head: LIF keeps the three-op fused form,
/// Izhikevich the twelve-op two-variable form.
pub(crate) fn model_activation_head(ops: &mut Vec<KernelOp>, model: &NeuronModel) {
    match model {
        NeuronModel::Lif(_) => activation_head(ops),
        NeuronModel::Izhikevich(_) => izhikevich_activation_head(ops),
    }
}

/// State write-back closing a group's activation: one store per state
/// variable, mirroring [`model_group_prologue`].
pub(crate) fn model_state_writeback(
    ops: &mut Vec<KernelOp>,
    model: &NeuronModel,
    state_base: u32,
    u_base: u32,
) {
    ops.push(KernelOp::fp_at(FpOp::Store, state_base));
    if model.state_vars() > 1 {
        ops.push(KernelOp::fp_at(FpOp::Store, u_base));
    }
}

/// Per-lane unpacking of the spike mask: bit extraction plus branch.
pub(crate) fn lane_unpack(ops: &mut Vec<KernelOp>) {
    ops.push(KernelOp::alu());
    ops.push(KernelOp::branch());
}

/// Compressed-output update of one firing lane: append the channel index
/// and atomically bump the spatial pointer.
pub(crate) fn fired_update(ops: &mut Vec<KernelOp>, idcs_base: u32, sptr_base: u32) {
    ops.push(KernelOp::store(idcs_base));
    ops.push(KernelOp::amo(sptr_base));
}

/// Symbolic form of the per-lane activation tail: `lanes` unpack pairs plus
/// the expected number of compressed-output updates.
pub(crate) fn activation_tail_symbolic(
    ops: &mut Vec<KernelOp>,
    lanes: f64,
    fired_lanes: f64,
    idcs_base: u32,
    sptr_base: u32,
) {
    ops.push(KernelOp::Loop { body: vec![KernelOp::alu(), KernelOp::branch()], reps: lanes });
    if fired_lanes > 0.0 {
        ops.push(KernelOp::store(idcs_base).times(fired_lanes));
        ops.push(KernelOp::amo(sptr_base).times(fired_lanes));
    }
}
