//! Closed-form layer timing model.
//!
//! Cycle-level simulation of a full S-VGG11 inference over a batch of 128
//! frames is too slow for routine figure regeneration, so this module
//! provides an analytic model derived from exactly the same architectural
//! constants ([`snitch_arch::CostModel`]) and the same kernel structure as
//! the trace-driven kernels. The tests of this crate cross-check the
//! analytic predictions against the cycle-level kernels on small layers.
//!
//! The model takes a layer geometry, a firing rate for its input, the code
//! variant and the storage format, and returns cycle counts plus the
//! derived utilization/IPC/energy-activity statistics.

use serde::{Deserialize, Serialize};

use snitch_arch::fp::FpFormat;
use snitch_arch::{ClusterConfig, CostModel};
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::{ConvSpec, LayerKind, LinearSpec};

use crate::KernelVariant;

/// Predicted execution statistics of one layer on the cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// Layer runtime in cycles (compute time, with double-buffered DMA
    /// transfers assumed to overlap as in the paper's DB optimization).
    pub cycles: u64,
    /// Compute-only duration in cycles.
    pub compute_cycles: u64,
    /// DMA-only duration in cycles.
    pub dma_cycles: u64,
    /// Useful FPU issue slots per core.
    pub fpu_busy_cycles: u64,
    /// Average FPU utilization (0..=1).
    pub fpu_utilization: f64,
    /// Average instructions per cycle per core.
    pub ipc: f64,
    /// Integer instructions executed per core.
    pub int_instrs: u64,
    /// FP instructions issued per core.
    pub fp_instrs: u64,
    /// Scalar FLOPs over the whole cluster.
    pub flops: u64,
    /// Synaptic operations (accumulations) over the whole cluster.
    pub synops: u64,
    /// Bytes moved into the scratchpad.
    pub dma_bytes_in: u64,
    /// Bytes moved out of the scratchpad.
    pub dma_bytes_out: u64,
}

impl LayerTiming {
    /// Wall-clock seconds at the given clock.
    pub fn seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz
    }
}

/// Analytic timing model bound to a cluster configuration and cost model.
#[derive(Debug, Clone)]
pub struct AnalyticLayerModel {
    config: ClusterConfig,
    cost: CostModel,
}

impl AnalyticLayerModel {
    /// Create the model.
    pub fn new(config: ClusterConfig, cost: CostModel) -> Self {
        AnalyticLayerModel { config, cost }
    }

    /// Model with the default Snitch cluster parameters.
    pub fn snitch() -> Self {
        Self::new(ClusterConfig::default(), CostModel::default())
    }

    /// The cluster configuration used by the model.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Predict one layer.
    ///
    /// `input_rate` is the firing rate of the layer's input (ignored for a
    /// spike-encoding layer, which consumes a dense image), and
    /// `output_rate` the expected firing rate of its output (used for the
    /// compressed-output bookkeeping cost).
    pub fn layer(
        &self,
        kind: &LayerKind,
        encodes_input: bool,
        variant: KernelVariant,
        format: FpFormat,
        input_rate: f64,
        output_rate: f64,
    ) -> LayerTiming {
        match kind {
            LayerKind::Conv(spec) => {
                if encodes_input {
                    self.dense_conv(spec, variant, format, output_rate)
                } else {
                    self.sparse_conv(spec, variant, format, input_rate, output_rate)
                }
            }
            LayerKind::Linear(spec) => self.fc(spec, variant, format, input_rate, output_rate),
        }
    }

    fn sparse_conv(
        &self,
        spec: &ConvSpec,
        variant: KernelVariant,
        format: FpFormat,
        input_rate: f64,
        output_rate: f64,
    ) -> LayerTiming {
        let c = &self.cost;
        let lanes = format.simd_lanes() as f64;
        let groups = (spec.out_channels as f64 / lanes).ceil();
        let out = spec.conv_output();
        let n_rf = (out.h * out.w) as f64;
        let kk = (spec.kh * spec.kw) as f64;
        let s_len = spec.input.c as f64 * input_rate.clamp(0.0, 1.0);

        // Outer-loop control per filter position (Listing 1a).
        let outer = (c.branch_taken + 3 * c.int_alu + 2 * c.int_load) as f64;
        // Fused activation per group: threshold move, per-lane unpacking,
        // compressed-output updates for firing lanes, membrane write-back.
        let act_int = (c.int_move as f64)
            + lanes * (c.int_alu + c.branch_taken) as f64
            + lanes * output_rate * (c.int_store + c.int_amo) as f64
            + 1.0;
        let act_fp_useful = 2.0; // fused decay-integrate FMA + threshold compare

        let (group_int, group_fpu_occupancy) = match variant {
            KernelVariant::Baseline => {
                let spva_elem = (c.int_load
                    + 3 * c.int_alu
                    + c.branch_taken) as f64
                    + 2.0 // fld + fadd issue slots
                    + 1.0; // second addi of Listing 1b
                let int = 3.0 + kk * (outer + s_len * spva_elem) + act_int + 2.0;
                (int, 0.0)
            }
            KernelVariant::SpikeStream => {
                let int = 3.0
                    + kk * (outer + 4.0 * c.ssr_config_write as f64 + c.frep_launch as f64)
                    + 2.0;
                let per_spva_fpu = c.stream_startup as f64
                    + c.fpu_latency as f64
                    + s_len * c.indirect_stream_interval
                    + s_len * 2.0 * 0.04;
                (int, kk * per_spva_fpu + act_fp_useful)
            }
        };
        let useful_fpu = kk * s_len + act_fp_useful;
        let group_time = match variant {
            KernelVariant::Baseline => group_int,
            KernelVariant::SpikeStream => group_int.max(group_fpu_occupancy) + act_int,
        };

        let sched = (c.int_amo + c.branch_taken) as f64;
        let rf_time = sched + groups * group_time;
        let cores = self.config.worker_cores as f64;
        let rfs_per_core = (n_rf / cores).ceil();
        let compute = (rfs_per_core * rf_time).ceil() as u64;

        // DMA traffic.
        let elem = format.bytes() as u64;
        let padded = spec.padded_input();
        let ifmap_spikes = (padded.len() as f64 * input_rate) as u64;
        let bytes_in = spec.weight_count() as u64 * elem
            + ifmap_spikes * INDEX_BYTES as u64
            + ((padded.h * padded.w + 1) * INDEX_BYTES) as u64
            + out.len() as u64 * 4;
        let out_spikes = (out.len() as f64 * output_rate) as u64;
        let bytes_out = out_spikes * INDEX_BYTES as u64
            + ((out.h * out.w + 1) * INDEX_BYTES) as u64
            + out.len() as u64 * 4;
        let dma = self.dma_cycles(bytes_in + bytes_out, 4 + out.h as u64);

        let synops = (n_rf * kk * s_len * spec.out_channels as f64) as u64;
        self.finish(
            compute,
            dma,
            (rfs_per_core * groups * useful_fpu) as u64,
            (rfs_per_core * groups * group_int) as u64,
            (rfs_per_core * groups * (kk * s_len + 4.0)) as u64,
            synops,
            bytes_in,
            bytes_out,
        )
    }

    fn dense_conv(
        &self,
        spec: &ConvSpec,
        variant: KernelVariant,
        format: FpFormat,
        output_rate: f64,
    ) -> LayerTiming {
        let c = &self.cost;
        let lanes = format.simd_lanes() as f64;
        let groups = (spec.out_channels as f64 / lanes).ceil();
        let out = spec.conv_output();
        let n_rf = (out.h * out.w) as f64;
        let k_len = (spec.kh * spec.kw * spec.input.c) as f64;

        let act_int = (c.int_move as f64)
            + lanes * (c.int_alu + c.branch_taken) as f64
            + lanes * output_rate * (c.int_store + c.int_amo) as f64
            + 1.0;
        let act_fp_useful = 2.0;

        let (group_int, group_fpu_occupancy) = match variant {
            KernelVariant::Baseline => {
                // Two loads, one FMA, pointer bump and loop branch per element.
                let per_elem = 2.0 + 1.0 + (c.int_alu + c.branch_taken) as f64;
                (3.0 + k_len * per_elem + act_int, 0.0)
            }
            KernelVariant::SpikeStream => {
                let int = 3.0 + 2.0 * 4.0 * c.ssr_config_write as f64 + c.frep_launch as f64;
                let fpu = c.stream_startup as f64
                    + c.fpu_latency as f64
                    + k_len * c.affine_stream_interval
                    + act_fp_useful;
                (int, fpu)
            }
        };
        let useful_fpu = k_len + act_fp_useful;
        let group_time = match variant {
            KernelVariant::Baseline => group_int,
            KernelVariant::SpikeStream => group_int.max(group_fpu_occupancy) + act_int,
        };

        let sched = (c.int_amo + c.branch_taken) as f64;
        let rf_time = sched + groups * group_time;
        let cores = self.config.worker_cores as f64;
        let rfs_per_core = (n_rf / cores).ceil();
        let compute = (rfs_per_core * rf_time).ceil() as u64;

        let elem = format.bytes() as u64;
        let padded = spec.padded_input();
        let bytes_in =
            spec.weight_count() as u64 * elem + padded.len() as u64 * 4 + out.len() as u64 * 4;
        let out_spikes = (out.len() as f64 * output_rate) as u64;
        let bytes_out = out_spikes * INDEX_BYTES as u64 + out.len() as u64 * 4;
        let dma = self.dma_cycles(bytes_in + bytes_out, 4 + out.h as u64);

        let synops = (n_rf * k_len * spec.out_channels as f64) as u64;
        self.finish(
            compute,
            dma,
            (rfs_per_core * groups * useful_fpu) as u64,
            (rfs_per_core * groups * group_int) as u64,
            (rfs_per_core * groups * (k_len + 4.0)) as u64,
            synops,
            bytes_in,
            bytes_out,
        )
    }

    fn fc(
        &self,
        spec: &LinearSpec,
        variant: KernelVariant,
        format: FpFormat,
        input_rate: f64,
        output_rate: f64,
    ) -> LayerTiming {
        let c = &self.cost;
        let lanes = format.simd_lanes() as f64;
        let groups = (spec.out_features as f64 / lanes).ceil();
        let s_len = spec.in_features as f64 * input_rate.clamp(0.0, 1.0);

        let act_int = (c.int_move as f64)
            + lanes * (c.int_alu + c.branch_taken) as f64
            + lanes * output_rate * (c.int_store + c.int_amo) as f64
            + 1.0;
        let act_fp_useful = 2.0;

        let (group_int, group_fpu_occupancy) = match variant {
            KernelVariant::Baseline => {
                let spva_elem = (c.int_load + 3 * c.int_alu + c.branch_taken) as f64 + 2.0 + 1.0;
                (3.0 + s_len * spva_elem + act_int, 0.0)
            }
            KernelVariant::SpikeStream => {
                let int = 3.0 + 4.0 * c.ssr_config_write as f64 + c.frep_launch as f64;
                let fpu = c.stream_startup as f64
                    + c.fpu_latency as f64
                    + s_len * c.indirect_stream_interval
                    + s_len * 2.0 * 0.04
                    + act_fp_useful;
                (int, fpu)
            }
        };
        let useful_fpu = s_len + act_fp_useful;
        let group_time = match variant {
            KernelVariant::Baseline => group_int,
            KernelVariant::SpikeStream => group_int.max(group_fpu_occupancy) + act_int,
        };

        let sched = (c.int_amo + c.branch_taken) as f64;
        let cores = self.config.worker_cores as f64;
        let groups_per_core = (groups / cores).ceil();
        let compute = (groups_per_core * (sched + group_time)).ceil() as u64;

        let elem = format.bytes() as u64;
        let bytes_in = spec.weight_count() as u64 * elem
            + (s_len as u64) * INDEX_BYTES as u64
            + spec.out_features as u64 * 4;
        let bytes_out = ((spec.out_features as f64 * output_rate) as u64) * INDEX_BYTES as u64
            + spec.out_features as u64 * 4;
        let dma = self.dma_cycles(bytes_in + bytes_out, 4);

        let synops = (s_len * spec.out_features as f64) as u64;
        self.finish(
            compute,
            dma,
            (groups_per_core * useful_fpu) as u64,
            (groups_per_core * group_int) as u64,
            (groups_per_core * (s_len + 4.0)) as u64,
            synops,
            bytes_in,
            bytes_out,
        )
    }

    fn dma_cycles(&self, bytes: u64, transfers: u64) -> u64 {
        let beats = bytes.div_ceil(self.config.dma_width_bytes() as u64);
        let bw = (bytes as f64 / self.config.global_mem_bytes_per_cycle).ceil() as u64;
        transfers * self.config.dma_setup_cycles + beats.max(bw)
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        compute: u64,
        dma: u64,
        fpu_busy: u64,
        int_instrs: u64,
        fp_instrs: u64,
        synops: u64,
        bytes_in: u64,
        bytes_out: u64,
    ) -> LayerTiming {
        // Tiling with double buffering (Section III-D) overlaps tile
        // transfers with compute, so — as in the paper's per-layer runtime
        // measurements — the reported layer runtime is the compute time;
        // the DMA time is reported separately for memory-bound analysis.
        let cycles = compute.max(1);
        let fpu_utilization = (fpu_busy as f64 / cycles as f64).min(1.0);
        let ipc = ((int_instrs + fp_instrs) as f64 / cycles as f64).min(2.0);
        // Every synaptic accumulation touches `lanes` values, but synops are
        // already counted over all output channels; FLOPs equal synops for
        // add-based layers plus 2x for the dense first layer, which is
        // approximated here by counting one FLOP per synop.
        let flops = synops;
        LayerTiming {
            cycles,
            compute_cycles: compute,
            dma_cycles: dma,
            fpu_busy_cycles: fpu_busy,
            fpu_utilization,
            ipc,
            int_instrs,
            fp_instrs,
            flops,
            synops,
            dma_bytes_in: bytes_in,
            dma_bytes_out: bytes_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikestream_snn::tensor::TensorShape;

    fn conv_spec(in_c: usize, out_c: usize, hw: usize) -> LayerKind {
        LayerKind::Conv(ConvSpec {
            input: TensorShape::new(hw, hw, in_c),
            out_channels: out_c,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        })
    }

    #[test]
    fn baseline_conv_utilization_is_near_ten_percent() {
        let m = AnalyticLayerModel::snitch();
        let t = m.layer(
            &conv_spec(128, 256, 16),
            false,
            KernelVariant::Baseline,
            FpFormat::Fp16,
            0.24,
            0.17,
        );
        assert!(t.fpu_utilization > 0.06 && t.fpu_utilization < 0.14, "got {}", t.fpu_utilization);
    }

    #[test]
    fn spikestream_conv_utilization_rises_substantially() {
        let m = AnalyticLayerModel::snitch();
        let base = m.layer(
            &conv_spec(128, 256, 16),
            false,
            KernelVariant::Baseline,
            FpFormat::Fp16,
            0.24,
            0.17,
        );
        let fast = m.layer(
            &conv_spec(128, 256, 16),
            false,
            KernelVariant::SpikeStream,
            FpFormat::Fp16,
            0.24,
            0.17,
        );
        assert!(fast.fpu_utilization > 4.0 * base.fpu_utilization);
        assert!(fast.fpu_utilization > 0.4 && fast.fpu_utilization < 0.8);
        let speedup = base.cycles as f64 / fast.cycles as f64;
        assert!(speedup > 4.0 && speedup < 8.0, "got {speedup}");
    }

    #[test]
    fn shallow_layers_benefit_less_than_deep_layers() {
        let m = AnalyticLayerModel::snitch();
        let speedup = |in_c: usize, rate: f64| {
            let k = conv_spec(in_c, 2 * in_c, 16);
            let b = m.layer(&k, false, KernelVariant::Baseline, FpFormat::Fp16, rate, 0.2);
            let s = m.layer(&k, false, KernelVariant::SpikeStream, FpFormat::Fp16, rate, 0.2);
            b.cycles as f64 / s.cycles as f64
        };
        assert!(speedup(64, 0.32) < speedup(256, 0.12) + 1.0);
    }

    #[test]
    fn fp8_roughly_halves_spikestream_runtime() {
        let m = AnalyticLayerModel::snitch();
        let k = conv_spec(256, 256, 16);
        let t16 = m.layer(&k, false, KernelVariant::SpikeStream, FpFormat::Fp16, 0.17, 0.12);
        let t8 = m.layer(&k, false, KernelVariant::SpikeStream, FpFormat::Fp8, 0.17, 0.12);
        let speedup = t16.cycles as f64 / t8.cycles as f64;
        assert!(speedup > 1.5 && speedup < 2.05, "got {speedup}");
    }

    #[test]
    fn encoding_layer_has_moderate_baseline_utilization() {
        let m = AnalyticLayerModel::snitch();
        let k = conv_spec(3, 64, 32);
        let base = m.layer(&k, true, KernelVariant::Baseline, FpFormat::Fp16, 1.0, 0.32);
        let fast = m.layer(&k, true, KernelVariant::SpikeStream, FpFormat::Fp16, 1.0, 0.32);
        assert!(base.fpu_utilization > 0.15 && base.fpu_utilization < 0.35);
        assert!(fast.fpu_utilization > 0.4 && fast.fpu_utilization < 0.75);
    }

    #[test]
    fn fc_layer_is_modelled() {
        let m = AnalyticLayerModel::snitch();
        let k = LayerKind::Linear(LinearSpec { in_features: 8192, out_features: 1024 });
        let b = m.layer(&k, false, KernelVariant::Baseline, FpFormat::Fp16, 0.04, 0.02);
        let s = m.layer(&k, false, KernelVariant::SpikeStream, FpFormat::Fp16, 0.04, 0.02);
        assert!(s.cycles < b.cycles);
        assert!(b.synops == s.synops);
        assert!(s.dma_bytes_in > spec_weight_bytes(&k, FpFormat::Fp16) / 2);
    }

    fn spec_weight_bytes(kind: &LayerKind, format: FpFormat) -> u64 {
        kind.weight_count() as u64 * format.bytes() as u64
    }
}
