//! Tiling and double-buffering plans (Section III-D of the paper).
//!
//! Every layer's working set — compressed ifmap, weight tile, neuron-state
//! tile and the worst-case-sized compressed ofmap buffers — must fit in the
//! 128 KiB scratchpad, with weights double-buffered first and ifmaps second
//! so that a compressed ofmap tile is fully populated before it is copied
//! back out. The planner computes how many weight tiles a layer needs and
//! the DMA traffic of one layer invocation; the kernels emit that traffic
//! as annotated stream-program DMA phases so that compute/transfer overlap
//! (or the lack of it) shows up in the phase statistics.

use snitch_arch::fp::FpFormat;
use snitch_arch::ClusterConfig;
use snitch_mem::dma::{DmaDirection, DmaRequest};
use snitch_mem::{SpmAllocator, SpmBuffer};
use spikestream_ir::DmaPhase;
use spikestream_snn::compress::INDEX_BYTES;
use spikestream_snn::{CompressedIfmap, ConvSpec, LinearSpec, PoolSpec};

/// Scratchpad addresses and DMA traffic of one layer invocation.
#[derive(Debug, Clone)]
pub struct LayerTilePlan {
    /// Scratchpad buffer holding (one tile of) the weights.
    pub weights: SpmBuffer,
    /// Scratchpad buffer holding the compressed ifmap indices.
    pub ifmap_idcs: SpmBuffer,
    /// Scratchpad buffer holding the spatial pointers.
    pub ifmap_sptr: SpmBuffer,
    /// Scratchpad buffer holding the neuron-state (membrane) tile.
    pub neuron_state: SpmBuffer,
    /// Worst-case compressed ofmap buffer.
    pub ofmap: SpmBuffer,
    /// Number of weight tiles the layer is split into (0 for weight-less
    /// layers such as pooling).
    pub weight_tiles: usize,
    /// Inbound DMA requests (weights + ifmap + neuron state).
    pub dma_in: Vec<DmaRequest>,
    /// Outbound DMA requests (compressed ofmap + neuron state write-back).
    pub dma_out: Vec<DmaRequest>,
}

impl LayerTilePlan {
    /// Total bytes moved into the scratchpad.
    pub fn bytes_in(&self) -> u64 {
        self.dma_in.iter().map(|r| r.total_bytes()).sum()
    }

    /// Total bytes moved out of the scratchpad.
    pub fn bytes_out(&self) -> u64 {
        self.dma_out.iter().map(|r| r.total_bytes()).sum()
    }

    /// The plan's inbound transfers as annotated stream-program DMA
    /// phases, emitted *before* the compute phase: the first weight tile,
    /// the compressed ifmap and the neuron state are prologue loads the
    /// compute stream waits for; the remaining weight tiles are
    /// double-buffered behind compute.
    pub fn dma_in_phases(&self) -> Vec<DmaPhase> {
        self.dma_in
            .iter()
            .enumerate()
            .map(|(i, req)| DmaPhase {
                direction: req.direction,
                row_bytes: req.row_bytes,
                rows: req.rows,
                row_stride_overhead: req.row_stride_overhead,
                double_buffered: i > 0 && i < self.weight_tiles,
            })
            .collect()
    }

    /// The plan's outbound transfers, emitted *after* the compute phase:
    /// the compressed ofmap rows stream out as they are produced
    /// (double-buffered, so the engine issues them as early as it is free)
    /// while the final membrane write-back is an epilogue transfer that
    /// waits for the last group to complete.
    pub fn dma_out_phases(&self) -> Vec<DmaPhase> {
        let last_out = self.dma_out.len().saturating_sub(1);
        self.dma_out
            .iter()
            .enumerate()
            .map(|(i, req)| DmaPhase {
                direction: req.direction,
                row_bytes: req.row_bytes,
                rows: req.rows,
                row_stride_overhead: req.row_stride_overhead,
                double_buffered: i < last_out,
            })
            .collect()
    }
}

/// Planner that sizes tiles for the scratchpad of a cluster configuration.
#[derive(Debug, Clone)]
pub struct TilingPlanner {
    config: ClusterConfig,
}

impl TilingPlanner {
    /// Create a planner for the given cluster.
    pub fn new(config: &ClusterConfig) -> Self {
        TilingPlanner { config: config.clone() }
    }

    /// Plan one convolutional layer invocation from a concrete compressed
    /// input. `state_vars` is the number of per-neuron state variables the
    /// layer's neuron model keeps resident (1 for LIF, 2 for Izhikevich's
    /// membrane + recovery pair); it scales the state tile and both of its
    /// DMA transfers.
    pub fn plan_conv(
        &self,
        spec: &ConvSpec,
        format: FpFormat,
        input: &CompressedIfmap,
        state_vars: usize,
    ) -> LayerTilePlan {
        self.plan_conv_spikes(spec, format, input.spike_count(), state_vars)
    }

    /// Plan one convolutional layer invocation from an ifmap spike count —
    /// the entry point shared by the exact lowering (realized count) and
    /// the symbolic lowering (expected count), so both backends see the
    /// same scratchpad layout and DMA traffic by construction.
    pub fn plan_conv_spikes(
        &self,
        spec: &ConvSpec,
        format: FpFormat,
        ifmap_spikes: usize,
        state_vars: usize,
    ) -> LayerTilePlan {
        let elem = format.bytes() as usize;
        let weight_bytes = spec.weight_count() * elem;
        let idcs_bytes = ifmap_spikes * INDEX_BYTES;
        let padded = spec.padded_input();
        let sptr_bytes = (padded.h * padded.w + 1) * INDEX_BYTES;
        let out = spec.conv_output();
        // Per-neuron state kept in FP32; multi-variable models widen the
        // tile (and its load/write-back transfers) proportionally.
        let state_bytes = out.len() * 4 * state_vars.max(1);

        // Worst-case (zero-sparsity) compressed ofmap allocation.
        let ofmap_bytes = out.len() * INDEX_BYTES + (out.h * out.w + 1) * INDEX_BYTES;
        self.plan(weight_bytes, idcs_bytes, sptr_bytes, state_bytes, ofmap_bytes, out.h)
    }

    /// Plan one average-pooling layer invocation: the dense spike tile in,
    /// the worst-case compressed output back out, no weights.
    pub fn plan_pool(&self, spec: &PoolSpec) -> LayerTilePlan {
        let in_bytes = spec.input.len(); // one byte per binary neuron
        let out = spec.output();
        let ofmap_bytes = out.len() * INDEX_BYTES + (out.h * out.w + 1) * INDEX_BYTES;

        let mut alloc = SpmAllocator::new(&self.config);
        let mut grab = |bytes: usize| -> SpmBuffer {
            alloc
                .alloc(bytes.min(alloc.free() as usize).max(8) as u32)
                .unwrap_or(SpmBuffer { base: 0, bytes: 0 })
        };
        let ifmap_idcs = grab(in_bytes);
        let ofmap = grab(ofmap_bytes);

        LayerTilePlan {
            weights: SpmBuffer { base: 0, bytes: 0 },
            ifmap_idcs,
            ifmap_sptr: SpmBuffer { base: 0, bytes: 0 },
            neuron_state: SpmBuffer { base: 0, bytes: 0 },
            ofmap,
            weight_tiles: 0,
            dma_in: vec![DmaRequest::contiguous(DmaDirection::In, in_bytes as u64)],
            dma_out: vec![DmaRequest::strided_2d(
                DmaDirection::Out,
                (ofmap_bytes / out.h.max(1)) as u64,
                out.h as u64,
            )],
        }
    }

    /// Plan one fully connected layer invocation. `state_vars` scales the
    /// neuron-state tile exactly as in [`TilingPlanner::plan_conv`].
    pub fn plan_linear(
        &self,
        spec: &LinearSpec,
        format: FpFormat,
        active_inputs: usize,
        state_vars: usize,
    ) -> LayerTilePlan {
        let elem = format.bytes() as usize;
        let weight_bytes = spec.weight_count() * elem;
        let idcs_bytes = active_inputs * INDEX_BYTES;
        let state_bytes = spec.out_features * 4 * state_vars.max(1);
        let ofmap_bytes = spec.out_features * INDEX_BYTES + 4;
        self.plan(weight_bytes, idcs_bytes, 8, state_bytes, ofmap_bytes, 1)
    }

    fn plan(
        &self,
        weight_bytes: usize,
        idcs_bytes: usize,
        sptr_bytes: usize,
        state_bytes: usize,
        ofmap_bytes: usize,
        out_rows: usize,
    ) -> LayerTilePlan {
        let capacity = self.config.spm_bytes as usize;
        // Reserve space for everything except the weights, double-buffering
        // the ifmap indices (Section III-D: weights first, then ifmaps).
        let fixed = 2 * idcs_bytes + sptr_bytes + state_bytes + ofmap_bytes;
        let weight_budget = capacity.saturating_sub(fixed).max(capacity / 4) / 2;
        let weight_tiles = weight_bytes.div_ceil(weight_budget.max(1)).max(1);
        let weight_tile_bytes = weight_bytes.div_ceil(weight_tiles);

        let mut alloc = SpmAllocator::new(&self.config);
        let mut grab = |bytes: usize| -> SpmBuffer {
            alloc
                .alloc(bytes.min(alloc.free() as usize).max(8) as u32)
                .unwrap_or(SpmBuffer { base: 0, bytes: 0 })
        };
        let weights = grab(weight_tile_bytes);
        let ifmap_idcs = grab(idcs_bytes);
        let ifmap_sptr = grab(sptr_bytes);
        let neuron_state = grab(state_bytes);
        let ofmap = grab(ofmap_bytes);

        let mut dma_in = Vec::new();
        // One transfer per weight tile (double-buffered against compute).
        for _ in 0..weight_tiles {
            dma_in.push(DmaRequest::contiguous(DmaDirection::In, weight_tile_bytes as u64));
        }
        // The compressed ifmap tile fits a single DMA request thanks to the
        // aggregated spatial pointers (Section III-D).
        dma_in.push(DmaRequest::contiguous(DmaDirection::In, (idcs_bytes + sptr_bytes) as u64));
        dma_in.push(DmaRequest::contiguous(DmaDirection::In, state_bytes as u64));

        // The ofmap c_idcs fragments are copied out row by row because of
        // the worst-case allocation; the s_ptr elements are joined by the
        // DMA core before the final copy.
        let dma_out = vec![
            DmaRequest::strided_2d(
                DmaDirection::Out,
                (ofmap_bytes / out_rows.max(1)) as u64,
                out_rows as u64,
            ),
            DmaRequest::contiguous(DmaDirection::Out, state_bytes as u64),
        ];

        LayerTilePlan {
            weights,
            ifmap_idcs,
            ifmap_sptr,
            neuron_state,
            ofmap,
            weight_tiles,
            dma_in,
            dma_out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spikestream_snn::tensor::{SpikeMap, TensorShape};

    fn planner() -> TilingPlanner {
        TilingPlanner::new(&ClusterConfig::default())
    }

    fn small_conv() -> ConvSpec {
        ConvSpec {
            input: TensorShape::new(8, 8, 16),
            out_channels: 32,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        }
    }

    #[test]
    fn small_layer_needs_a_single_weight_tile() {
        let spec = small_conv();
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let plan = planner().plan_conv(&spec, FpFormat::Fp16, &input, 1);
        assert_eq!(plan.weight_tiles, 1);
        assert!(plan.bytes_in() > 0);
        assert!(plan.bytes_out() > 0);
    }

    #[test]
    fn two_variable_models_double_the_state_traffic() {
        let spec = small_conv();
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let lif = planner().plan_conv(&spec, FpFormat::Fp16, &input, 1);
        let izhi = planner().plan_conv(&spec, FpFormat::Fp16, &input, 2);
        let state = (spec.conv_output().len() * 4) as u64;
        assert_eq!(izhi.neuron_state.bytes, lif.neuron_state.bytes * 2);
        assert_eq!(izhi.bytes_in(), lif.bytes_in() + state);
        assert_eq!(izhi.bytes_out(), lif.bytes_out() + state);

        let lin = LinearSpec { in_features: 256, out_features: 64 };
        let l1 = planner().plan_linear(&lin, FpFormat::Fp32, 16, 1);
        let l2 = planner().plan_linear(&lin, FpFormat::Fp32, 16, 2);
        assert_eq!(l2.neuron_state.bytes, l1.neuron_state.bytes * 2);
        assert_eq!(l2.bytes_out(), l1.bytes_out() + (lin.out_features * 4) as u64);
    }

    #[test]
    fn large_layer_is_split_into_multiple_weight_tiles() {
        let spec = ConvSpec {
            input: TensorShape::new(8, 8, 512),
            out_channels: 512,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let plan = planner().plan_conv(&spec, FpFormat::Fp16, &input, 1);
        // 512*512*9 FP16 weights are ~4.5 MiB: far beyond one 128 KiB tile.
        assert!(plan.weight_tiles > 10, "got {}", plan.weight_tiles);
        assert_eq!(plan.dma_in.len(), plan.weight_tiles + 2);
    }

    #[test]
    fn narrower_formats_move_fewer_weight_bytes() {
        let spec = small_conv();
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let fp16 = planner().plan_conv(&spec, FpFormat::Fp16, &input, 1);
        let fp8 = planner().plan_conv(&spec, FpFormat::Fp8, &input, 1);
        assert!(fp8.bytes_in() < fp16.bytes_in());
    }

    #[test]
    fn linear_plan_covers_weights_and_state() {
        let spec = LinearSpec { in_features: 1024, out_features: 128 };
        let plan = planner().plan_linear(&spec, FpFormat::Fp16, 40, 1);
        assert!(plan.weight_tiles >= 2, "1024x128 FP16 weights exceed one tile");
        assert!(plan.bytes_in() >= (spec.weight_count() * 2) as u64);
    }

    #[test]
    fn dma_phase_annotations_follow_the_double_buffer_scheme() {
        let spec = ConvSpec {
            input: TensorShape::new(8, 8, 512),
            out_channels: 512,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let input = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let plan = planner().plan_conv(&spec, FpFormat::Fp16, &input, 1);
        let ins = plan.dma_in_phases();
        let outs = plan.dma_out_phases();

        // Prologue: first weight tile + ifmap + state; every further weight
        // tile is double-buffered behind compute.
        assert_eq!(ins.len(), plan.weight_tiles + 2);
        assert!(!ins[0].double_buffered, "first weight tile gates compute");
        assert!(ins[1..plan.weight_tiles].iter().all(|p| p.double_buffered));
        assert!(ins[plan.weight_tiles..].iter().all(|p| !p.double_buffered));
        // Ofmap rows stream out as produced; the membrane write-back is the
        // epilogue transfer.
        assert!(outs[0].double_buffered);
        assert!(!outs.last().unwrap().double_buffered);
        // Byte totals agree with the raw request lists.
        assert_eq!(ins.iter().map(|p| p.total_bytes()).sum::<u64>(), plan.bytes_in());
        assert_eq!(outs.iter().map(|p| p.total_bytes()).sum::<u64>(), plan.bytes_out());
    }
}
