//! Uniform per-layer kernel dispatch.
//!
//! [`LayerExecutor`] is the single entry point execution backends use to
//! run one network layer on the cycle-level cluster model. It owns the
//! mapping from layer kind and input representation to the concrete kernel
//! — [`DenseEncodingKernel`] for the dense spike-encoding first layer,
//! [`ConvKernel`] for spike-consuming convolutions, [`FcKernel`] for
//! fully connected layers — together with the input compression each kernel
//! expects. Callers hand it a [`LayerInput`] and read the structural
//! measurements back from the returned [`LayerExecution`]; timing is
//! accumulated in the [`ClusterModel`] as usual and collected by the caller
//! with [`ClusterModel::finish_phase`].

use std::sync::Arc;

use snitch_arch::fp::FpFormat;
use snitch_arch::ClusterConfig;
use snitch_sim::ClusterModel;
use spikestream_ir::{
    CachedProgram, CostIntegrator, ProgramCache, ProgramKey, SparsityBucket, StreamProgram,
    StructuralKey,
};
use spikestream_snn::{
    AerEvent, CompressedFcInput, CompressedIfmap, Layer, LayerKind, Network, NeuronState, SpikeMap,
    Tensor3,
};

use crate::{ConvKernel, DenseEncodingKernel, FcKernel, KernelVariant, PoolKernel};

/// The input of one layer invocation.
#[derive(Debug, Clone, Copy)]
pub enum LayerInput<'a> {
    /// Dense, padded image consumed by the spike-encoding first layer.
    Image(&'a Tensor3),
    /// Input spike map of a spike-consuming layer (padded for conv layers,
    /// flattened `1 x 1 x F` for fully connected layers).
    Spikes(&'a SpikeMap),
}

/// Structural measurements of one layer invocation: what the layer consumed
/// and produced, independent of the timing accumulated in the cluster model.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerExecution {
    /// Firing rate of the layer's input (1.0 for the dense encoding layer).
    pub input_rate: f64,
    /// Number of input spikes (dense pixels for the encoding layer).
    pub input_spikes: u64,
    /// Synaptic operations executed.
    pub synops: f64,
    /// Compressed (CSR-derived) input footprint in bytes.
    pub csr_footprint_bytes: f64,
    /// AER input footprint in bytes.
    pub aer_footprint_bytes: f64,
    /// Output spikes of the layer (after pooling for conv layers).
    pub output_spikes: u64,
}

/// Reusable buffers for repeated [`LayerExecutor::run_with_scratch`] and
/// [`LayerExecutor::run_temporal_step`] invocations: the neuron state, the
/// compressed-input buffers and their backing allocations. A worker that
/// evaluates many layers (or many batch samples) keeps one `LayerScratch`
/// and avoids re-allocating these per layer once the buffers reach
/// steady-state capacity.
///
/// For temporal runs the scratch additionally owns one *persistent*
/// [`NeuronState`] per network layer: [`LayerScratch::begin_sample`] resets
/// them to the layer model's rest state, and every
/// [`LayerExecutor::run_temporal_step`] of the sample advances them in
/// place — the state variables survive from timestep to timestep, which is
/// what makes the pipeline a real spiking inference. The states are pinned
/// to whichever worker owns the scratch, so a sample's timesteps always
/// execute on one worker, in order.
#[derive(Debug, Clone, Default)]
pub struct LayerScratch {
    state: NeuronState,
    ifmap: CompressedIfmap,
    fc: CompressedFcInput,
    /// Per-layer persistent neuron states of the current temporal sample
    /// (empty until [`LayerScratch::begin_sample`] is called).
    states: Vec<NeuronState>,
}

impl LayerScratch {
    /// Fresh, empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new temporal sample: size one persistent neuron state per
    /// layer of `network` and reset every state variable to the layer
    /// model's rest values, reusing the existing allocations. Must be
    /// called before the first [`LayerExecutor::run_temporal_step`] of each
    /// sample — this is what guarantees neuron state never leaks between
    /// batch samples.
    pub fn begin_sample(&mut self, network: &Network) {
        self.states.resize_with(network.len(), NeuronState::default);
        for (layer, state) in network.layers().iter().zip(self.states.iter_mut()) {
            let neurons = match &layer.kind {
                // Conv membranes cover the pre-pool output neurons.
                LayerKind::Conv(c) => c.conv_output().len(),
                // Pooling is membrane-free.
                LayerKind::AvgPool(_) => 0,
                LayerKind::Linear(l) => l.out_features,
            };
            state.reset_for(&layer.neuron, neurons);
        }
    }

    /// The persistent neuron state of layer `idx` (read-only view, used
    /// by tests and diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if [`LayerScratch::begin_sample`] has not sized the states or
    /// `idx` is out of range.
    pub fn membrane(&self, idx: usize) -> &NeuronState {
        &self.states[idx]
    }
}

/// Kernel dispatch bound to a code variant and storage format.
///
/// `LayerExecutor` is stateless (variant + format only); reusable buffers
/// live in a caller-owned [`LayerScratch`].
///
/// # Example
///
/// ```
/// use snitch_arch::fp::FpFormat;
/// use snitch_arch::{ClusterConfig, CostModel};
/// use snitch_sim::ClusterModel;
/// use spikestream_kernels::{KernelVariant, LayerExecutor, LayerInput, LayerScratch};
/// use spikestream_snn::neuron::LifParams;
/// use spikestream_snn::tensor::{SpikeMap, TensorShape};
/// use spikestream_snn::{ConvSpec, Layer, LayerKind};
///
/// let spec = ConvSpec {
///     input: TensorShape::new(4, 4, 4),
///     out_channels: 4,
///     kh: 3,
///     kw: 3,
///     stride: 1,
///     padding: 1,
///     pool: false,
/// };
/// let layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.25));
/// let mut spikes = SpikeMap::silent(spec.padded_input());
/// spikes.set(2, 2, 1, true);
///
/// let mut cluster = ClusterModel::new(ClusterConfig::default(), CostModel::default());
/// let mut scratch = LayerScratch::new();
/// let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);
/// let exec = executor.run_with_scratch(&mut cluster, &layer, LayerInput::Spikes(&spikes), &mut scratch);
/// assert_eq!(exec.input_spikes, 1);
/// assert!(cluster.finish_phase("conv").cycles > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerExecutor {
    variant: KernelVariant,
    format: FpFormat,
}

impl LayerExecutor {
    /// Create an executor for the given variant and floating-point format.
    pub fn new(variant: KernelVariant, format: FpFormat) -> Self {
        LayerExecutor { variant, format }
    }

    /// The code variant the dispatched kernels emit.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The storage format of weights and activations.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Run one layer on the cluster, dispatching to the matching kernel.
    ///
    /// Allocates fresh scratch buffers; hot loops should hold a
    /// [`LayerScratch`] and call [`LayerExecutor::run_with_scratch`]
    /// instead.
    ///
    /// # Panics
    ///
    /// Panics if the input representation does not fit the layer (a dense
    /// image on a fully connected layer, a spike map whose shape does not
    /// match the layer input) — the same contract as the underlying kernels.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: LayerInput<'_>,
    ) -> LayerExecution {
        self.run_with_scratch(cluster, layer, input, &mut LayerScratch::new())
    }

    /// Run one layer on the cluster, reusing the caller's scratch buffers
    /// for the LIF state and the compressed input (no allocation once the
    /// buffers reached steady-state capacity).
    ///
    /// # Panics
    ///
    /// Same contract as [`LayerExecutor::run`].
    pub fn run_with_scratch(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: LayerInput<'_>,
        scratch: &mut LayerScratch,
    ) -> LayerExecution {
        // Single-shot semantics: the neuron state rests before the layer
        // runs (the dispatch resets it when `fresh` is set).
        let LayerScratch { state, ifmap, fc, .. } = scratch;
        self.dispatch(cluster, layer, input, state, ifmap, fc, true).0
    }

    /// Run one layer of one *timestep* of a temporal sample, advancing the
    /// layer's persistent membrane state in `scratch` instead of resetting
    /// it. Returns the structural measurements plus the layer's output
    /// spike map (after pooling; `1 x 1 x F` for fully connected layers),
    /// which *is* the next layer's input at this timestep.
    ///
    /// The lowered per-timestep program is the layer's regular stream
    /// program: its prologue DMA loads the membrane tile alongside the
    /// compressed per-step input (whose stream lengths reflect the step's
    /// realized sparsity) and its epilogue DMA writes the membranes back —
    /// the load/store phases every timestep of a stateful inference pays.
    ///
    /// # Panics
    ///
    /// Panics if [`LayerScratch::begin_sample`] was not called for the
    /// current network (membrane state missing or mis-sized), or on the
    /// input-shape mismatches of [`LayerExecutor::run`].
    pub fn run_temporal_step(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        layer_idx: usize,
        input: LayerInput<'_>,
        scratch: &mut LayerScratch,
    ) -> (LayerExecution, SpikeMap) {
        assert!(
            layer_idx < scratch.states.len(),
            "LayerScratch::begin_sample must size the membrane states before temporal steps"
        );
        let LayerScratch { states, ifmap, fc, .. } = scratch;
        self.dispatch(cluster, layer, input, &mut states[layer_idx], ifmap, fc, false)
    }

    /// Lower one layer *symbolically* from expected firing rates,
    /// dispatching to the matching kernel emitter exactly like the
    /// cycle-level dispatch does for concrete inputs: the dense-encoding
    /// kernel for the spike-encoding first layer, the sparse conv/pool/FC
    /// emitters otherwise. The analytic backend integrates the result.
    pub fn lower_symbolic(
        &self,
        config: &ClusterConfig,
        layer: &Layer,
        input_rate: f64,
        output_rate: f64,
    ) -> StreamProgram {
        match &layer.kind {
            LayerKind::Conv(spec) if layer.encodes_input => DenseEncodingKernel::new(
                self.variant,
                self.format,
            )
            .lower_symbolic(config, &layer.name, spec, &layer.neuron, output_rate),
            LayerKind::Conv(spec) => ConvKernel::new(self.variant, self.format).lower_symbolic(
                config,
                &layer.name,
                spec,
                &layer.neuron,
                input_rate,
                output_rate,
            ),
            LayerKind::AvgPool(spec) => PoolKernel::new(self.variant, self.format).lower_symbolic(
                config,
                &layer.name,
                spec,
                output_rate,
            ),
            LayerKind::Linear(spec) => FcKernel::new(self.variant, self.format).lower_symbolic(
                config,
                &layer.name,
                spec,
                &layer.neuron,
                input_rate,
                output_rate,
            ),
        }
    }

    /// The cache key class of one (code variant, neuron model) pairing.
    /// Classes are process-internal — they only need to be stable and
    /// collision-free — so the variant occupies bit 0 and the layer's
    /// neuron-model class the bits above it: two models sharing one cache
    /// can never serve each other's programs.
    fn class(&self, layer: &Layer) -> u32 {
        let variant = match self.variant {
            KernelVariant::Baseline => 0,
            KernelVariant::SpikeStream => 1,
        };
        variant | (layer.neuron.cache_class() << 1)
    }

    /// The exact and discrete cache keys of one symbolic binding of
    /// `layer` — the single derivation shared by the preload and serving
    /// paths, so warm-up entries can never drift out of reach of runtime
    /// lookups. Two bindings that agree on the [`StructuralKey`] produce
    /// programs differing only in their `Expected` gather counts.
    fn cache_keys(
        &self,
        layer_idx: usize,
        layer: &Layer,
        input_rate: f64,
        output_rate: f64,
    ) -> (ProgramKey, StructuralKey) {
        let key = ProgramKey {
            layer: layer_idx as u32,
            class: self.class(layer),
            format: self.format,
            bucket: SparsityBucket::of(input_rate, output_rate),
        };
        let footprint = match &layer.kind {
            // The dense-encoding and pooling plans are input-independent.
            LayerKind::Conv(_) if layer.encodes_input => 0,
            LayerKind::AvgPool(_) => 0,
            LayerKind::Conv(spec) => ConvKernel::expected_ifmap_spikes(spec, input_rate) as u64,
            LayerKind::Linear(spec) => FcKernel::planned_active_inputs(spec, input_rate) as u64,
        };
        let structural = StructuralKey {
            layer: layer_idx as u32,
            class: self.class(layer),
            format: self.format,
            footprint,
            output_bits: output_rate.clamp(0.0, 1.0).to_bits(),
            input_silent: input_rate.clamp(0.0, 1.0) == 0.0,
        };
        (key, structural)
    }

    /// Re-bind a structurally identical cached program to this binding's
    /// realized input sparsity, if the substitution is exact; `None` sends
    /// the cache to the full emitter instead.
    ///
    /// Exactness: the dense-encoding and pooling emitters carry no
    /// input-side symbolics at all (a donor with the same structural key
    /// *is* the program), and the SpikeStream conv/FC emitters carry the
    /// input sparsity only in their `Expected`-count gather streams. The
    /// baseline conv/FC variants express it as scalar-loop trip counts,
    /// which `rebind_expected` cannot reach — they re-emit.
    fn rebind_program(
        &self,
        donor: &CachedProgram,
        layer: &Layer,
        input_rate: f64,
    ) -> Option<StreamProgram> {
        match &layer.kind {
            LayerKind::Conv(_) if layer.encodes_input => Some(donor.program.clone()),
            LayerKind::AvgPool(_) => Some(donor.program.clone()),
            LayerKind::Conv(spec) if self.variant == KernelVariant::SpikeStream => {
                let s_len = ConvKernel::expected_stream_len(spec, input_rate);
                Some(donor.program.rebind_expected(|_| s_len))
            }
            LayerKind::Linear(spec) if self.variant == KernelVariant::SpikeStream => {
                let s_len = FcKernel::expected_stream_len(spec, input_rate);
                Some(donor.program.rebind_expected(|_| s_len))
            }
            LayerKind::Conv(_) | LayerKind::Linear(_) => None,
        }
    }

    /// Ahead-of-time lowering of `layer` into the plan cache at the given
    /// steady-state rates: emits and integrates the symbolic program once
    /// and preloads it (as both an exact entry and a structural re-bind
    /// donor) without touching the lookup counters. `Engine::compile`
    /// drives this for every layer so a plan is born with each layer's
    /// template program already lowered.
    pub fn preload_symbolic(
        &self,
        cache: &ProgramCache,
        integrator: &CostIntegrator,
        layer_idx: usize,
        layer: &Layer,
        input_rate: f64,
        output_rate: f64,
    ) {
        let (key, structural) = self.cache_keys(layer_idx, layer, input_rate, output_rate);
        let program = self.lower_symbolic(integrator.config(), layer, input_rate, output_rate);
        let cost = integrator.integrate(&program);
        cache.preload(key, structural, CachedProgram { program, cost });
    }

    /// Bind `layer` at the realized `(input_rate, output_rate)` sparsity
    /// through the plan-owned program cache: an exact bucket hit returns
    /// the cached program and its integrated cost untouched; a structural
    /// sibling is served by [`StreamProgram::rebind_expected`]; only a
    /// genuinely new shape runs the emitter. This is the entry point the
    /// analytic serving hot path uses so that lowering happens ahead of
    /// time (or once per realized sparsity bucket), never per sample.
    pub fn bind_symbolic(
        &self,
        cache: &ProgramCache,
        integrator: &CostIntegrator,
        layer_idx: usize,
        layer: &Layer,
        input_rate: f64,
        output_rate: f64,
    ) -> Arc<CachedProgram> {
        let (key, structural) = self.cache_keys(layer_idx, layer, input_rate, output_rate);
        cache.bind_with(
            key,
            structural,
            |donor| {
                self.rebind_program(donor, layer, input_rate).map(|program| {
                    let cost = integrator.integrate(&program);
                    CachedProgram { program, cost }
                })
            },
            || {
                let program =
                    self.lower_symbolic(integrator.config(), layer, input_rate, output_rate);
                let cost = integrator.integrate(&program);
                CachedProgram { program, cost }
            },
        )
    }

    /// The shared kernel dispatch behind [`LayerExecutor::run_with_scratch`]
    /// and [`LayerExecutor::run_temporal_step`]: compress the input, run
    /// the matching kernel against `state`, and derive the structural
    /// measurements. `fresh` selects single-shot semantics — the membrane
    /// state is reset to rest before the layer runs, and the dense encoding
    /// layer reports its historical every-pixel input metrics (a temporal
    /// step instead counts the step's realized nonzero inputs, which is
    /// what rate coding sparsifies).
    #[allow(clippy::too_many_arguments)]
    fn dispatch(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: LayerInput<'_>,
        state: &mut NeuronState,
        ifmap: &mut CompressedIfmap,
        fc: &mut CompressedFcInput,
        fresh: bool,
    ) -> (LayerExecution, SpikeMap) {
        match (&layer.kind, input) {
            (LayerKind::Conv(spec), LayerInput::Image(image)) => {
                if fresh {
                    state.reset_for(&layer.neuron, spec.conv_output().len());
                }
                let kernel = DenseEncodingKernel::new(self.variant, self.format);
                let out = kernel.run(cluster, layer, image, state);
                let padded = spec.padded_input();
                let input_spikes = if fresh { padded.len() } else { image.count_nonzero() };
                (
                    LayerExecution {
                        input_rate: input_spikes as f64 / padded.len().max(1) as f64,
                        input_spikes: input_spikes as u64,
                        synops: spec.dense_synops() as f64,
                        csr_footprint_bytes: (padded.len() * 4) as f64,
                        aer_footprint_bytes: (padded.len() * 4) as f64,
                        output_spikes: out.output.count_spikes() as u64,
                    },
                    out.output,
                )
            }
            (LayerKind::Conv(spec), LayerInput::Spikes(spikes)) => {
                ifmap.refill_from(spikes);
                if fresh {
                    state.reset_for(&layer.neuron, spec.conv_output().len());
                }
                let kernel = ConvKernel::new(self.variant, self.format);
                let out = kernel.run(cluster, layer, ifmap, state);
                let rate = ifmap.firing_rate();
                (
                    LayerExecution {
                        input_rate: rate,
                        input_spikes: ifmap.spike_count() as u64,
                        synops: spec.dense_synops() as f64 * rate,
                        csr_footprint_bytes: ifmap.footprint_bytes() as f64,
                        aer_footprint_bytes: (ifmap.spike_count() * AerEvent::BYTES) as f64,
                        output_spikes: out.output.count_spikes() as u64,
                    },
                    out.output,
                )
            }
            (LayerKind::AvgPool(spec), LayerInput::Spikes(spikes)) => {
                ifmap.refill_from(spikes);
                let kernel = PoolKernel::new(self.variant, self.format);
                let out = kernel.run(cluster, layer, spikes);
                let rate = ifmap.firing_rate();
                (
                    LayerExecution {
                        input_rate: rate,
                        input_spikes: ifmap.spike_count() as u64,
                        synops: spec.dense_synops() as f64 * rate,
                        csr_footprint_bytes: ifmap.footprint_bytes() as f64,
                        aer_footprint_bytes: (ifmap.spike_count() * AerEvent::BYTES) as f64,
                        output_spikes: out.output.count_spikes() as u64,
                    },
                    out.output,
                )
            }
            (LayerKind::Linear(spec), LayerInput::Spikes(spikes)) => {
                fc.refill_from_map(spikes);
                if fresh {
                    state.reset_for(&layer.neuron, spec.out_features);
                }
                let kernel = FcKernel::new(self.variant, self.format);
                let out = kernel.run(cluster, layer, fc, state);
                let exec = LayerExecution {
                    input_rate: fc.spike_count() as f64 / spec.in_features as f64,
                    input_spikes: fc.spike_count() as u64,
                    synops: spec.dense_synops() as f64 * fc.spike_count() as f64
                        / spec.in_features as f64,
                    csr_footprint_bytes: fc.footprint_bytes() as f64,
                    aer_footprint_bytes: (fc.spike_count() * AerEvent::BYTES) as f64,
                    output_spikes: out.spikes.count_spikes() as u64,
                };
                (exec, out.spikes)
            }
            (LayerKind::Linear(_) | LayerKind::AvgPool(_), LayerInput::Image(_)) => {
                panic!("fully connected and pooling layers consume spikes, not dense images")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::ConvSpec;

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    fn conv_layer(pool: bool) -> (Layer, ConvSpec) {
        let spec = ConvSpec {
            input: TensorShape::new(6, 6, 8),
            out_channels: 8,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool,
        };
        let mut layer = Layer::new("conv", LayerKind::Conv(spec), LifParams::new(0.5, 0.25));
        let mut rng = StdRng::seed_from_u64(3);
        layer.randomize_weights(&mut rng, 0.1);
        (layer, spec)
    }

    fn random_spikes(shape: TensorShape, rate: f64, seed: u64) -> SpikeMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = SpikeMap::silent(shape);
        for h in 1..shape.h - 1 {
            for w in 1..shape.w - 1 {
                for c in 0..shape.c {
                    if rng.gen_bool(rate) {
                        map.set(h, w, c, true);
                    }
                }
            }
        }
        map
    }

    #[test]
    fn conv_dispatch_reports_the_compressed_input() {
        let (layer, spec) = conv_layer(false);
        let spikes = random_spikes(spec.padded_input(), 0.3, 11);
        let compressed = CompressedIfmap::from_spike_map(&spikes);
        let mut cl = cluster();
        let exec = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16).run(
            &mut cl,
            &layer,
            LayerInput::Spikes(&spikes),
        );
        assert_eq!(exec.input_spikes, compressed.spike_count() as u64);
        assert_eq!(exec.input_rate, compressed.firing_rate());
        assert_eq!(exec.csr_footprint_bytes, compressed.footprint_bytes() as f64);
        assert!(exec.synops > 0.0);
        assert!(cl.finish_phase("conv").cycles > 0);
    }

    #[test]
    fn executors_match_direct_kernel_invocations() {
        let (layer, spec) = conv_layer(true);
        let spikes = random_spikes(spec.padded_input(), 0.25, 7);

        let mut direct_cluster = cluster();
        let compressed = CompressedIfmap::from_spike_map(&spikes);
        let mut state = NeuronState::lif(spec.conv_output().len());
        let direct_out = ConvKernel::new(KernelVariant::Baseline, FpFormat::Fp16).run(
            &mut direct_cluster,
            &layer,
            &compressed,
            &mut state,
        );
        let direct_stats = direct_cluster.finish_phase("conv");

        let mut exec_cluster = cluster();
        let exec = LayerExecutor::new(KernelVariant::Baseline, FpFormat::Fp16).run(
            &mut exec_cluster,
            &layer,
            LayerInput::Spikes(&spikes),
        );
        let exec_stats = exec_cluster.finish_phase("conv");

        assert_eq!(exec.output_spikes, direct_out.output.count_spikes() as u64);
        assert_eq!(exec_stats.cycles, direct_stats.cycles);
        assert_eq!(exec_stats.totals.int_instrs, direct_stats.totals.int_instrs);
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_buffers() {
        let (layer, spec) = conv_layer(true);
        let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);
        let mut scratch = LayerScratch::new();
        // Prime the scratch with a differently-shaped layer invocation.
        let warmup = random_spikes(spec.padded_input(), 0.5, 1);
        let mut warm_cluster = cluster();
        executor.run_with_scratch(
            &mut warm_cluster,
            &layer,
            LayerInput::Spikes(&warmup),
            &mut scratch,
        );

        for seed in [2, 3, 4] {
            let spikes = random_spikes(spec.padded_input(), 0.2, seed);
            let mut fresh_cluster = cluster();
            let fresh = executor.run(&mut fresh_cluster, &layer, LayerInput::Spikes(&spikes));
            let mut reused_cluster = cluster();
            let reused = executor.run_with_scratch(
                &mut reused_cluster,
                &layer,
                LayerInput::Spikes(&spikes),
                &mut scratch,
            );
            assert_eq!(fresh, reused);
            assert_eq!(
                fresh_cluster.finish_phase("conv"),
                reused_cluster.finish_phase("conv"),
                "identical timing regardless of buffer reuse"
            );
        }
    }

    #[test]
    fn temporal_steps_persist_membrane_state_between_invocations() {
        use spikestream_snn::NetworkBuilder;
        let (layer, spec) = conv_layer(false);
        let net = NetworkBuilder::new("one").conv("conv", spec, layer.neuron).build();
        let mut net = net;
        net.layers_mut()[0].weights = layer.weights.clone();

        let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp32);
        let mut scratch = LayerScratch::new();
        scratch.begin_sample(&net);
        let spikes = random_spikes(spec.padded_input(), 0.3, 5);

        // Two temporal steps on the same input: the second step starts from
        // the first step's (decayed, reset-by-subtraction) membranes, so the
        // membrane trajectory must match a manual two-step reference run.
        let mut reference = NeuronState::lif(spec.conv_output().len());
        let compressed = CompressedIfmap::from_spike_map(&spikes);
        for step in 0..2 {
            let mut cl = cluster();
            let (exec, out) = executor.run_temporal_step(
                &mut cl,
                &net.layers()[0],
                0,
                LayerInput::Spikes(&spikes),
                &mut scratch,
            );
            let direct = ConvKernel::new(KernelVariant::SpikeStream, FpFormat::Fp32).run(
                &mut cluster(),
                &net.layers()[0],
                &compressed,
                &mut reference,
            );
            assert_eq!(out, direct.output, "step {step} spikes");
            assert_eq!(exec.output_spikes, direct.output.count_spikes() as u64);
            assert_eq!(scratch.membrane(0).membrane(), reference.membrane(), "step {step}");
        }

        // A new sample resets the membranes to rest.
        scratch.begin_sample(&net);
        assert!(scratch.membrane(0).membrane().iter().all(|&v| v == 0.0));
    }

    #[test]
    #[should_panic(expected = "begin_sample")]
    fn temporal_step_without_begin_sample_is_rejected() {
        let (layer, spec) = conv_layer(false);
        let spikes = random_spikes(spec.padded_input(), 0.2, 3);
        LayerExecutor::new(KernelVariant::Baseline, FpFormat::Fp16).run_temporal_step(
            &mut cluster(),
            &layer,
            0,
            LayerInput::Spikes(&spikes),
            &mut LayerScratch::new(),
        );
    }

    #[test]
    fn rebound_programs_are_bit_identical_to_fresh_emissions() {
        use spikestream_snn::{LinearSpec, PoolSpec};
        let lif = LifParams::new(0.5, 0.25);
        let conv_spec = ConvSpec {
            input: TensorShape::new(8, 8, 16),
            out_channels: 16,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let mut encoder = Layer::new("enc", LayerKind::Conv(conv_spec), lif);
        encoder.encodes_input = true;
        let conv = Layer::new("conv", LayerKind::Conv(conv_spec), lif);
        let pool = Layer::new(
            "pool",
            LayerKind::AvgPool(PoolSpec { input: conv_spec.input, window: 2 }),
            lif,
        );
        let fc = Layer::new(
            "fc",
            LayerKind::Linear(LinearSpec { in_features: 256, out_features: 10 }),
            lif,
        );

        let integrator = CostIntegrator::snitch();
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let executor = LayerExecutor::new(variant, FpFormat::Fp16);
            for (idx, layer) in [&encoder, &conv, &pool, &fc].into_iter().enumerate() {
                // Two rates sharing the discrete footprint (the conv
                // interior has 1024 sites: both round to 307 spikes) but
                // differing in the continuous stream lengths.
                let (r1, r2) = (0.2998, 0.3002);
                let cache = ProgramCache::new();
                let first = executor.bind_symbolic(&cache, &integrator, idx, layer, r1, 0.4);
                let second = executor.bind_symbolic(&cache, &integrator, idx, layer, r2, 0.4);
                let fresh = executor.lower_symbolic(integrator.config(), layer, r2, 0.4);
                assert_eq!(second.program, fresh, "{variant} {}: rebind == emit", layer.name);
                assert_eq!(second.cost, integrator.integrate(&fresh), "{variant} {}", layer.name);
                assert!(first.cost.cycles > 0, "sanity: bound programs integrate");
                let counters = cache.counters();
                let rebindable = matches!(layer.kind, LayerKind::AvgPool(_))
                    || layer.encodes_input
                    || variant == KernelVariant::SpikeStream;
                assert_eq!(
                    (counters.emits, counters.rebinds),
                    if rebindable { (1, 1) } else { (2, 0) },
                    "{variant} {}: structural sibling served by rebind iff exact",
                    layer.name
                );
            }
        }
    }

    #[test]
    fn bind_symbolic_hits_on_repeated_bindings() {
        let (layer, _) = conv_layer(false);
        let executor = LayerExecutor::new(KernelVariant::SpikeStream, FpFormat::Fp16);
        let integrator = CostIntegrator::snitch();
        let cache = ProgramCache::new();
        let a = executor.bind_symbolic(&cache, &integrator, 1, &layer, 0.3, 0.2);
        let b = executor.bind_symbolic(&cache, &integrator, 1, &layer, 0.3, 0.2);
        assert!(Arc::ptr_eq(&a, &b), "hits return the cached Arc");
        assert_eq!(cache.counters().hits, 1);
        // A silent input is a different *structure* (the gather is omitted
        // entirely), so it must not be served by re-binding.
        let silent = executor.bind_symbolic(&cache, &integrator, 1, &layer, 0.0, 0.2);
        assert_ne!(silent.program, a.program);
        assert_eq!(cache.counters().emits, 2);
    }

    #[test]
    #[should_panic(expected = "consume spikes")]
    fn dense_input_on_a_linear_layer_is_rejected() {
        use spikestream_snn::LinearSpec;
        let layer = Layer::new(
            "fc",
            LayerKind::Linear(LinearSpec { in_features: 16, out_features: 4 }),
            LifParams::new(0.5, 0.25),
        );
        let image = Tensor3::zeros(TensorShape::new(4, 4, 1));
        LayerExecutor::new(KernelVariant::Baseline, FpFormat::Fp16).run(
            &mut cluster(),
            &layer,
            LayerInput::Image(&image),
        );
    }
}
