//! Compressed spiking fully connected kernels (baseline and SpikeStream).
//!
//! Fully connected layers use the simplified compression of Section III-A:
//! a single index array of active inputs plus a spike count. Output neurons
//! are parallelized over cores in SIMD groups; each group performs one
//! Sparse Vector Accumulation whose length equals the number of active
//! inputs, either as the scalar indirection loop (baseline) or as an
//! indirect stream under FREP (SpikeStream). The kernel lowers each
//! invocation to a [`StreamProgram`] with one work item per SIMD group.

use snitch_arch::fp::FpFormat;
use snitch_arch::ClusterConfig;
use snitch_sim::{execute_program, ClusterModel};
use spikestream_ir::{CodeRegion, ComputePhase, IndexStream, Phase, StreamProgram, WorkItem};
use spikestream_snn::{
    CompressedFcInput, Layer, LayerKind, LinearSpec, NeuronModel, NeuronState, SpikeMap,
    TensorShape,
};

use crate::emit;
use crate::tiling::TilingPlanner;
use crate::KernelVariant;

const CODE_REGION_FC_BASELINE: CodeRegion = CodeRegion { id: 0x20, bytes: 896 };
const CODE_REGION_FC_SPIKESTREAM: CodeRegion = CodeRegion { id: 0x21, bytes: 1152 };

/// Result of one fully connected layer invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FcKernelOutput {
    /// Input currents of every output neuron (quantized to the format).
    pub currents: Vec<f32>,
    /// Output spikes, packed as a `(1, 1, out_features)` map.
    pub spikes: SpikeMap,
    /// Compressed form of the output spikes.
    pub compressed: CompressedFcInput,
}

/// A spiking fully connected kernel bound to a variant and format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FcKernel {
    variant: KernelVariant,
    format: FpFormat,
}

impl FcKernel {
    /// Create a kernel for the given variant and floating-point format.
    pub fn new(variant: KernelVariant, format: FpFormat) -> Self {
        FcKernel { variant, format }
    }

    /// The code variant this kernel emits.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The storage format of weights and activations.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    fn code_regions(&self) -> Vec<CodeRegion> {
        let region = match self.variant {
            KernelVariant::Baseline => CODE_REGION_FC_BASELINE,
            KernelVariant::SpikeStream => CODE_REGION_FC_SPIKESTREAM,
        };
        vec![region]
    }

    /// Run one fully connected layer on the cluster (lower + interpret).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not fully connected, if the compressed input
    /// size does not match the layer, or if the neuron state has the wrong
    /// size.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: &CompressedFcInput,
        state: &mut NeuronState,
    ) -> FcKernelOutput {
        let (program, output) = self.lower(cluster.config(), layer, input, state);
        execute_program(cluster, &program);
        output
    }

    /// Lower one invocation into its exact stream program, computing the
    /// functional results along the way.
    ///
    /// # Panics
    ///
    /// Same contract as [`FcKernel::run`].
    pub fn lower(
        &self,
        config: &ClusterConfig,
        layer: &Layer,
        input: &CompressedFcInput,
        state: &mut NeuronState,
    ) -> (StreamProgram, FcKernelOutput) {
        let LayerKind::Linear(spec) = &layer.kind else {
            panic!("FcKernel requires a fully connected layer");
        };
        assert_eq!(input.in_features(), spec.in_features, "input width mismatch");
        assert_eq!(state.len(), spec.out_features, "neuron state size mismatch");

        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_features.div_ceil(lanes);
        let s_len = input.spike_count();

        let plan = TilingPlanner::new(config).plan_linear(
            spec,
            self.format,
            s_len.max(1),
            layer.neuron.state_vars(),
        );
        let weights_base = plan.weights.base;
        let idcs_base = plan.ifmap_idcs.base;
        let state_base = plan.neuron_state.base;
        let u_base = state_base + (spec.out_features * 4) as u32;
        let spm_bytes = config.spm_bytes.max(1);

        let mut program = StreamProgram::new(&layer.name, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }

        let mut currents = vec![0.0f32; spec.out_features];
        let mut spikes = SpikeMap::silent(TensorShape::new(1, 1, spec.out_features));
        let mut items = Vec::with_capacity(groups);
        // Every SIMD group gathers through the same active-input list; the
        // program holds it once, shared across groups.
        let idcs = IndexStream::exact(input.idcs().iter().map(|&i| i as u32));

        // Functional accumulation: every active input feature adds its
        // (output-contiguous) weight row, quantized on the fly — the same
        // per-output addition order as the former per-group scalar loop.
        for &i in input.idcs() {
            let row = spec.weight_index(i as usize, 0);
            let row = &layer.weights[row..row + spec.out_features];
            for (c, &w) in currents.iter_mut().zip(row) {
                *c += self.format.quantize(w);
            }
        }

        for g in 0..groups {
            let mut ops = emit::claim();
            emit::model_group_prologue(&mut ops, &layer.neuron, state_base, u_base);
            if s_len > 0 {
                ops.push(match self.variant {
                    KernelVariant::Baseline => emit::baseline_spva(idcs_base, s_len as f64),
                    KernelVariant::SpikeStream => emit::streamed_spva(
                        idcs_base,
                        weights_base
                            .wrapping_add(((g * lanes) as u32 * self.format.bytes()) % spm_bytes),
                        lanes as u32 * self.format.bytes(),
                        idcs.clone(),
                    ),
                });
            }

            // Fused activation and compressed output update.
            emit::model_activation_head(&mut ops, &layer.neuron);
            for lane in 0..lanes {
                let o = g * lanes + lane;
                if o >= spec.out_features {
                    break;
                }
                emit::lane_unpack(&mut ops);
                let current = self.format.quantize(currents[o]);
                if state.step_single(&layer.neuron, o, current) {
                    spikes.set(0, 0, o, true);
                    emit::fired_update(&mut ops, idcs_base, idcs_base);
                }
            }
            emit::model_state_writeback(&mut ops, &layer.neuron, state_base, u_base);
            items.push(WorkItem::new(ops));
        }
        program.push(Phase::Compute(ComputePhase { code: self.code_regions(), items }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }

        let compressed = CompressedFcInput::from_spike_map(&spikes);
        (program, FcKernelOutput { currents, spikes, compressed })
    }

    /// Expected stream length of the gather under `input_rate`: the active
    /// input features. The continuous scalar the plan cache re-binds
    /// across sparsity buckets.
    pub fn expected_stream_len(spec: &LinearSpec, input_rate: f64) -> f64 {
        spec.in_features as f64 * input_rate.clamp(0.0, 1.0)
    }

    /// Expected active-input count the tiling planner sizes the index
    /// buffer and DMA traffic from (the discretized part of a binding).
    pub fn planned_active_inputs(spec: &LinearSpec, input_rate: f64) -> usize {
        (Self::expected_stream_len(spec, input_rate).round() as usize).max(1)
    }

    /// Symbolic lowering from expected firing rates: one representative
    /// group replicated over all SIMD groups with an expected-length
    /// stream. `model` selects the activation head and state-tile width.
    pub fn lower_symbolic(
        &self,
        config: &ClusterConfig,
        label: &str,
        spec: &LinearSpec,
        model: &NeuronModel,
        input_rate: f64,
        output_rate: f64,
    ) -> StreamProgram {
        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_features.div_ceil(lanes);
        let output_rate = output_rate.clamp(0.0, 1.0);
        let s_len = Self::expected_stream_len(spec, input_rate);

        let plan = TilingPlanner::new(config).plan_linear(
            spec,
            self.format,
            Self::planned_active_inputs(spec, input_rate),
            model.state_vars(),
        );
        let weights_base = plan.weights.base;
        let idcs_base = plan.ifmap_idcs.base;
        let state_base = plan.neuron_state.base;
        let u_base = state_base + (spec.out_features * 4) as u32;

        let mut program = StreamProgram::new(label, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }

        let mut ops = emit::claim();
        emit::model_group_prologue(&mut ops, model, state_base, u_base);
        if s_len > 0.0 {
            ops.push(match self.variant {
                KernelVariant::Baseline => emit::baseline_spva(idcs_base, s_len),
                KernelVariant::SpikeStream => emit::streamed_spva(
                    idcs_base,
                    weights_base,
                    lanes as u32 * self.format.bytes(),
                    IndexStream::Expected(s_len),
                ),
            });
        }
        emit::model_activation_head(&mut ops, model);
        emit::activation_tail_symbolic(
            &mut ops,
            lanes as f64,
            lanes as f64 * output_rate,
            idcs_base,
            idcs_base,
        );
        emit::model_state_writeback(&mut ops, model, state_base, u_base);

        program.push(Phase::Compute(ComputePhase {
            code: self.code_regions(),
            items: vec![WorkItem::replicated(groups as f64, ops)],
        }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::{LinearSpec, ReferenceEngine};

    fn test_layer(in_f: usize, out_f: usize) -> (Layer, LinearSpec) {
        let spec = LinearSpec { in_features: in_f, out_features: out_f };
        let mut layer = Layer::new("fc", LayerKind::Linear(spec), LifParams::new(0.5, 0.15));
        let mut rng = StdRng::seed_from_u64(21);
        layer.randomize_weights(&mut rng, 0.1);
        (layer, spec)
    }

    fn sparse_input(in_f: usize, rate: f64, seed: u64) -> CompressedFcInput {
        let mut rng = StdRng::seed_from_u64(seed);
        let spikes: Vec<bool> = (0..in_f).map(|_| rng.gen_bool(rate)).collect();
        CompressedFcInput::from_spikes(&spikes)
    }

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn fp32_fc_matches_reference() {
        let (layer, spec) = test_layer(256, 32);
        let input = sparse_input(256, 0.1, 1);
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.out_features);
        let out = FcKernel::new(KernelVariant::SpikeStream, FpFormat::Fp32)
            .run(&mut cl, &layer, &input, &mut state);

        let eng = ReferenceEngine::new();
        let ref_input =
            SpikeMap::from_vec(TensorShape::new(1, 1, spec.in_features), input.decompress());
        let ref_currents = eng.linear_currents(&layer, &spec, &ref_input);
        for (a, b) in out.currents.iter().zip(ref_currents.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
        let mut ref_state = NeuronState::lif(spec.out_features);
        let ref_spikes = ref_state.step(&layer.neuron, &ref_currents);
        assert_eq!(out.spikes.to_bools(), ref_spikes);
    }

    #[test]
    fn variants_agree_functionally() {
        let (layer, spec) = test_layer(512, 64);
        let input = sparse_input(512, 0.05, 3);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = NeuronState::lif(spec.out_features);
        let mut s2 = NeuronState::lif(spec.out_features);
        let a = FcKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &input, &mut s1);
        let b = FcKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &input, &mut s2);
        assert_eq!(a.spikes, b.spikes);
        assert_eq!(a.compressed, b.compressed);
    }

    #[test]
    fn extreme_sparsity_limits_the_streaming_gain() {
        // With only a handful of active inputs the streams are so short that
        // setup overhead dominates — the effect the paper reports for the
        // FC layers.
        let (layer, spec) = test_layer(1024, 128);
        let sparse = sparse_input(1024, 0.01, 5);
        let busy = sparse_input(1024, 0.30, 5);

        let speedup_of = |input: &CompressedFcInput| {
            let mut c1 = cluster();
            let mut c2 = cluster();
            let mut s1 = NeuronState::lif(spec.out_features);
            let mut s2 = NeuronState::lif(spec.out_features);
            FcKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
                .run(&mut c1, &layer, input, &mut s1);
            FcKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
                .run(&mut c2, &layer, input, &mut s2);
            c1.finish_phase("b").cycles as f64 / c2.finish_phase("s").cycles as f64
        };
        let sparse_speedup = speedup_of(&sparse);
        let busy_speedup = speedup_of(&busy);
        assert!(
            busy_speedup > sparse_speedup,
            "longer streams benefit more: {busy_speedup:.2} vs {sparse_speedup:.2}"
        );
    }

    #[test]
    fn empty_input_is_handled() {
        let (layer, spec) = test_layer(128, 16);
        let input = CompressedFcInput::from_spikes(&[false; 128]);
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.out_features);
        let out = FcKernel::new(KernelVariant::SpikeStream, FpFormat::Fp8)
            .run(&mut cl, &layer, &input, &mut state);
        assert_eq!(out.spikes.count_spikes(), 0);
        assert_eq!(out.compressed.spike_count(), 0);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let (layer, spec) = test_layer(64, 8);
        let input = CompressedFcInput::from_spikes(&[false; 32]);
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.out_features);
        FcKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut cl, &layer, &input, &mut state);
    }
}
