//! Spike average-pooling kernel.
//!
//! The layer that proves the IR's "new layer = one emitter" claim: the
//! whole kernel is a single lowering function. Each output position is one
//! work item; per SIMD channel group the kernel accumulates the window's
//! spike words — as a scalar load/add loop in the baseline variant, or as
//! a 2D *affine* stream on the affine-only `Ssr2` under FREP in the
//! SpikeStream variant — then scales by the window area, thresholds at an
//! average activity of one half, and writes the firing channels to the
//! compressed output. No weights, no membrane state: the DMA traffic is
//! the dense spike tile in and the compressed output back out.

use snitch_arch::isa::FpOp;
use snitch_arch::{ClusterConfig, SsrId};
use snitch_sim::{execute_program, ClusterModel};
use spikestream_ir::{
    CodeRegion, ComputePhase, KernelOp, Phase, StreamProgram, StreamSpec, WorkItem,
};
use spikestream_snn::reference::avg_pool;
use spikestream_snn::{CompressedIfmap, Layer, LayerKind, PoolSpec, SpikeMap};

use crate::emit;
use crate::tiling::TilingPlanner;
use crate::KernelVariant;

const CODE_REGION_POOL_BASELINE: CodeRegion = CodeRegion { id: 0x40, bytes: 512 };
const CODE_REGION_POOL_SPIKESTREAM: CodeRegion = CodeRegion { id: 0x41, bytes: 704 };

/// Result of one average-pooling layer invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolKernelOutput {
    /// Output spikes.
    pub output: SpikeMap,
    /// Compressed form of the output, ready for the next layer.
    pub compressed: CompressedIfmap,
}

/// A spike average-pooling kernel bound to a variant and format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolKernel {
    variant: KernelVariant,
    format: snitch_arch::fp::FpFormat,
}

impl PoolKernel {
    /// Create a kernel for the given variant and floating-point format.
    pub fn new(variant: KernelVariant, format: snitch_arch::fp::FpFormat) -> Self {
        PoolKernel { variant, format }
    }

    /// The code variant this kernel emits.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    fn code_regions(&self) -> Vec<CodeRegion> {
        vec![match self.variant {
            KernelVariant::Baseline => CODE_REGION_POOL_BASELINE,
            KernelVariant::SpikeStream => CODE_REGION_POOL_SPIKESTREAM,
        }]
    }

    /// Run one pooling layer on the cluster (lower + interpret).
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not an average-pooling layer or the input shape
    /// does not match the spec.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        input: &SpikeMap,
    ) -> PoolKernelOutput {
        let (program, output) = self.lower(cluster.config(), layer, input);
        execute_program(cluster, &program);
        output
    }

    /// Lower one invocation into its exact stream program, computing the
    /// functional output along the way.
    ///
    /// # Panics
    ///
    /// Same contract as [`PoolKernel::run`].
    pub fn lower(
        &self,
        config: &ClusterConfig,
        layer: &Layer,
        input: &SpikeMap,
    ) -> (StreamProgram, PoolKernelOutput) {
        let LayerKind::AvgPool(spec) = &layer.kind else {
            panic!("PoolKernel requires an average-pooling layer");
        };
        assert_eq!(input.shape(), spec.input, "input shape mismatch");

        let output = avg_pool(input, spec);
        let program = self.emit(config, &layer.name, spec, Some(&output));
        let compressed = CompressedIfmap::from_spike_map(&output);
        (program, PoolKernelOutput { output, compressed })
    }

    /// Symbolic lowering from the expected output firing rate.
    pub fn lower_symbolic(
        &self,
        config: &ClusterConfig,
        label: &str,
        spec: &PoolSpec,
        output_rate: f64,
    ) -> StreamProgram {
        self.emit_with_rate(config, label, spec, output_rate)
    }

    /// The exact emitter: `fired` carries the concrete output spikes.
    fn emit(
        &self,
        config: &ClusterConfig,
        label: &str,
        spec: &PoolSpec,
        fired: Option<&SpikeMap>,
    ) -> StreamProgram {
        let lanes = self.format.simd_lanes() as usize;
        let out = spec.output();
        let groups = spec.input.c.div_ceil(lanes);

        let plan = TilingPlanner::new(config).plan_pool(spec);
        let in_base = plan.ifmap_idcs.base;
        let out_base = plan.ofmap.base;
        let spm_bytes = config.spm_bytes.max(1);

        let mut program = StreamProgram::new(label, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }

        let mut items = Vec::with_capacity(out.h * out.w);
        for oh in 0..out.h {
            for ow in 0..out.w {
                let mut ops = emit::claim();
                for g in 0..groups {
                    self.window_accumulate(&mut ops, spec, (oh, ow, g), in_base, spm_bytes);
                    ops.push(KernelOp::fp(FpOp::Mul)); // x 1/window^2
                    ops.push(KernelOp::fp(FpOp::Cmp)); // average >= 0.5
                    ops.push(KernelOp::mov());
                    for lane in 0..lanes {
                        let c = g * lanes + lane;
                        if c >= spec.input.c {
                            break;
                        }
                        emit::lane_unpack(&mut ops);
                        if fired.map(|f| f.get(oh, ow, c)).unwrap_or(false) {
                            emit::fired_update(&mut ops, out_base, out_base);
                        }
                    }
                }
                items.push(WorkItem::new(ops));
            }
        }
        program.push(Phase::Compute(ComputePhase { code: self.code_regions(), items }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }
        program
    }

    /// Symbolic variant of [`Self::emit`]: the same per-group structure with
    /// the activation tail scaled by the expected firing rate.
    fn emit_with_rate(
        &self,
        config: &ClusterConfig,
        label: &str,
        spec: &PoolSpec,
        output_rate: f64,
    ) -> StreamProgram {
        let lanes = self.format.simd_lanes() as usize;
        let out = spec.output();
        let groups = spec.input.c.div_ceil(lanes);
        let output_rate = output_rate.clamp(0.0, 1.0);

        let plan = TilingPlanner::new(config).plan_pool(spec);
        let in_base = plan.ifmap_idcs.base;
        let out_base = plan.ofmap.base;
        let spm_bytes = config.spm_bytes.max(1);

        let mut program = StreamProgram::new(label, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }

        let mut group = Vec::new();
        self.window_accumulate(&mut group, spec, (0, 0, 0), in_base, spm_bytes);
        group.push(KernelOp::fp(FpOp::Mul));
        group.push(KernelOp::fp(FpOp::Cmp));
        group.push(KernelOp::mov());
        emit::activation_tail_symbolic(
            &mut group,
            lanes as f64,
            lanes as f64 * output_rate,
            out_base,
            out_base,
        );

        let mut ops = emit::claim();
        ops.push(KernelOp::Loop { body: group, reps: groups as f64 });
        program.push(Phase::Compute(ComputePhase {
            code: self.code_regions(),
            items: vec![WorkItem::replicated((out.h * out.w) as f64, ops)],
        }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }
        program
    }

    /// Accumulate one window of spike words for one channel group.
    fn window_accumulate(
        &self,
        ops: &mut Vec<KernelOp>,
        spec: &PoolSpec,
        pos: (usize, usize, usize),
        in_base: u32,
        spm_bytes: u32,
    ) {
        let (oh, ow, g) = pos;
        let lanes = self.format.simd_lanes() as usize;
        let window = spec.window;
        let cell_base = {
            let offset =
                ((oh * window * spec.input.w + ow * window) * spec.input.c + g * lanes) as u32;
            in_base.wrapping_add(offset % spm_bytes)
        };
        match self.variant {
            KernelVariant::Baseline => ops.push(KernelOp::Loop {
                body: vec![
                    KernelOp::fp_at(FpOp::Load, cell_base),
                    KernelOp::fp(FpOp::Add),
                    KernelOp::alu(),
                    KernelOp::branch(),
                ],
                reps: (window * window) as f64,
            }),
            KernelVariant::SpikeStream => ops.push(KernelOp::Stream {
                ssrs: vec![(
                    SsrId::Ssr2,
                    StreamSpec::Affine {
                        base: cell_base,
                        strides: vec![spec.input.c as i64, (spec.input.w * spec.input.c) as i64],
                        bounds: vec![window as u32, window as u32],
                        elem_bytes: lanes as u32,
                    },
                )],
                op: FpOp::Add,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use snitch_arch::fp::FpFormat;
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::ReferenceEngine;

    fn pool_layer(hw: usize, c: usize) -> (Layer, PoolSpec) {
        let spec = PoolSpec { input: TensorShape::new(hw, hw, c), window: 2 };
        let layer = Layer::new("pool", LayerKind::AvgPool(spec), LifParams::default());
        (layer, spec)
    }

    fn random_spikes(shape: TensorShape, rate: f64, seed: u64) -> SpikeMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut map = SpikeMap::silent(shape);
        for h in 0..shape.h {
            for w in 0..shape.w {
                for c in 0..shape.c {
                    if rng.gen_bool(rate) {
                        map.set(h, w, c, true);
                    }
                }
            }
        }
        map
    }

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn pool_kernel_matches_reference_for_both_variants() {
        let (layer, spec) = pool_layer(8, 16);
        let input = random_spikes(spec.input, 0.4, 3);
        let expected = ReferenceEngine::new().avg_pool_forward(&layer, &input);
        for variant in [KernelVariant::Baseline, KernelVariant::SpikeStream] {
            let mut cl = cluster();
            let out = PoolKernel::new(variant, FpFormat::Fp16).run(&mut cl, &layer, &input);
            assert_eq!(out.output, expected, "{variant}");
            assert_eq!(out.compressed.decompress(), expected);
            assert!(cl.finish_phase("pool").cycles > 0);
        }
    }

    #[test]
    fn streaming_variant_is_not_slower() {
        let (layer, spec) = pool_layer(16, 32);
        let input = random_spikes(spec.input, 0.3, 7);
        let mut c1 = cluster();
        let mut c2 = cluster();
        PoolKernel::new(KernelVariant::Baseline, FpFormat::Fp16).run(&mut c1, &layer, &input);
        PoolKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16).run(&mut c2, &layer, &input);
        let base = c1.finish_phase("b");
        let fast = c2.finish_phase("s");
        assert!(fast.compute_cycles <= base.compute_cycles);
    }

    #[test]
    fn symbolic_lowering_is_compact_and_integrable() {
        use spikestream_ir::CostIntegrator;
        let (_, spec) = pool_layer(8, 16);
        let kernel = PoolKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16);
        let program = kernel.lower_symbolic(&ClusterConfig::default(), "pool", &spec, 0.3);
        assert!(program.work_items() > 1.0);
        let cost = CostIntegrator::snitch().integrate(&program);
        assert!(cost.compute_cycles > 0);
        assert!(cost.dma_bytes_in > 0 && cost.dma_bytes_out > 0);
    }

    #[test]
    #[should_panic(expected = "input shape mismatch")]
    fn wrong_input_shape_panics() {
        let (layer, _) = pool_layer(8, 16);
        let wrong = SpikeMap::silent(TensorShape::new(4, 4, 16));
        PoolKernel::new(KernelVariant::Baseline, FpFormat::Fp16).run(
            &mut cluster(),
            &layer,
            &wrong,
        );
    }
}
