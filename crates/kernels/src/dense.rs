//! Dense spike-encoding kernel for the first network layer.
//!
//! When the input is an RGB image rather than an event stream, the first
//! convolutional layer doubles as the spike encoder: pixel values are used
//! directly as input currents (Section III-F). SpikeStream reshapes the
//! dense input on the fly with a 2D DMA im2row transfer and turns the
//! convolution into a matrix multiplication whose dot products are fed by
//! two *affine* stream registers (one for the input row, one for the
//! weights); the baseline executes the same matmul as a scalar SIMD loop.

use snitch_arch::fp::FpFormat;
use snitch_arch::isa::{FpOp, IntOp, StreamPattern};
use snitch_arch::{SsrId, TraceOp};
use snitch_mem::dma::{DmaDirection, DmaRequest};
use snitch_sim::ClusterModel;
use spikestream_snn::reference::max_pool_2x2;
use spikestream_snn::{CompressedIfmap, Layer, LayerKind, LifState, SpikeMap, Tensor3};

use crate::schedule::WorkStealingScheduler;
use crate::tiling::TilingPlanner;
use crate::KernelVariant;

const CODE_REGION_DENSE_BASELINE: (u64, u32) = (0x30, 1024);
const CODE_REGION_DENSE_SPIKESTREAM: (u64, u32) = (0x31, 1408);

/// Result of the spike-encoding layer.
#[derive(Debug, Clone)]
pub struct DenseKernelOutput {
    /// Input currents of every output neuron.
    pub currents: Tensor3,
    /// Output spikes before pooling.
    pub spikes: SpikeMap,
    /// Output spikes after the optional pooling stage.
    pub output: SpikeMap,
    /// Compressed output ready for the next (sparse) layer.
    pub compressed: CompressedIfmap,
}

/// Spike-encoding convolution-as-matmul kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseEncodingKernel {
    variant: KernelVariant,
    format: FpFormat,
}

impl DenseEncodingKernel {
    /// Create a kernel for the given variant and format.
    pub fn new(variant: KernelVariant, format: FpFormat) -> Self {
        DenseEncodingKernel { variant, format }
    }

    /// The code variant this kernel emits.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The storage format of weights and activations.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    /// Run the spike-encoding layer on the cluster.
    ///
    /// `image` must be the padded input image in HWC layout.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not convolutional, the image shape does not
    /// match the padded input, or the neuron state has the wrong size.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        image: &Tensor3,
        state: &mut LifState,
    ) -> DenseKernelOutput {
        let LayerKind::Conv(spec) = &layer.kind else {
            panic!("DenseEncodingKernel requires a convolutional layer");
        };
        assert_eq!(image.shape(), spec.padded_input(), "image must be padded");
        let out_shape = spec.conv_output();
        assert_eq!(state.len(), out_shape.len(), "neuron state size mismatch");

        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_channels.div_ceil(lanes);
        let k_len = spec.kh * spec.kw * spec.input.c;

        // Dense ifmap tile + weights: issue the regular tile plan plus the
        // on-the-fly im2row 2D reshape performed by the DMA core.
        let empty = CompressedIfmap::from_spike_map(&SpikeMap::silent(spec.padded_input()));
        let plan = TilingPlanner::new(cluster.config()).plan_conv(spec, self.format, &empty);
        plan.issue_dma(cluster);
        let row_bytes = (spec.kw * spec.input.c * 4) as u64;
        cluster.dma_issue(
            DmaRequest::strided_2d(DmaDirection::In, row_bytes, (out_shape.h * spec.kh) as u64),
            0,
        );

        let weights_base = plan.weights.base;
        let input_base = plan.ifmap_idcs.base;
        let state_base = plan.neuron_state.base;

        let (region_id, region_bytes) = match self.variant {
            KernelVariant::Baseline => CODE_REGION_DENSE_BASELINE,
            KernelVariant::SpikeStream => CODE_REGION_DENSE_SPIKESTREAM,
        };

        let mut scheduler = WorkStealingScheduler::new(cluster.worker_cores());
        let mut currents = Tensor3::zeros(out_shape);
        let mut spikes = SpikeMap::silent(out_shape);

        for oh in 0..out_shape.h {
            for ow in 0..out_shape.w {
                let core = scheduler.claim(cluster);
                cluster.fetch_code(core, region_id, region_bytes);

                for g in 0..groups {
                    // Functional dot product for each lane of the group.
                    for kh in 0..spec.kh {
                        for kw in 0..spec.kw {
                            for ci in 0..spec.input.c {
                                let x = image.get(oh * spec.stride + kh, ow * spec.stride + kw, ci);
                                if x == 0.0 {
                                    continue;
                                }
                                for lane in 0..lanes {
                                    let co = g * lanes + lane;
                                    if co >= spec.out_channels {
                                        break;
                                    }
                                    let w = self
                                        .format
                                        .quantize(layer.weights[spec.weight_index(kh, kw, ci, co)]);
                                    let v = currents.get(oh, ow, co) + self.format.quantize(x) * w;
                                    currents.set(oh, ow, co, v);
                                }
                            }
                        }
                    }

                    // Timing of the dot product.
                    let core_model = cluster.core_mut(core);
                    core_model.exec(&TraceOp::Fp {
                        op: FpOp::Load,
                        format: self.format,
                        ssr_srcs: vec![],
                        addr: Some(state_base),
                    });
                    core_model.exec(&TraceOp::alu());
                    core_model.exec(&TraceOp::alu());
                    match self.variant {
                        KernelVariant::Baseline => {
                            let block = [
                                TraceOp::Fp {
                                    op: FpOp::Load,
                                    format: self.format,
                                    ssr_srcs: vec![],
                                    addr: None,
                                },
                                TraceOp::Fp {
                                    op: FpOp::Load,
                                    format: self.format,
                                    ssr_srcs: vec![],
                                    addr: None,
                                },
                                TraceOp::fp(FpOp::Fma, self.format),
                                TraceOp::alu(),
                                TraceOp::branch(),
                            ];
                            core_model.exec_repeated(&block, k_len as u64);
                        }
                        KernelVariant::SpikeStream => {
                            core_model.exec(&TraceOp::SsrConfig {
                                ssr: SsrId::Ssr0,
                                pattern: StreamPattern::Affine {
                                    base: input_base,
                                    strides: vec![4],
                                    bounds: vec![k_len as u32],
                                    elem_bytes: 4,
                                },
                                shadow: true,
                            });
                            core_model.exec(&TraceOp::SsrConfig {
                                ssr: SsrId::Ssr1,
                                pattern: StreamPattern::Affine {
                                    base: weights_base,
                                    strides: vec![(lanes as i64) * self.format.bytes() as i64],
                                    bounds: vec![k_len as u32],
                                    elem_bytes: (lanes as u32) * self.format.bytes(),
                                },
                                shadow: true,
                            });
                            core_model.exec(&TraceOp::Frep {
                                reps: k_len as u32,
                                body: vec![TraceOp::Fp {
                                    op: FpOp::Fma,
                                    format: self.format,
                                    ssr_srcs: vec![SsrId::Ssr0, SsrId::Ssr1],
                                    addr: None,
                                }],
                            });
                        }
                    }

                    // Fused LIF activation, identical to the sparse layers.
                    core_model.exec(&TraceOp::fp(FpOp::Fma, self.format));
                    core_model.exec(&TraceOp::fp(FpOp::Cmp, self.format));
                    core_model.exec(&TraceOp::Int { op: IntOp::Move, addr: None });
                    for lane in 0..lanes {
                        let co = g * lanes + lane;
                        if co >= spec.out_channels {
                            break;
                        }
                        core_model.exec(&TraceOp::alu());
                        core_model.exec(&TraceOp::branch());
                        let neuron = out_shape.index(oh, ow, co);
                        let current = self.format.quantize(currents.get(oh, ow, co));
                        let fired = state.step_single(&layer.lif, neuron, current);
                        if fired {
                            spikes.set(oh, ow, co, true);
                            core_model.exec(&TraceOp::store(input_base));
                            core_model
                                .exec(&TraceOp::Int { op: IntOp::Amo, addr: Some(input_base) });
                        }
                    }
                    core_model.exec(&TraceOp::Fp {
                        op: FpOp::Store,
                        format: self.format,
                        ssr_srcs: vec![],
                        addr: Some(state_base),
                    });
                }
            }
        }

        for core in 0..cluster.worker_cores() {
            cluster.core_mut(core).exec(&TraceOp::Barrier);
        }

        let output = if spec.pool { max_pool_2x2(&spikes) } else { spikes.clone() };
        let compressed = CompressedIfmap::from_spike_map(&output);
        DenseKernelOutput { currents, spikes, output, compressed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_snn::encoding::{pad_image, synthetic_image};
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::{ConvSpec, ReferenceEngine};

    fn test_layer(hw: usize, out_c: usize) -> (Layer, ConvSpec) {
        let spec = ConvSpec {
            input: TensorShape::new(hw, hw, 3),
            out_channels: out_c,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let mut layer = Layer::new("conv1", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
        let mut rng = StdRng::seed_from_u64(31);
        layer.randomize_weights(&mut rng, 0.2);
        (layer, spec)
    }

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn fp32_dense_kernel_matches_reference() {
        let (layer, spec) = test_layer(8, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
        let mut cl = cluster();
        let mut state = LifState::new(spec.conv_output().len());
        let out = DenseEncodingKernel::new(KernelVariant::SpikeStream, FpFormat::Fp32)
            .run(&mut cl, &layer, &image, &mut state);

        let eng = ReferenceEngine::new();
        let ref_currents = eng.conv_currents_dense(&layer, &spec, &image);
        for (a, b) in out.currents.data().iter().zip(ref_currents.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn streaming_improves_dense_layer_utilization_moderately() {
        let (layer, spec) = test_layer(10, 16);
        let mut rng = StdRng::seed_from_u64(6);
        let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = LifState::new(spec.conv_output().len());
        let mut s2 = LifState::new(spec.conv_output().len());
        DenseEncodingKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &image, &mut s1);
        DenseEncodingKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &image, &mut s2);
        let base = c1.finish_phase("baseline");
        let fast = c2.finish_phase("spikestream");
        // Fig. 3b: the dense encoding layer already has decent baseline
        // utilization (~25%) and SpikeStream roughly doubles it (~53%).
        assert!(base.fpu_utilization > 0.12 && base.fpu_utilization < 0.40);
        assert!(fast.fpu_utilization > base.fpu_utilization * 1.5);
        assert!(fast.cycles < base.cycles);
    }

    #[test]
    fn variants_agree_functionally_on_dense_input() {
        let (layer, spec) = test_layer(6, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = LifState::new(spec.conv_output().len());
        let mut s2 = LifState::new(spec.conv_output().len());
        let a = DenseEncodingKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &image, &mut s1);
        let b = DenseEncodingKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &image, &mut s2);
        assert_eq!(a.spikes, b.spikes);
    }
}
