//! Dense spike-encoding kernel for the first network layer.
//!
//! When the input is an RGB image rather than an event stream, the first
//! convolutional layer doubles as the spike encoder: pixel values are used
//! directly as input currents (Section III-F). SpikeStream reshapes the
//! dense input on the fly with a 2D DMA im2row transfer and turns the
//! convolution into a matrix multiplication whose dot products are fed by
//! two *affine* stream registers (one for the input row, one for the
//! weights); the baseline executes the same matmul as a scalar SIMD loop.
//!
//! Like the sparse kernels, this kernel is an emitter: it lowers the layer
//! into a [`StreamProgram`] (exactly, or symbolically from expected rates)
//! and [`DenseEncodingKernel::run`] interprets that program.

use snitch_arch::fp::FpFormat;
use snitch_arch::ClusterConfig;
use snitch_mem::dma::DmaDirection;
use snitch_sim::{execute_program, ClusterModel};
use spikestream_ir::{
    CodeRegion, ComputePhase, DmaPhase, KernelOp, Phase, StreamProgram, WorkItem,
};
use spikestream_snn::reference::max_pool_2x2;
use spikestream_snn::{
    CompressedIfmap, ConvSpec, Layer, LayerKind, NeuronModel, NeuronState, SpikeMap, Tensor3,
};

use crate::emit;
use crate::tiling::TilingPlanner;
use crate::KernelVariant;

const CODE_REGION_DENSE_BASELINE: CodeRegion = CodeRegion { id: 0x30, bytes: 1024 };
const CODE_REGION_DENSE_SPIKESTREAM: CodeRegion = CodeRegion { id: 0x31, bytes: 1408 };

/// Result of the spike-encoding layer.
#[derive(Debug, Clone)]
pub struct DenseKernelOutput {
    /// Input currents of every output neuron.
    pub currents: Tensor3,
    /// Output spikes before pooling.
    pub spikes: SpikeMap,
    /// Output spikes after the optional pooling stage.
    pub output: SpikeMap,
    /// Compressed output ready for the next (sparse) layer.
    pub compressed: CompressedIfmap,
}

/// Spike-encoding convolution-as-matmul kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseEncodingKernel {
    variant: KernelVariant,
    format: FpFormat,
}

impl DenseEncodingKernel {
    /// Create a kernel for the given variant and format.
    pub fn new(variant: KernelVariant, format: FpFormat) -> Self {
        DenseEncodingKernel { variant, format }
    }

    /// The code variant this kernel emits.
    pub fn variant(&self) -> KernelVariant {
        self.variant
    }

    /// The storage format of weights and activations.
    pub fn format(&self) -> FpFormat {
        self.format
    }

    fn code_regions(&self) -> Vec<CodeRegion> {
        let region = match self.variant {
            KernelVariant::Baseline => CODE_REGION_DENSE_BASELINE,
            KernelVariant::SpikeStream => CODE_REGION_DENSE_SPIKESTREAM,
        };
        vec![region]
    }

    /// Run the spike-encoding layer on the cluster (lower + interpret).
    ///
    /// `image` must be the padded input image in HWC layout.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is not convolutional, the image shape does not
    /// match the padded input, or the neuron state has the wrong size.
    pub fn run(
        &self,
        cluster: &mut ClusterModel,
        layer: &Layer,
        image: &Tensor3,
        state: &mut NeuronState,
    ) -> DenseKernelOutput {
        let (program, output) = self.lower(cluster.config(), layer, image, state);
        execute_program(cluster, &program);
        output
    }

    /// Lower one spike-encoding invocation into its exact stream program,
    /// computing the functional results along the way.
    ///
    /// # Panics
    ///
    /// Same contract as [`DenseEncodingKernel::run`].
    pub fn lower(
        &self,
        config: &ClusterConfig,
        layer: &Layer,
        image: &Tensor3,
        state: &mut NeuronState,
    ) -> (StreamProgram, DenseKernelOutput) {
        let LayerKind::Conv(spec) = &layer.kind else {
            panic!("DenseEncodingKernel requires a convolutional layer");
        };
        assert_eq!(image.shape(), spec.padded_input(), "image must be padded");
        let out_shape = spec.conv_output();
        assert_eq!(state.len(), out_shape.len(), "neuron state size mismatch");

        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_channels.div_ceil(lanes);
        let k_len = spec.kh * spec.kw * spec.input.c;

        // Dense ifmap tile + weights: the regular tile plan (the dense tile
        // has no compressed indices) plus the on-the-fly im2row 2D reshape
        // performed by the DMA core.
        let plan = TilingPlanner::new(config).plan_conv_spikes(
            spec,
            self.format,
            0,
            layer.neuron.state_vars(),
        );
        let mut program = StreamProgram::new(&layer.name, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }
        let row_bytes = (spec.kw * spec.input.c * 4) as u64;
        program.push(Phase::Dma(DmaPhase::strided_2d(
            DmaDirection::In,
            row_bytes,
            (out_shape.h * spec.kh) as u64,
            false,
        )));

        let weights_base = plan.weights.base;
        let input_base = plan.ifmap_idcs.base;
        let state_base = plan.neuron_state.base;
        let u_base = state_base + (out_shape.len() * 4) as u32;
        let lane_bytes = lanes as u32 * self.format.bytes();

        let mut currents = Tensor3::zeros(out_shape);
        let mut spikes = SpikeMap::silent(out_shape);
        let mut items = Vec::with_capacity(out_shape.h * out_shape.w);
        // Weights are static across the layer: round them to the storage
        // format once instead of per (pixel, lane) in the position loop.
        let qweights: Vec<f32> = layer.weights.iter().map(|&w| self.format.quantize(w)).collect();
        let mut acc = vec![0.0f32; spec.out_channels];

        for oh in 0..out_shape.h {
            for ow in 0..out_shape.w {
                // Functional dot product for every output channel of this
                // position: each nonzero input pixel adds its quantized
                // value times the (channel-contiguous) weight row. The
                // per-channel accumulation order matches the former
                // per-group scalar loop exactly.
                acc.fill(0.0);
                for kh in 0..spec.kh {
                    for kw in 0..spec.kw {
                        for ci in 0..spec.input.c {
                            let x = image.get(oh * spec.stride + kh, ow * spec.stride + kw, ci);
                            if x == 0.0 {
                                continue;
                            }
                            let qx = self.format.quantize(x);
                            let row = spec.weight_index(kh, kw, ci, 0);
                            let row = &qweights[row..row + spec.out_channels];
                            for (a, &w) in acc.iter_mut().zip(row) {
                                *a += qx * w;
                            }
                        }
                    }
                }
                for (co, &v) in acc.iter().enumerate() {
                    currents.set(oh, ow, co, v);
                }

                let mut ops = emit::claim();
                for g in 0..groups {
                    // Timing of the dot product.
                    emit::model_group_prologue(&mut ops, &layer.neuron, state_base, u_base);
                    ops.push(match self.variant {
                        KernelVariant::Baseline => emit::baseline_dense_dot(k_len as f64),
                        KernelVariant::SpikeStream => emit::streamed_dense_dot(
                            input_base,
                            weights_base,
                            lane_bytes,
                            k_len as u32,
                        ),
                    });

                    // Fused activation, identical to the sparse layers.
                    emit::model_activation_head(&mut ops, &layer.neuron);
                    for lane in 0..lanes {
                        let co = g * lanes + lane;
                        if co >= spec.out_channels {
                            break;
                        }
                        emit::lane_unpack(&mut ops);
                        let neuron = out_shape.index(oh, ow, co);
                        let current = self.format.quantize(currents.get(oh, ow, co));
                        if state.step_single(&layer.neuron, neuron, current) {
                            spikes.set(oh, ow, co, true);
                            emit::fired_update(&mut ops, input_base, input_base);
                        }
                    }
                    emit::model_state_writeback(&mut ops, &layer.neuron, state_base, u_base);
                }
                items.push(WorkItem::new(ops));
            }
        }
        program.push(Phase::Compute(ComputePhase { code: self.code_regions(), items }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }

        let output = if spec.pool { max_pool_2x2(&spikes) } else { spikes.clone() };
        let compressed = CompressedIfmap::from_spike_map(&output);
        (program, DenseKernelOutput { currents, spikes, output, compressed })
    }

    /// Symbolic lowering from the expected output firing rate (the dense
    /// input consumes every pixel, so only the activation tail is
    /// rate-dependent). `model` selects the activation head and state-tile
    /// width.
    pub fn lower_symbolic(
        &self,
        config: &ClusterConfig,
        label: &str,
        spec: &ConvSpec,
        model: &NeuronModel,
        output_rate: f64,
    ) -> StreamProgram {
        let lanes = self.format.simd_lanes() as usize;
        let groups = spec.out_channels.div_ceil(lanes);
        let out = spec.conv_output();
        let k_len = spec.kh * spec.kw * spec.input.c;
        let output_rate = output_rate.clamp(0.0, 1.0);

        let plan =
            TilingPlanner::new(config).plan_conv_spikes(spec, self.format, 0, model.state_vars());
        let mut program = StreamProgram::new(label, self.format);
        for dma in plan.dma_in_phases() {
            program.push(Phase::Dma(dma));
        }
        let row_bytes = (spec.kw * spec.input.c * 4) as u64;
        program.push(Phase::Dma(DmaPhase::strided_2d(
            DmaDirection::In,
            row_bytes,
            (out.h * spec.kh) as u64,
            false,
        )));

        let weights_base = plan.weights.base;
        let input_base = plan.ifmap_idcs.base;
        let state_base = plan.neuron_state.base;
        let u_base = state_base + (out.len() * 4) as u32;
        let lane_bytes = lanes as u32 * self.format.bytes();

        let mut group = Vec::new();
        emit::model_group_prologue(&mut group, model, state_base, u_base);
        group.push(match self.variant {
            KernelVariant::Baseline => emit::baseline_dense_dot(k_len as f64),
            KernelVariant::SpikeStream => {
                emit::streamed_dense_dot(input_base, weights_base, lane_bytes, k_len as u32)
            }
        });
        emit::model_activation_head(&mut group, model);
        emit::activation_tail_symbolic(
            &mut group,
            lanes as f64,
            lanes as f64 * output_rate,
            input_base,
            input_base,
        );
        emit::model_state_writeback(&mut group, model, state_base, u_base);

        let mut ops = emit::claim();
        ops.push(KernelOp::Loop { body: group, reps: groups as f64 });
        program.push(Phase::Compute(ComputePhase {
            code: self.code_regions(),
            items: vec![WorkItem::replicated((out.h * out.w) as f64, ops)],
        }));
        for dma in plan.dma_out_phases() {
            program.push(Phase::Dma(dma));
        }
        program
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use snitch_arch::{ClusterConfig, CostModel};
    use spikestream_snn::encoding::{pad_image, synthetic_image};
    use spikestream_snn::neuron::LifParams;
    use spikestream_snn::tensor::TensorShape;
    use spikestream_snn::{ConvSpec, ReferenceEngine};

    fn test_layer(hw: usize, out_c: usize) -> (Layer, ConvSpec) {
        let spec = ConvSpec {
            input: TensorShape::new(hw, hw, 3),
            out_channels: out_c,
            kh: 3,
            kw: 3,
            stride: 1,
            padding: 1,
            pool: false,
        };
        let mut layer = Layer::new("conv1", LayerKind::Conv(spec), LifParams::new(0.5, 0.3));
        let mut rng = StdRng::seed_from_u64(31);
        layer.randomize_weights(&mut rng, 0.2);
        (layer, spec)
    }

    fn cluster() -> ClusterModel {
        ClusterModel::new(ClusterConfig::default(), CostModel::default())
    }

    #[test]
    fn fp32_dense_kernel_matches_reference() {
        let (layer, spec) = test_layer(8, 8);
        let mut rng = StdRng::seed_from_u64(4);
        let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
        let mut cl = cluster();
        let mut state = NeuronState::lif(spec.conv_output().len());
        let out = DenseEncodingKernel::new(KernelVariant::SpikeStream, FpFormat::Fp32)
            .run(&mut cl, &layer, &image, &mut state);

        let eng = ReferenceEngine::new();
        let ref_currents = eng.conv_currents_dense(&layer, &spec, &image);
        for (a, b) in out.currents.data().iter().zip(ref_currents.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn streaming_improves_dense_layer_utilization_moderately() {
        let (layer, spec) = test_layer(10, 16);
        let mut rng = StdRng::seed_from_u64(6);
        let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = NeuronState::lif(spec.conv_output().len());
        let mut s2 = NeuronState::lif(spec.conv_output().len());
        DenseEncodingKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &image, &mut s1);
        DenseEncodingKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &image, &mut s2);
        let base = c1.finish_phase("baseline");
        let fast = c2.finish_phase("spikestream");
        // Fig. 3b: the dense encoding layer already has decent baseline
        // utilization (~25%) and SpikeStream roughly doubles it (~53%).
        assert!(base.fpu_utilization > 0.12 && base.fpu_utilization < 0.40);
        assert!(fast.fpu_utilization > base.fpu_utilization * 1.5);
        assert!(fast.cycles < base.cycles);
    }

    #[test]
    fn variants_agree_functionally_on_dense_input() {
        let (layer, spec) = test_layer(6, 8);
        let mut rng = StdRng::seed_from_u64(9);
        let image = pad_image(&synthetic_image(spec.input, &mut rng), spec.padding);
        let mut c1 = cluster();
        let mut c2 = cluster();
        let mut s1 = NeuronState::lif(spec.conv_output().len());
        let mut s2 = NeuronState::lif(spec.conv_output().len());
        let a = DenseEncodingKernel::new(KernelVariant::Baseline, FpFormat::Fp16)
            .run(&mut c1, &layer, &image, &mut s1);
        let b = DenseEncodingKernel::new(KernelVariant::SpikeStream, FpFormat::Fp16)
            .run(&mut c2, &layer, &image, &mut s2);
        assert_eq!(a.spikes, b.spikes);
    }
}
